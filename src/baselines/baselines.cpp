#include "baselines/baselines.hpp"

#include <algorithm>
#include <map>

namespace vpscope::baselines {

namespace {

/// Shared dictionary helper: token -> positive id, unseen -> size+1.
class TokenDict {
 public:
  void add(const std::string& token) {
    dict_.try_emplace(token, static_cast<int>(dict_.size()) + 1);
  }
  double lookup(const std::string& token) const {
    const auto it = dict_.find(token);
    return it == dict_.end() ? static_cast<double>(dict_.size() + 1)
                             : static_cast<double>(it->second);
  }

 private:
  std::map<std::string, int> dict_;
};

void encode_list(const TokenDict& dict, const std::vector<std::string>& tokens,
                 int slots, std::vector<double>* out) {
  for (int i = 0; i < slots; ++i)
    out->push_back(i < static_cast<int>(tokens.size())
                       ? dict.lookup(tokens[static_cast<std::size_t>(i)])
                       : 0.0);
}

std::vector<std::string> u16_tokens(const std::vector<std::uint16_t>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (auto v : values) out.push_back(std::to_string(v));
  return out;
}

/// Anderson-style fingerprint canonicalization: fingerprint strings strip
/// GREASE values (as JA3 does), and the adaptation's "feature construction"
/// sorts the extension code list so Chrome's per-flow extension-order
/// randomization does not shred the positional encoding.
std::vector<std::string> canonical_u16_tokens(
    const std::vector<std::uint16_t>& values, bool sorted) {
  std::vector<std::uint16_t> filtered;
  for (auto v : values)
    if (!tls::is_grease(v)) filtered.push_back(v);
  if (sorted) std::sort(filtered.begin(), filtered.end());
  return u16_tokens(filtered);
}

// ---------------------------------------------------------------------------
// Anderson & McGrew 2019: ClientHello fingerprint string components.
// ---------------------------------------------------------------------------

class Anderson2019 : public BaselineExtractor {
 public:
  std::string name() const override { return "Anderson-2019 [6]"; }

  void fit(std::span<const core::FlowHandshake> handshakes) override {
    for (const auto& h : handshakes) {
      const Tokens tokens = tokenize(h);
      for (const auto& t : tokens.suites) suite_dict_.add(t);
      for (const auto& t : tokens.exts) ext_dict_.add(t);
      for (const auto& t : tokens.groups) group_dict_.add(t);
      for (const auto& t : tokens.formats) format_dict_.add(t);
    }
  }

  std::vector<double> transform(
      const core::FlowHandshake& h) const override {
    const Tokens tokens = tokenize(h);
    std::vector<double> out;
    out.push_back(h.chlo.legacy_version);
    encode_list(suite_dict_, tokens.suites, 24, &out);
    encode_list(ext_dict_, tokens.exts, 24, &out);
    encode_list(group_dict_, tokens.groups, 10, &out);
    encode_list(format_dict_, tokens.formats, 3, &out);
    return out;
  }

 private:
  struct Tokens {
    std::vector<std::string> suites, exts, groups, formats;
  };

  static Tokens tokenize(const core::FlowHandshake& h) {
    const tls::ClientHello& chlo = h.chlo;
    Tokens t;
    t.suites = canonical_u16_tokens(chlo.cipher_suites, /*sorted=*/false);
    t.exts = canonical_u16_tokens(chlo.extension_types(), /*sorted=*/true);
    if (const auto g = chlo.supported_groups())
      t.groups = canonical_u16_tokens(*g, /*sorted=*/false);
    if (const auto f = chlo.ec_point_formats())
      for (auto v : *f) t.formats.push_back(std::to_string(v));
    return t;
  }

  TokenDict suite_dict_, ext_dict_, group_dict_, format_dict_;
};

// ---------------------------------------------------------------------------
// Fan et al. 2019: TCP/IP stack fingerprint.
// ---------------------------------------------------------------------------

class Fan2019 : public BaselineExtractor {
 public:
  std::string name() const override { return "Fan-2019 [14]"; }

  void fit(std::span<const core::FlowHandshake> handshakes) override {
    for (const auto& h : handshakes) {
      std::string order;
      for (auto k : kind_order(h)) order += std::to_string(k) + "-";
      order_dict_.add(order);
    }
  }

  std::vector<double> transform(
      const core::FlowHandshake& h) const override {
    std::vector<double> out;
    out.push_back(static_cast<double>(h.init_packet_size));
    out.push_back(h.ttl);
    if (h.transport == fingerprint::Transport::Tcp) {
      out.push_back(h.tcp_window);
      out.push_back(h.tcp_mss ? *h.tcp_mss : 0.0);
      out.push_back(h.tcp_window_scale ? *h.tcp_window_scale : 0.0);
      out.push_back(h.tcp_sack_permitted ? 1.0 : 0.0);
      out.push_back(h.syn_flags.cwr ? 1.0 : 0.0);
      out.push_back(h.syn_flags.ece ? 1.0 : 0.0);
      std::string order;
      for (auto k : kind_order(h)) order += std::to_string(k) + "-";
      out.push_back(order_dict_.lookup(order));
    } else {
      // QUIC adaptation: only the IP/UDP-observable stack surface remains —
      // connection-id lengths from the (public) Initial header via the
      // parsed transport parameters.
      out.push_back(0.0);
      out.push_back(0.0);
      out.push_back(h.quic_tp && h.quic_tp->has_initial_source_connection_id
                        ? static_cast<double>(
                              h.quic_tp->initial_source_connection_id.size())
                        : 0.0);
      out.push_back(0.0);
      out.push_back(0.0);
      out.push_back(0.0);
      out.push_back(0.0);
    }
    return out;
  }

 private:
  /// The SYN option kind order is not stored on FlowHandshake directly;
  /// approximate the stack signature with the option presence/value tuple.
  static std::vector<int> kind_order(const core::FlowHandshake& h) {
    std::vector<int> order;
    if (h.tcp_mss) order.push_back(2);
    if (h.tcp_window_scale) order.push_back(3);
    if (h.tcp_sack_permitted) order.push_back(4);
    return order;
  }

  TokenDict order_dict_;
};

// ---------------------------------------------------------------------------
// Lastovicka et al. 2020: 7 TLS ClientHello fields.
// ---------------------------------------------------------------------------

class Lastovicka2020 : public BaselineExtractor {
 public:
  std::string name() const override { return "Lastovicka-2020 [28]"; }

  void fit(std::span<const core::FlowHandshake> handshakes) override {
    for (const auto& h : handshakes) {
      for (const auto& t : u16_tokens(h.chlo.cipher_suites)) suite_dict_.add(t);
      if (const auto g = h.chlo.supported_groups())
        for (const auto& t : u16_tokens(*g)) group_dict_.add(t);
    }
  }

  std::vector<double> transform(
      const core::FlowHandshake& h) const override {
    const tls::ClientHello& chlo = h.chlo;
    std::vector<double> out;
    // 1. server name (length — the name itself identifies the service, not
    //    the platform), 2. TLS version, 3. cipher suites, 4. compression
    //    methods, 5. supported groups, 6. ec_point_formats, 7. extension
    //    count.
    out.push_back(chlo.server_name() ? static_cast<double>(
                                           chlo.server_name()->size())
                                     : 0.0);
    out.push_back(chlo.legacy_version);
    encode_list(suite_dict_, u16_tokens(chlo.cipher_suites), 24, &out);
    out.push_back(static_cast<double>(chlo.compression_methods.size()));
    std::vector<std::string> groups;
    if (const auto g = chlo.supported_groups()) groups = u16_tokens(*g);
    encode_list(group_dict_, groups, 10, &out);
    double formats = 0.0;
    if (const auto f = chlo.ec_point_formats())
      formats = static_cast<double>(f->size());
    out.push_back(formats);
    out.push_back(static_cast<double>(chlo.extensions.size()));
    return out;
  }

 private:
  TokenDict suite_dict_, group_dict_;
};

// ---------------------------------------------------------------------------
// Ren et al. 2021: flow metadata + TLS message type.
// ---------------------------------------------------------------------------

class Ren2021 : public BaselineExtractor {
 public:
  std::string name() const override { return "Ren-2021 [53]"; }

  void fit(std::span<const core::FlowHandshake>) override {}

  std::vector<double> transform(
      const core::FlowHandshake& h) const override {
    // [53] reads the TLS record layer only: the record length and the
    // TLS_message_type byte. Over QUIC the record layer is inside the
    // encrypted Initial payload the method does not open — every feature
    // degenerates to a constant and accuracy collapses to the majority
    // class (the paper's 11.3%).
    std::vector<double> out;
    if (h.transport == fingerprint::Transport::Tcp) {
      out.push_back(static_cast<double>(h.chlo.handshake_body_length() + 4));
      out.push_back(1.0);  // HandshakeType.client_hello
    } else {
      out.push_back(0.0);
      out.push_back(0.0);
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<BaselineExtractor> make_anderson2019() {
  return std::make_unique<Anderson2019>();
}
std::unique_ptr<BaselineExtractor> make_fan2019() {
  return std::make_unique<Fan2019>();
}
std::unique_ptr<BaselineExtractor> make_lastovicka2020() {
  return std::make_unique<Lastovicka2020>();
}
std::unique_ptr<BaselineExtractor> make_ren2021() {
  return std::make_unique<Ren2021>();
}

std::vector<std::unique_ptr<BaselineExtractor>> all_baselines() {
  std::vector<std::unique_ptr<BaselineExtractor>> out;
  out.push_back(make_anderson2019());
  out.push_back(make_fan2019());
  out.push_back(make_lastovicka2020());
  out.push_back(make_ren2021());
  return out;
}

std::vector<std::string> non_adaptable_baselines() {
  return {"Richardson-2020 [55] (host-level session descriptors)",
          "Marzani-2023 [40] (automata over per-host flow sequences)"};
}

}  // namespace vpscope::baselines
