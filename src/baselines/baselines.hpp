// Prior-work baselines for the paper's Table 6: each method is re-implemented
// as the *feature view* it extracts from a flow, adapted exactly as the
// paper describes (flow-level granularity, expanded inference objective,
// classification pipeline added where the original only produced
// fingerprints). All views are then trained with the same random-forest
// substrate, so Table 6 compares information content, not model quality.
//
//   anderson2019  [6]  "TLS Beyond the Browser": TLS ClientHello fingerprint
//                      string components (version, ciphers, extensions,
//                      groups, formats) -> positional features.
//   fan2019      [14]  TCP/IP stack fingerprinting: network/transport header
//                      fields only (TTL, window, MSS, wscale, option order,
//                      flags); for QUIC only the IP/UDP-observable surface
//                      plus connection-id lengths remains.
//   lastovicka2020[28] 7 TLS ClientHello fields (server name length, TLS
//                      version, cipher suites, compression, supported
//                      groups, ec_point_formats, extension list).
//   ren2021      [53]  flow metadata (packet/record lengths) plus the
//                      TLS_message_type byte — which is encrypted away in
//                      QUIC, collapsing its QUIC accuracy.
//
// Richardson-2020 [55] and Marzani-2023 [40] need per-host aggregate
// session statistics and are not adaptable to per-flow classification
// behind NAT (the paper marks them "not adaptable"); they are represented
// by name only.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/handshake.hpp"
#include "ml/dataset.hpp"

namespace vpscope::baselines {

/// A prior-work feature view: fit dictionaries on training handshakes, then
/// produce numeric vectors. Mirrors core::FeatureEncoder's contract.
class BaselineExtractor {
 public:
  virtual ~BaselineExtractor() = default;
  virtual std::string name() const = 0;
  virtual void fit(std::span<const core::FlowHandshake> handshakes) = 0;
  virtual std::vector<double> transform(
      const core::FlowHandshake& handshake) const = 0;
};

std::unique_ptr<BaselineExtractor> make_anderson2019();
std::unique_ptr<BaselineExtractor> make_fan2019();
std::unique_ptr<BaselineExtractor> make_lastovicka2020();
std::unique_ptr<BaselineExtractor> make_ren2021();

/// All four adaptable baselines, in Table 6 row order.
std::vector<std::unique_ptr<BaselineExtractor>> all_baselines();

/// Names of the two non-adaptable methods (Table 6 rows with "—").
std::vector<std::string> non_adaptable_baselines();

}  // namespace vpscope::baselines
