// SHA-256 (FIPS 180-4) — the hash underpinning HKDF and the TLS 1.3 /
// QUIC v1 Initial key schedule. Streaming interface plus one-shot helper.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace vpscope::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  void update(ByteView data);
  std::array<std::uint8_t, kDigestSize> finish();

  static std::array<std::uint8_t, kDigestSize> digest(ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// HMAC-SHA256 (RFC 2104).
std::array<std::uint8_t, Sha256::kDigestSize> hmac_sha256(ByteView key,
                                                          ByteView data);

}  // namespace vpscope::crypto
