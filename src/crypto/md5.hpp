// MD5 (RFC 1321) — present solely because the JA3 TLS-fingerprint format
// (used by the Table 6 baseline methods) is defined as an MD5 of the
// fingerprint string. Not used for anything security-relevant.
#pragma once

#include <array>

#include "util/bytes.hpp"

namespace vpscope::crypto {

std::array<std::uint8_t, 16> md5(ByteView data);

}  // namespace vpscope::crypto
