// HKDF (RFC 5869) over SHA-256, plus the TLS 1.3 HKDF-Expand-Label
// construction (RFC 8446 §7.1) that the QUIC v1 Initial key schedule
// (RFC 9001 §5.2) is built from.
#pragma once

#include "util/bytes.hpp"

namespace vpscope::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Bytes hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand: derives `length` bytes of output keying material.
/// `length` must be <= 255 * 32.
Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length);

/// HKDF-Expand-Label(secret, label, context, length) with the "tls13 "
/// label prefix, as used by both TLS 1.3 and QUIC v1.
Bytes hkdf_expand_label(ByteView secret, std::string_view label,
                        ByteView context, std::size_t length);

}  // namespace vpscope::crypto
