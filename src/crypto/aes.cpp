#include "crypto/aes.hpp"

#include <cstring>
#include <stdexcept>

namespace vpscope::crypto {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

inline std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

}  // namespace

Aes128::Aes128(ByteView key) {
  if (key.size() != kKeySize) throw std::invalid_argument("AES-128 key size");
  std::memcpy(round_keys_.data(), key.data(), kKeySize);
  for (int i = 4; i < 44; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, round_keys_.data() + (i - 1) * 4, 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ kRcon[i / 4 - 1]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
    }
    for (int j = 0; j < 4; ++j)
      round_keys_[static_cast<std::size_t>(i * 4 + j)] =
          round_keys_[static_cast<std::size_t>((i - 4) * 4 + j)] ^ temp[j];
  }
}

void Aes128::encrypt_block(std::uint8_t block[kBlockSize]) const {
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i)
      block[i] ^= round_keys_[static_cast<std::size_t>(round * 16 + i)];
  };
  auto sub_bytes = [&] {
    for (int i = 0; i < 16; ++i) block[i] = kSbox[block[i]];
  };
  auto shift_rows = [&] {
    std::uint8_t t;
    // row 1: rotate left by 1
    t = block[1];
    block[1] = block[5];
    block[5] = block[9];
    block[9] = block[13];
    block[13] = t;
    // row 2: rotate left by 2
    std::swap(block[2], block[10]);
    std::swap(block[6], block[14]);
    // row 3: rotate left by 3
    t = block[15];
    block[15] = block[11];
    block[11] = block[7];
    block[7] = block[3];
    block[3] = t;
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = block + c * 4;
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      const std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
      col[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(static_cast<std::uint8_t>(a0 ^ a1)));
      col[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(static_cast<std::uint8_t>(a1 ^ a2)));
      col[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(static_cast<std::uint8_t>(a2 ^ a3)));
      col[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(static_cast<std::uint8_t>(a3 ^ a0)));
    }
  };

  add_round_key(0);
  for (int round = 1; round <= 9; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}

std::array<std::uint8_t, Aes128::kBlockSize> Aes128::encrypt_block(
    const std::array<std::uint8_t, kBlockSize>& block) const {
  std::array<std::uint8_t, kBlockSize> out = block;
  encrypt_block(out.data());
  return out;
}

namespace {

// GF(2^128) multiplication for GHASH, bitwise (slow but simple and correct).
std::array<std::uint8_t, 16> gf128_mul(const std::array<std::uint8_t, 16>& x,
                                       const std::array<std::uint8_t, 16>& y) {
  std::array<std::uint8_t, 16> z{};
  std::array<std::uint8_t, 16> v = y;
  for (int i = 0; i < 128; ++i) {
    const int byte = i / 8;
    const int bit = 7 - (i % 8);
    if ((x[static_cast<std::size_t>(byte)] >> bit) & 1) {
      for (int j = 0; j < 16; ++j) z[static_cast<std::size_t>(j)] ^= v[static_cast<std::size_t>(j)];
    }
    // v = v >> 1 (in GHASH bit order), with reduction by R = 0xe1...
    const bool lsb = v[15] & 1;
    for (int j = 15; j > 0; --j)
      v[static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(
          (v[static_cast<std::size_t>(j)] >> 1) |
          (v[static_cast<std::size_t>(j - 1)] << 7));
    v[0] >>= 1;
    if (lsb) v[0] ^= 0xe1;
  }
  return z;
}

void ghash_update(std::array<std::uint8_t, 16>& y,
                  const std::array<std::uint8_t, 16>& h, ByteView data) {
  std::size_t pos = 0;
  while (pos < data.size()) {
    std::array<std::uint8_t, 16> block{};
    const std::size_t take = std::min<std::size_t>(16, data.size() - pos);
    std::memcpy(block.data(), data.data() + pos, take);
    for (int i = 0; i < 16; ++i)
      y[static_cast<std::size_t>(i)] ^= block[static_cast<std::size_t>(i)];
    y = gf128_mul(y, h);
    pos += take;
  }
}

}  // namespace

Aes128Gcm::Aes128Gcm(ByteView key) : aes_(key) {
  std::array<std::uint8_t, 16> zero{};
  h_ = aes_.encrypt_block(zero);
}

std::array<std::uint8_t, 16> Aes128Gcm::ghash(ByteView aad,
                                              ByteView ciphertext) const {
  std::array<std::uint8_t, 16> y{};
  ghash_update(y, h_, aad);
  ghash_update(y, h_, ciphertext);
  std::array<std::uint8_t, 16> lengths{};
  const std::uint64_t aad_bits = aad.size() * 8;
  const std::uint64_t ct_bits = ciphertext.size() * 8;
  for (int i = 0; i < 8; ++i) {
    lengths[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(aad_bits >> (56 - 8 * i));
    lengths[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(ct_bits >> (56 - 8 * i));
  }
  for (int i = 0; i < 16; ++i)
    y[static_cast<std::size_t>(i)] ^= lengths[static_cast<std::size_t>(i)];
  return gf128_mul(y, h_);
}

Bytes Aes128Gcm::seal(ByteView nonce, ByteView aad, ByteView plaintext) const {
  if (nonce.size() != kNonceSize)
    throw std::invalid_argument("GCM nonce must be 12 bytes");

  // J0 = nonce || 0x00000001 for 96-bit nonces.
  std::array<std::uint8_t, 16> counter{};
  std::memcpy(counter.data(), nonce.data(), kNonceSize);
  counter[15] = 1;
  const auto tag_mask = aes_.encrypt_block(counter);

  Bytes ciphertext(plaintext.begin(), plaintext.end());
  std::uint32_t ctr = 2;
  for (std::size_t pos = 0; pos < ciphertext.size(); pos += 16, ++ctr) {
    std::array<std::uint8_t, 16> block = counter;
    for (int i = 0; i < 4; ++i)
      block[static_cast<std::size_t>(12 + i)] =
          static_cast<std::uint8_t>(ctr >> (24 - 8 * i));
    const auto keystream = aes_.encrypt_block(block);
    const std::size_t take = std::min<std::size_t>(16, ciphertext.size() - pos);
    for (std::size_t i = 0; i < take; ++i) ciphertext[pos + i] ^= keystream[i];
  }

  const auto s = ghash(aad, ciphertext);
  Bytes out = std::move(ciphertext);
  for (int i = 0; i < 16; ++i)
    out.push_back(s[static_cast<std::size_t>(i)] ^
                  tag_mask[static_cast<std::size_t>(i)]);
  return out;
}

std::optional<Bytes> Aes128Gcm::open(ByteView nonce, ByteView aad,
                                     ByteView ciphertext_and_tag) const {
  if (ciphertext_and_tag.size() < kTagSize) return std::nullopt;
  const ByteView ciphertext =
      ciphertext_and_tag.first(ciphertext_and_tag.size() - kTagSize);
  const ByteView tag = ciphertext_and_tag.last(kTagSize);

  std::array<std::uint8_t, 16> counter{};
  std::memcpy(counter.data(), nonce.data(), kNonceSize);
  counter[15] = 1;
  const auto tag_mask = aes_.encrypt_block(counter);
  const auto s = ghash(aad, ciphertext);

  std::uint8_t diff = 0;
  for (int i = 0; i < 16; ++i)
    diff |= static_cast<std::uint8_t>(
        tag[static_cast<std::size_t>(i)] ^ s[static_cast<std::size_t>(i)] ^
        tag_mask[static_cast<std::size_t>(i)]);
  if (diff != 0) return std::nullopt;

  Bytes plaintext(ciphertext.begin(), ciphertext.end());
  std::uint32_t ctr = 2;
  for (std::size_t pos = 0; pos < plaintext.size(); pos += 16, ++ctr) {
    std::array<std::uint8_t, 16> block = counter;
    for (int i = 0; i < 4; ++i)
      block[static_cast<std::size_t>(12 + i)] =
          static_cast<std::uint8_t>(ctr >> (24 - 8 * i));
    const auto keystream = aes_.encrypt_block(block);
    const std::size_t take = std::min<std::size_t>(16, plaintext.size() - pos);
    for (std::size_t i = 0; i < take; ++i) plaintext[pos + i] ^= keystream[i];
  }
  return plaintext;
}

}  // namespace vpscope::crypto
