// AES-128 block cipher (FIPS 197) with the two modes QUIC v1 Initial
// protection needs: AES-128-GCM AEAD for the packet payload (RFC 9001 §5.3)
// and raw single-block ECB encryption for header protection mask generation
// (RFC 9001 §5.4.3).
//
// This is a portable table-free implementation (S-box lookups only). It is
// not constant-time hardened; it protects nothing secret in this repository —
// all traffic is synthesized — but it is byte-exact AES, validated against
// FIPS/NIST vectors in the test suite.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace vpscope::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;

  explicit Aes128(ByteView key);

  /// Encrypts exactly one 16-byte block in place.
  void encrypt_block(std::uint8_t block[kBlockSize]) const;

  /// Convenience: encrypts a 16-byte block and returns the ciphertext.
  std::array<std::uint8_t, kBlockSize> encrypt_block(
      const std::array<std::uint8_t, kBlockSize>& block) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_;
};

/// AES-128-GCM authenticated encryption (NIST SP 800-38D) with a 12-byte
/// nonce and 16-byte tag, the parameters TLS 1.3 / QUIC v1 use.
class Aes128Gcm {
 public:
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kTagSize = 16;

  explicit Aes128Gcm(ByteView key);

  /// Returns ciphertext || tag.
  Bytes seal(ByteView nonce, ByteView aad, ByteView plaintext) const;

  /// Input is ciphertext || tag; returns plaintext, or nullopt if the tag
  /// does not verify.
  std::optional<Bytes> open(ByteView nonce, ByteView aad,
                            ByteView ciphertext_and_tag) const;

 private:
  std::array<std::uint8_t, 16> ghash(ByteView aad, ByteView ciphertext) const;

  Aes128 aes_;
  std::array<std::uint8_t, 16> h_;  // GHASH subkey = AES_K(0^128)
};

}  // namespace vpscope::crypto
