#include "crypto/md5.hpp"

#include <cmath>
#include <cstring>

namespace vpscope::crypto {

namespace {

constexpr std::uint32_t kS[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

constexpr std::uint32_t kT[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

inline std::uint32_t rotl(std::uint32_t x, std::uint32_t n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

std::array<std::uint8_t, 16> md5(ByteView data) {
  std::uint32_t a0 = 0x67452301, b0 = 0xefcdab89, c0 = 0x98badcfe,
                d0 = 0x10325476;

  Bytes msg(data.begin(), data.end());
  const std::uint64_t bit_len = static_cast<std::uint64_t>(msg.size()) * 8;
  msg.push_back(0x80);
  while (msg.size() % 64 != 56) msg.push_back(0x00);
  for (int i = 0; i < 8; ++i)
    msg.push_back(static_cast<std::uint8_t>(bit_len >> (8 * i)));

  for (std::size_t chunk = 0; chunk < msg.size(); chunk += 64) {
    std::uint32_t m[16];
    for (int i = 0; i < 16; ++i) {
      std::memcpy(&m[i], msg.data() + chunk + static_cast<std::size_t>(i) * 4, 4);
      // MD5 words are little-endian; this matches memcpy on LE hosts, but we
      // normalize explicitly to stay portable.
      const std::uint8_t* p = msg.data() + chunk + static_cast<std::size_t>(i) * 4;
      m[i] = static_cast<std::uint32_t>(p[0]) |
             static_cast<std::uint32_t>(p[1]) << 8 |
             static_cast<std::uint32_t>(p[2]) << 16 |
             static_cast<std::uint32_t>(p[3]) << 24;
    }
    std::uint32_t a = a0, b = b0, c = c0, d = d0;
    for (int i = 0; i < 64; ++i) {
      std::uint32_t f;
      int g;
      if (i < 16) {
        f = (b & c) | (~b & d);
        g = i;
      } else if (i < 32) {
        f = (d & b) | (~d & c);
        g = (5 * i + 1) % 16;
      } else if (i < 48) {
        f = b ^ c ^ d;
        g = (3 * i + 5) % 16;
      } else {
        f = c ^ (b | ~d);
        g = (7 * i) % 16;
      }
      f = f + a + kT[i] + m[g];
      a = d;
      d = c;
      c = b;
      b = b + rotl(f, kS[i]);
    }
    a0 += a;
    b0 += b;
    c0 += c;
    d0 += d;
  }

  std::array<std::uint8_t, 16> out;
  const std::uint32_t regs[4] = {a0, b0, c0, d0};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      out[static_cast<std::size_t>(i * 4 + j)] =
          static_cast<std::uint8_t>(regs[i] >> (8 * j));
  return out;
}

}  // namespace vpscope::crypto
