#include "crypto/hkdf.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace vpscope::crypto {

Bytes hkdf_extract(ByteView salt, ByteView ikm) {
  const auto prk = hmac_sha256(salt, ikm);
  return Bytes(prk.begin(), prk.end());
}

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length) {
  if (length > 255 * Sha256::kDigestSize)
    throw std::invalid_argument("hkdf_expand: length too large");
  Bytes okm;
  okm.reserve(length);
  Bytes t;  // T(i-1)
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    Bytes block(t);
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    const auto digest = hmac_sha256(prk, block);
    t.assign(digest.begin(), digest.end());
    const std::size_t take = std::min(t.size(), length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return okm;
}

Bytes hkdf_expand_label(ByteView secret, std::string_view label,
                        ByteView context, std::size_t length) {
  // struct HkdfLabel { uint16 length; opaque label<7..255>; opaque context<0..255>; }
  Writer info;
  info.u16(static_cast<std::uint16_t>(length));
  const std::string full_label = "tls13 " + std::string(label);
  info.u8(static_cast<std::uint8_t>(full_label.size()));
  info.raw(ByteView{reinterpret_cast<const std::uint8_t*>(full_label.data()),
                    full_label.size()});
  info.u8(static_cast<std::uint8_t>(context.size()));
  info.raw(context);
  return hkdf_expand(secret, info.data(), length);
}

}  // namespace vpscope::crypto
