#include "eval/scenario.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "ml/mutual_info.hpp"

namespace vpscope::eval {

using fingerprint::Provider;
using fingerprint::Transport;

std::string to_string(Objective objective) {
  switch (objective) {
    case Objective::UserPlatform: return "User platform";
    case Objective::DeviceType: return "Device type";
    case Objective::SoftwareAgent: return "Software agent";
  }
  return "?";
}

ScenarioData::ScenarioData(const synth::Dataset& dataset, Provider provider,
                           Transport transport)
    : provider_(provider), transport_(transport), encoder_(transport) {
  for (const auto& flow : dataset.flows) {
    if (flow.provider != provider || flow.transport != transport) continue;
    auto handshake = core::extract_handshake(flow.packets);
    if (!handshake) continue;
    handshakes_.push_back(std::move(*handshake));
    labels_.push_back(flow.platform);
  }
  encoder_.fit(handshakes_);

  // Stable class orderings: catalog order for platforms, enum order for
  // device/agent — restricted to classes present in this scenario.
  for (const auto& p : fingerprint::all_platforms())
    if (std::find(labels_.begin(), labels_.end(), p) != labels_.end())
      platform_classes_.push_back(p);
  std::set<int> devices, agents;
  for (const auto& label : labels_) {
    devices.insert(static_cast<int>(label.os));
    agents.insert(static_cast<int>(label.agent));
  }
  for (int d : devices) device_classes_.push_back(static_cast<fingerprint::Os>(d));
  for (int a : agents) agent_classes_.push_back(static_cast<fingerprint::Agent>(a));
}

int ScenarioData::class_id(const fingerprint::PlatformId& label,
                           Objective objective) const {
  switch (objective) {
    case Objective::UserPlatform: {
      const auto it = std::find(platform_classes_.begin(),
                                platform_classes_.end(), label);
      return it == platform_classes_.end()
                 ? -1
                 : static_cast<int>(it - platform_classes_.begin());
    }
    case Objective::DeviceType: {
      const auto it =
          std::find(device_classes_.begin(), device_classes_.end(), label.os);
      return it == device_classes_.end()
                 ? -1
                 : static_cast<int>(it - device_classes_.begin());
    }
    case Objective::SoftwareAgent: {
      const auto it = std::find(agent_classes_.begin(), agent_classes_.end(),
                                label.agent);
      return it == agent_classes_.end()
                 ? -1
                 : static_cast<int>(it - agent_classes_.begin());
    }
  }
  return -1;
}

ml::Dataset ScenarioData::to_ml(Objective objective) const {
  ml::Dataset data;
  data.x.reserve(handshakes_.size());
  data.y.reserve(handshakes_.size());
  for (std::size_t i = 0; i < handshakes_.size(); ++i) {
    data.x.push_back(encoder_.transform(handshakes_[i]));
    data.y.push_back(class_id(labels_[i], objective));
  }
  return data;
}

std::vector<double> ScenarioData::encode(
    const core::FlowHandshake& handshake) const {
  return encoder_.transform(handshake);
}

std::vector<std::string> ScenarioData::class_names(Objective objective) const {
  std::vector<std::string> names;
  switch (objective) {
    case Objective::UserPlatform:
      for (const auto& p : platform_classes_)
        names.push_back(fingerprint::to_string(p));
      break;
    case Objective::DeviceType:
      for (const auto& d : device_classes_)
        names.push_back(fingerprint::to_string(d));
      break;
    case Objective::SoftwareAgent:
      for (const auto& a : agent_classes_)
        names.push_back(fingerprint::to_string(a));
      break;
  }
  return names;
}

int ScenarioData::num_classes(Objective objective) const {
  switch (objective) {
    case Objective::UserPlatform:
      return static_cast<int>(platform_classes_.size());
    case Objective::DeviceType:
      return static_cast<int>(device_classes_.size());
    case Objective::SoftwareAgent:
      return static_cast<int>(agent_classes_.size());
  }
  return 0;
}

double cross_validate(const ml::Dataset& data, int folds, std::uint64_t seed,
                      const ModelRunner& runner) {
  const auto fold_ids = ml::stratified_fold_ids(data.y, folds, seed);
  std::size_t correct = 0, total = 0;
  for (int f = 0; f < folds; ++f) {
    std::vector<int> train_rows, test_rows;
    ml::split_fold(fold_ids, f, &train_rows, &test_rows);
    const ml::Dataset train = data.subset(train_rows);
    const ml::Dataset test = data.subset(test_rows);
    const auto predictions = runner(train, test);
    for (std::size_t i = 0; i < predictions.size(); ++i) {
      ++total;
      correct += predictions[i] == test.y[i];
    }
  }
  return total ? static_cast<double>(correct) / static_cast<double>(total)
               : 0.0;
}

ml::ConfusionMatrix cv_confusion(const ml::Dataset& data, int folds,
                                 std::uint64_t seed,
                                 const ml::ForestParams& params) {
  ml::ConfusionMatrix cm(data.num_classes());
  const auto fold_ids = ml::stratified_fold_ids(data.y, folds, seed);
  for (int f = 0; f < folds; ++f) {
    std::vector<int> train_rows, test_rows;
    ml::split_fold(fold_ids, f, &train_rows, &test_rows);
    const ml::Dataset train = data.subset(train_rows);
    const ml::Dataset test = data.subset(test_rows);
    ml::RandomForest forest;
    ml::ForestParams fp = params;
    fp.seed = seed + static_cast<std::uint64_t>(f) * 97;
    forest.fit(train, fp);
    const auto predictions = forest.predict_batch(test);
    for (std::size_t i = 0; i < predictions.size(); ++i)
      cm.add(test.y[i], predictions[i]);
  }
  return cm;
}

std::vector<AttributeStats> attribute_stats(const ScenarioData& scenario) {
  const auto& catalog = core::attribute_catalog();

  // Raw signatures per attribute per flow. The scenario's fitted interner
  // already holds every token of these handshakes (fit() saw them), so the
  // frozen lookup overload suffices.
  const core::TokenInterner& interner = scenario.encoder().interner();
  const std::size_t n = scenario.size();
  std::vector<std::vector<std::string>> signatures(core::kNumAttributes);
  core::RawAttrs raw;
  for (std::size_t i = 0; i < n; ++i) {
    core::extract_raw_attributes(scenario.handshakes()[i], interner, raw);
    for (int a = 0; a < core::kNumAttributes; ++a)
      signatures[static_cast<std::size_t>(a)].push_back(
          core::attribute_signature(raw[static_cast<std::size_t>(a)],
                                    catalog[static_cast<std::size_t>(a)].type,
                                    interner));
  }

  std::vector<int> platform_y(n), device_y(n), agent_y(n);
  for (std::size_t i = 0; i < n; ++i) {
    platform_y[i] = scenario.class_id(scenario.labels()[i],
                                      Objective::UserPlatform);
    device_y[i] = scenario.class_id(scenario.labels()[i],
                                    Objective::DeviceType);
    agent_y[i] = scenario.class_id(scenario.labels()[i],
                                   Objective::SoftwareAgent);
  }

  std::vector<AttributeStats> stats;
  for (int a : scenario.encoder().attributes()) {
    const auto& info = catalog[static_cast<std::size_t>(a)];
    const auto& sig = signatures[static_cast<std::size_t>(a)];
    AttributeStats s;
    s.attribute = a;
    s.label = info.label;
    s.field_name = info.field_name;
    s.type = info.type;
    s.cost = info.cost();
    s.unique_values = ml::unique_count(sig);
    s.info_gain_platform = ml::mutual_information(sig, platform_y);
    s.info_gain_device = ml::mutual_information(sig, device_y);
    s.info_gain_agent = ml::mutual_information(sig, agent_y);

    // "Number of user platforms with different value distributions": count
    // platforms whose per-platform signature multiset is unique among all
    // platforms (the paper's Fig. 3 purple bars).
    std::map<int, std::map<std::string, int>> per_platform;
    for (std::size_t i = 0; i < n; ++i)
      per_platform[platform_y[i]][sig[i]]++;
    // Normalize each distribution to its support-set + mode shape; compare
    // by the set of observed values (robust against count jitter).
    std::map<int, std::set<std::string>> supports;
    for (const auto& [cls, dist] : per_platform) {
      std::set<std::string> support;
      for (const auto& [value, count] : dist) support.insert(value);
      supports[cls] = std::move(support);
    }
    int distinct = 0;
    for (const auto& [cls, support] : supports) {
      bool unique = true;
      for (const auto& [other, other_support] : supports) {
        if (other != cls && other_support == support) {
          unique = false;
          break;
        }
      }
      distinct += unique;
    }
    s.distinct_platforms = distinct;
    stats.push_back(std::move(s));
  }

  // Normalize info gains by the per-objective maximum, as the paper's
  // importance plots do.
  double max_p = 0, max_d = 0, max_a = 0;
  for (const auto& s : stats) {
    max_p = std::max(max_p, s.info_gain_platform);
    max_d = std::max(max_d, s.info_gain_device);
    max_a = std::max(max_a, s.info_gain_agent);
  }
  for (auto& s : stats) {
    s.norm_platform = max_p > 0 ? s.info_gain_platform / max_p : 0.0;
    s.norm_device = max_d > 0 ? s.info_gain_device / max_d : 0.0;
    s.norm_agent = max_a > 0 ? s.info_gain_agent / max_a : 0.0;
  }
  return stats;
}

std::vector<int> attributes_by_importance(const ScenarioData& scenario) {
  auto stats = attribute_stats(scenario);
  std::sort(stats.begin(), stats.end(),
            [](const AttributeStats& a, const AttributeStats& b) {
              return a.norm_platform > b.norm_platform;
            });
  std::vector<int> out;
  out.reserve(stats.size());
  for (const auto& s : stats) out.push_back(s.attribute);
  return out;
}

std::vector<int> prune_low_importance(const ScenarioData& scenario,
                                      const std::vector<core::AttrCost>& costs,
                                      double low_threshold) {
  const auto stats = attribute_stats(scenario);
  std::vector<int> keep;
  for (const auto& s : stats) {
    const bool low_importance = s.norm_platform < low_threshold &&
                                s.norm_device < low_threshold &&
                                s.norm_agent < low_threshold;
    const bool cost_listed =
        std::find(costs.begin(), costs.end(), s.cost) != costs.end();
    if (low_importance && cost_listed) continue;  // pruned
    keep.push_back(s.attribute);
  }
  return keep;
}

}  // namespace vpscope::eval
