// Evaluation harness: assembles per-(provider, transport) scenario datasets
// from labeled flows, runs cross-validation, computes attribute-level
// information gain, and provides the shared machinery behind every bench
// binary (one per paper table/figure).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "ml/dataset.hpp"
#include "ml/forest.hpp"
#include "ml/metrics.hpp"
#include "synth/dataset.hpp"

namespace vpscope::eval {

/// The paper's three prediction objectives.
enum class Objective { UserPlatform, DeviceType, SoftwareAgent };
std::string to_string(Objective objective);

/// All handshakes + labels of one (provider, transport) scenario, with a
/// fitted encoder. This is the unit every experiment operates on.
class ScenarioData {
 public:
  /// Extracts handshakes for the scenario from a labeled dataset and fits
  /// the encoder on them.
  ScenarioData(const synth::Dataset& dataset, fingerprint::Provider provider,
               fingerprint::Transport transport);

  fingerprint::Provider provider() const { return provider_; }
  fingerprint::Transport transport() const { return transport_; }
  std::size_t size() const { return handshakes_.size(); }
  const core::FeatureEncoder& encoder() const { return encoder_; }
  const std::vector<core::FlowHandshake>& handshakes() const {
    return handshakes_;
  }
  const std::vector<fingerprint::PlatformId>& labels() const {
    return labels_;
  }

  /// Encoded ml::Dataset for an objective. Class ids index `class_names()`.
  ml::Dataset to_ml(Objective objective) const;

  /// Encodes an external handshake (e.g. an open-set flow) with this
  /// scenario's fitted dictionaries.
  std::vector<double> encode(const core::FlowHandshake& handshake) const;

  /// Class id for an external label under an objective (-1 if the class was
  /// never seen in this scenario).
  int class_id(const fingerprint::PlatformId& label,
               Objective objective) const;

  std::vector<std::string> class_names(Objective objective) const;
  int num_classes(Objective objective) const;

 private:
  fingerprint::Provider provider_;
  fingerprint::Transport transport_;
  core::FeatureEncoder encoder_;
  std::vector<core::FlowHandshake> handshakes_;
  std::vector<fingerprint::PlatformId> labels_;
  std::vector<fingerprint::PlatformId> platform_classes_;
  std::vector<fingerprint::Os> device_classes_;
  std::vector<fingerprint::Agent> agent_classes_;
};

/// A model factory: trains on a dataset and returns a batch predictor.
using ModelRunner = std::function<std::vector<int>(const ml::Dataset& train,
                                                   const ml::Dataset& test)>;

/// k-fold cross-validated accuracy of a model on a dataset.
double cross_validate(const ml::Dataset& data, int folds, std::uint64_t seed,
                      const ModelRunner& runner);

/// k-fold cross-validated confusion matrix (pooled over folds) using a
/// random forest with the given params.
ml::ConfusionMatrix cv_confusion(const ml::Dataset& data, int folds,
                                 std::uint64_t seed,
                                 const ml::ForestParams& params);

/// Per-attribute importance analysis (Fig. 3/5/13/14 substrate).
struct AttributeStats {
  int attribute = 0;          // catalog index
  std::string label;          // "t1".."q20"
  std::string field_name;
  core::AttrType type{};
  core::AttrCost cost{};
  int unique_values = 0;      // Fig. 3 blue bars
  int distinct_platforms = 0; // Fig. 3 purple bars
  double info_gain_platform = 0.0;  // raw MI in bits
  double info_gain_device = 0.0;
  double info_gain_agent = 0.0;
  // Normalized (divided by the max across attributes, as the paper plots).
  double norm_platform = 0.0;
  double norm_device = 0.0;
  double norm_agent = 0.0;
};

std::vector<AttributeStats> attribute_stats(const ScenarioData& scenario);

/// Ranks applicable attributes by normalized platform info gain, descending
/// (used for the Fig. 6(a) "number of attributes" sweep).
std::vector<int> attributes_by_importance(const ScenarioData& scenario);

/// Attribute subsets of Table 5: all applicable attributes minus
/// low-importance (< `low_threshold` normalized gain) attributes of the
/// given costs.
std::vector<int> prune_low_importance(
    const ScenarioData& scenario, const std::vector<core::AttrCost>& costs,
    double low_threshold = 0.1);

}  // namespace vpscope::eval
