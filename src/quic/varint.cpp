#include "quic/varint.hpp"

#include <stdexcept>

namespace vpscope::quic {

std::size_t varint_size(std::uint64_t v) {
  if (v < 0x40) return 1;
  if (v < 0x4000) return 2;
  if (v < 0x40000000) return 4;
  return 8;
}

void put_varint(Writer& w, std::uint64_t v) {
  if (v > kVarintMax) throw std::invalid_argument("varint overflow");
  switch (varint_size(v)) {
    case 1:
      w.u8(static_cast<std::uint8_t>(v));
      break;
    case 2:
      w.u16(static_cast<std::uint16_t>(v | 0x4000));
      break;
    case 4:
      w.u32(static_cast<std::uint32_t>(v | 0x80000000u));
      break;
    default:
      w.u64(v | 0xc000000000000000ULL);
      break;
  }
}

void put_varint_forced(Writer& w, std::uint64_t v, std::size_t len) {
  switch (len) {
    case 1:
      if (v >= 0x40) throw std::invalid_argument("varint_forced: 1-byte");
      w.u8(static_cast<std::uint8_t>(v));
      break;
    case 2:
      if (v >= 0x4000) throw std::invalid_argument("varint_forced: 2-byte");
      w.u16(static_cast<std::uint16_t>(v | 0x4000));
      break;
    case 4:
      if (v >= 0x40000000) throw std::invalid_argument("varint_forced: 4-byte");
      w.u32(static_cast<std::uint32_t>(v | 0x80000000u));
      break;
    case 8:
      if (v > kVarintMax) throw std::invalid_argument("varint_forced: 8-byte");
      w.u64(v | 0xc000000000000000ULL);
      break;
    default:
      throw std::invalid_argument("varint_forced: bad length");
  }
}

std::uint64_t get_varint(Reader& r) {
  const std::uint8_t first = r.u8();
  if (!r.ok()) return 0;
  const int len_bits = first >> 6;
  std::uint64_t v = first & 0x3f;
  const int extra = (1 << len_bits) - 1;
  for (int i = 0; i < extra; ++i) v = v << 8 | r.u8();
  return r.ok() ? v : 0;
}

}  // namespace vpscope::quic
