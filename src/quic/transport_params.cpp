#include "quic/transport_params.hpp"

#include <algorithm>

#include "quic/varint.hpp"

namespace vpscope::quic {

namespace {

void put_param_varint(Writer& w, std::uint64_t id, std::uint64_t value) {
  put_varint(w, id);
  put_varint(w, varint_size(value));
  put_varint(w, value);
}

void put_param_bytes(Writer& w, std::uint64_t id, ByteView value) {
  put_varint(w, id);
  put_varint(w, value.size());
  w.raw(value);
}

void put_param_empty(Writer& w, std::uint64_t id) {
  put_varint(w, id);
  put_varint(w, 0);
}

}  // namespace

Bytes TransportParameters::serialize() const {
  std::vector<std::uint64_t> order = param_order;
  if (order.empty()) {
    auto maybe = [&](bool present, std::uint64_t id) {
      if (present) order.push_back(id);
    };
    maybe(max_idle_timeout.has_value(), tp::kMaxIdleTimeout);
    maybe(max_udp_payload_size.has_value(), tp::kMaxUdpPayloadSize);
    maybe(initial_max_data.has_value(), tp::kInitialMaxData);
    maybe(initial_max_stream_data_bidi_local.has_value(),
          tp::kInitialMaxStreamDataBidiLocal);
    maybe(initial_max_stream_data_bidi_remote.has_value(),
          tp::kInitialMaxStreamDataBidiRemote);
    maybe(initial_max_stream_data_uni.has_value(),
          tp::kInitialMaxStreamDataUni);
    maybe(initial_max_streams_bidi.has_value(), tp::kInitialMaxStreamsBidi);
    maybe(initial_max_streams_uni.has_value(), tp::kInitialMaxStreamsUni);
    maybe(ack_delay_exponent.has_value(), tp::kAckDelayExponent);
    maybe(max_ack_delay.has_value(), tp::kMaxAckDelay);
    maybe(disable_active_migration, tp::kDisableActiveMigration);
    maybe(active_connection_id_limit.has_value(),
          tp::kActiveConnectionIdLimit);
    maybe(has_initial_source_connection_id, tp::kInitialSourceConnectionId);
    maybe(max_datagram_frame_size.has_value(), tp::kMaxDatagramFrameSize);
    maybe(grease_quic_bit, tp::kGreaseQuicBit);
    maybe(initial_rtt_us.has_value(), tp::kInitialRtt);
    maybe(google_connection_options.has_value(),
          tp::kGoogleConnectionOptions);
    maybe(user_agent.has_value(), tp::kUserAgent);
    maybe(google_version.has_value(), tp::kGoogleVersion);
  }

  Writer w;
  for (std::uint64_t id : order) {
    switch (id) {
      case tp::kMaxIdleTimeout:
        if (max_idle_timeout) put_param_varint(w, id, *max_idle_timeout);
        break;
      case tp::kMaxUdpPayloadSize:
        if (max_udp_payload_size)
          put_param_varint(w, id, *max_udp_payload_size);
        break;
      case tp::kInitialMaxData:
        if (initial_max_data) put_param_varint(w, id, *initial_max_data);
        break;
      case tp::kInitialMaxStreamDataBidiLocal:
        if (initial_max_stream_data_bidi_local)
          put_param_varint(w, id, *initial_max_stream_data_bidi_local);
        break;
      case tp::kInitialMaxStreamDataBidiRemote:
        if (initial_max_stream_data_bidi_remote)
          put_param_varint(w, id, *initial_max_stream_data_bidi_remote);
        break;
      case tp::kInitialMaxStreamDataUni:
        if (initial_max_stream_data_uni)
          put_param_varint(w, id, *initial_max_stream_data_uni);
        break;
      case tp::kInitialMaxStreamsBidi:
        if (initial_max_streams_bidi)
          put_param_varint(w, id, *initial_max_streams_bidi);
        break;
      case tp::kInitialMaxStreamsUni:
        if (initial_max_streams_uni)
          put_param_varint(w, id, *initial_max_streams_uni);
        break;
      case tp::kAckDelayExponent:
        if (ack_delay_exponent) put_param_varint(w, id, *ack_delay_exponent);
        break;
      case tp::kMaxAckDelay:
        if (max_ack_delay) put_param_varint(w, id, *max_ack_delay);
        break;
      case tp::kDisableActiveMigration:
        if (disable_active_migration) put_param_empty(w, id);
        break;
      case tp::kActiveConnectionIdLimit:
        if (active_connection_id_limit)
          put_param_varint(w, id, *active_connection_id_limit);
        break;
      case tp::kInitialSourceConnectionId:
        if (has_initial_source_connection_id)
          put_param_bytes(w, id, initial_source_connection_id);
        break;
      case tp::kMaxDatagramFrameSize:
        if (max_datagram_frame_size)
          put_param_varint(w, id, *max_datagram_frame_size);
        break;
      case tp::kGreaseQuicBit:
        if (grease_quic_bit) put_param_empty(w, id);
        break;
      case tp::kInitialRtt:
        if (initial_rtt_us) put_param_varint(w, id, *initial_rtt_us);
        break;
      case tp::kGoogleConnectionOptions:
        if (google_connection_options)
          put_param_bytes(
              w, id,
              ByteView{reinterpret_cast<const std::uint8_t*>(
                           google_connection_options->data()),
                       google_connection_options->size()});
        break;
      case tp::kUserAgent:
        if (user_agent)
          put_param_bytes(w, id,
                          ByteView{reinterpret_cast<const std::uint8_t*>(
                                       user_agent->data()),
                                   user_agent->size()});
        break;
      case tp::kGoogleVersion:
        if (google_version) {
          Writer v;
          v.u32(*google_version);
          put_param_bytes(w, id, v.data());
        }
        break;
      default:
        if (tp::is_grease(id)) {
          // GREASE parameters carry a short opaque value.
          const std::uint8_t junk = 0xda;
          put_param_bytes(w, id, ByteView{&junk, 1});
        }
        break;
    }
  }
  return std::move(w).take();
}

std::optional<TransportParameters> TransportParameters::parse(ByteView body) {
  TransportParameters out;
  Reader r(body);
  while (!r.empty()) {
    const std::uint64_t id = get_varint(r);
    const std::uint64_t len = get_varint(r);
    if (!r.ok()) return std::nullopt;
    const ByteView value = r.view(static_cast<std::size_t>(len));
    if (!r.ok()) return std::nullopt;
    out.param_order.push_back(id);

    Reader vr(value);
    auto read_varint_value = [&]() -> std::optional<std::uint64_t> {
      const std::uint64_t v = get_varint(vr);
      return vr.ok() ? std::optional(v) : std::nullopt;
    };

    switch (id) {
      case tp::kMaxIdleTimeout:
        out.max_idle_timeout = read_varint_value();
        break;
      case tp::kMaxUdpPayloadSize:
        out.max_udp_payload_size = read_varint_value();
        break;
      case tp::kInitialMaxData:
        out.initial_max_data = read_varint_value();
        break;
      case tp::kInitialMaxStreamDataBidiLocal:
        out.initial_max_stream_data_bidi_local = read_varint_value();
        break;
      case tp::kInitialMaxStreamDataBidiRemote:
        out.initial_max_stream_data_bidi_remote = read_varint_value();
        break;
      case tp::kInitialMaxStreamDataUni:
        out.initial_max_stream_data_uni = read_varint_value();
        break;
      case tp::kInitialMaxStreamsBidi:
        out.initial_max_streams_bidi = read_varint_value();
        break;
      case tp::kInitialMaxStreamsUni:
        out.initial_max_streams_uni = read_varint_value();
        break;
      case tp::kAckDelayExponent:
        out.ack_delay_exponent = read_varint_value();
        break;
      case tp::kMaxAckDelay:
        out.max_ack_delay = read_varint_value();
        break;
      case tp::kDisableActiveMigration:
        out.disable_active_migration = true;
        break;
      case tp::kActiveConnectionIdLimit:
        out.active_connection_id_limit = read_varint_value();
        break;
      case tp::kInitialSourceConnectionId:
        out.initial_source_connection_id.assign(value.begin(), value.end());
        out.has_initial_source_connection_id = true;
        break;
      case tp::kMaxDatagramFrameSize:
        out.max_datagram_frame_size = read_varint_value();
        break;
      case tp::kGreaseQuicBit:
        out.grease_quic_bit = true;
        break;
      case tp::kInitialRtt:
        out.initial_rtt_us = read_varint_value();
        break;
      case tp::kGoogleConnectionOptions:
        out.google_connection_options =
            std::string(reinterpret_cast<const char*>(value.data()),
                        value.size());
        break;
      case tp::kUserAgent:
        out.user_agent = std::string(
            reinterpret_cast<const char*>(value.data()), value.size());
        break;
      case tp::kGoogleVersion:
        if (value.size() >= 4)
          out.google_version = static_cast<std::uint32_t>(value[0]) << 24 |
                               static_cast<std::uint32_t>(value[1]) << 16 |
                               static_cast<std::uint32_t>(value[2]) << 8 |
                               value[3];
        break;
      default:
        break;  // unknown/GREASE ids are recorded in param_order only
    }
  }
  return out;
}

}  // namespace vpscope::quic
