// QUIC variable-length integers (RFC 9000 §16): 1/2/4/8-byte encodings
// selected by the top two bits of the first byte.
//
// Canonicality policy (pinned by tests/quic_test.cpp's edge-case table):
//
//   decode  get_varint ACCEPTS non-canonical (over-long) encodings, e.g.
//           0x4001 for the value 1. RFC 9000 only mandates the minimal
//           encoding for a handful of fields (frame types, packet numbers);
//           endpoints accept over-long encodings elsewhere, so an on-path
//           observer that rejected them would drop flows real clients and
//           servers successfully complete. Truncated encodings fail via the
//           Reader's sticky failure.
//   encode  put_varint always emits the minimal encoding and throws on
//           values above kVarintMax. Serialization is therefore a
//           *normalization*: parse -> serialize maps every over-long
//           encoding to its canonical form (the harness' fixpoint oracle
//           holds after one such round).
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace vpscope::quic {

inline constexpr std::uint64_t kVarintMax = (1ULL << 62) - 1;

/// Appends the minimal-length encoding of `v` (must be <= kVarintMax).
void put_varint(Writer& w, std::uint64_t v);

/// Appends a forced `len`-byte (1/2/4/8) encoding, possibly non-canonical;
/// `v` must fit in len's 2-bit-tagged payload. Test/fuzz use only — the
/// production serializers stay canonical via put_varint.
void put_varint_forced(Writer& w, std::uint64_t v, std::size_t len);

/// Number of bytes the minimal encoding of `v` occupies (1, 2, 4 or 8).
std::size_t varint_size(std::uint64_t v);

/// Reads one varint; uses the Reader's sticky failure on truncation.
std::uint64_t get_varint(Reader& r);

}  // namespace vpscope::quic
