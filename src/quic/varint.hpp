// QUIC variable-length integers (RFC 9000 §16): 1/2/4/8-byte encodings
// selected by the top two bits of the first byte.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace vpscope::quic {

inline constexpr std::uint64_t kVarintMax = (1ULL << 62) - 1;

/// Appends the minimal-length encoding of `v` (must be <= kVarintMax).
void put_varint(Writer& w, std::uint64_t v);

/// Number of bytes the minimal encoding of `v` occupies (1, 2, 4 or 8).
std::size_t varint_size(std::uint64_t v);

/// Reads one varint; uses the Reader's sticky failure on truncation.
std::uint64_t get_varint(Reader& r);

}  // namespace vpscope::quic
