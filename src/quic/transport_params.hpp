// QUIC transport parameters (RFC 9000 §18) as carried in the TLS
// quic_transport_parameters extension, including the Google/Chromium
// proprietary parameters the paper lists as attributes q17..q19
// (google_connection_options, user_agent, google_version) and q16
// (initial_rtt).
//
// The struct keeps the *on-wire parameter id order* — client stacks emit
// these in stack-specific orders, another fingerprinting surface.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace vpscope::quic {

// Parameter ids (RFC 9000 + Chromium extras).
namespace tp {
inline constexpr std::uint64_t kMaxIdleTimeout = 0x01;
inline constexpr std::uint64_t kMaxUdpPayloadSize = 0x03;
inline constexpr std::uint64_t kInitialMaxData = 0x04;
inline constexpr std::uint64_t kInitialMaxStreamDataBidiLocal = 0x05;
inline constexpr std::uint64_t kInitialMaxStreamDataBidiRemote = 0x06;
inline constexpr std::uint64_t kInitialMaxStreamDataUni = 0x07;
inline constexpr std::uint64_t kInitialMaxStreamsBidi = 0x08;
inline constexpr std::uint64_t kInitialMaxStreamsUni = 0x09;
inline constexpr std::uint64_t kAckDelayExponent = 0x0a;
inline constexpr std::uint64_t kMaxAckDelay = 0x0b;
inline constexpr std::uint64_t kDisableActiveMigration = 0x0c;
inline constexpr std::uint64_t kActiveConnectionIdLimit = 0x0e;
inline constexpr std::uint64_t kInitialSourceConnectionId = 0x0f;
inline constexpr std::uint64_t kMaxDatagramFrameSize = 0x20;
inline constexpr std::uint64_t kGreaseQuicBit = 0x2ab2;
inline constexpr std::uint64_t kInitialRtt = 0x3127;           // Google
inline constexpr std::uint64_t kGoogleConnectionOptions = 0x3128;  // Google
inline constexpr std::uint64_t kUserAgent = 0x3129;            // Google
inline constexpr std::uint64_t kGoogleVersion = 0x4752;        // Google

/// GREASE transport parameters are reserved ids of the form 31*N+27.
inline constexpr bool is_grease(std::uint64_t id) { return id % 31 == 27; }
}  // namespace tp

struct TransportParameters {
  std::optional<std::uint64_t> max_idle_timeout;        // q2 (ms)
  std::optional<std::uint64_t> max_udp_payload_size;    // q3
  std::optional<std::uint64_t> initial_max_data;        // q4
  std::optional<std::uint64_t> initial_max_stream_data_bidi_local;   // q5
  std::optional<std::uint64_t> initial_max_stream_data_bidi_remote;  // q6
  std::optional<std::uint64_t> initial_max_stream_data_uni;          // q7
  std::optional<std::uint64_t> initial_max_streams_bidi;             // q8
  std::optional<std::uint64_t> initial_max_streams_uni;              // q9
  std::optional<std::uint64_t> max_ack_delay;           // q10 (ms)
  bool disable_active_migration = false;                // q11
  std::optional<std::uint64_t> active_connection_id_limit;  // q12
  Bytes initial_source_connection_id;                   // q13 (length matters)
  bool has_initial_source_connection_id = false;
  std::optional<std::uint64_t> max_datagram_frame_size;  // q14
  bool grease_quic_bit = false;                          // q15
  std::optional<std::uint64_t> initial_rtt_us = {};      // q16 (Google, µs)
  std::optional<std::string> google_connection_options;  // q17 (tag list)
  std::optional<std::string> user_agent;                 // q18
  std::optional<std::uint32_t> google_version;           // q19
  std::optional<std::uint64_t> ack_delay_exponent;       // carried, not an attr

  /// Parameter ids in wire order (q1 "quic_parameters" list attribute);
  /// includes GREASE ids when present.
  std::vector<std::uint64_t> param_order;

  /// Serializes in `param_order` order when non-empty (ids absent from the
  /// struct are skipped; GREASE ids emit a 1-byte opaque value); otherwise
  /// in ascending id order.
  Bytes serialize() const;

  static std::optional<TransportParameters> parse(ByteView body);
};

}  // namespace vpscope::quic
