#include "quic/initial.hpp"

#include <algorithm>
#include <array>

#include "crypto/aes.hpp"
#include "crypto/hkdf.hpp"
#include "quic/varint.hpp"

namespace vpscope::quic {

namespace {

// RFC 9001 §5.2: initial_salt for QUIC v1.
const Bytes& initial_salt_v1() {
  static const Bytes salt = from_hex("38762cf7f55934b34d179ae6a4c80cadccbb7f0a");
  return salt;
}

constexpr std::uint8_t kFramePadding = 0x00;
constexpr std::uint8_t kFramePing = 0x01;
constexpr std::uint8_t kFrameCrypto = 0x06;

// We always encode the packet number in 4 bytes and the Length field as a
// 2-byte varint: both are choices real clients make for Initial packets and
// they keep offset arithmetic simple.
constexpr std::size_t kPnLen = 4;

Bytes make_nonce(const Bytes& iv, std::uint64_t packet_number) {
  Bytes nonce = iv;
  for (int i = 0; i < 8; ++i)
    nonce[nonce.size() - 1 - static_cast<std::size_t>(i)] ^=
        static_cast<std::uint8_t>(packet_number >> (8 * i));
  return nonce;
}

void put_varint_2byte(Writer& w, std::uint64_t v) {
  // Forced 2-byte encoding (RFC 9000 allows non-minimal varints for Length).
  w.u16(static_cast<std::uint16_t>(v | 0x4000));
}

}  // namespace

InitialKeys derive_client_initial_keys(ByteView dcid) {
  const Bytes initial_secret = crypto::hkdf_extract(initial_salt_v1(), dcid);
  const Bytes client_secret =
      crypto::hkdf_expand_label(initial_secret, "client in", {}, 32);
  InitialKeys keys;
  keys.key = crypto::hkdf_expand_label(client_secret, "quic key", {}, 16);
  keys.iv = crypto::hkdf_expand_label(client_secret, "quic iv", {}, 12);
  keys.hp = crypto::hkdf_expand_label(client_secret, "quic hp", {}, 16);
  return keys;
}

std::vector<Bytes> build_client_initial_flight(
    ByteView dcid, ByteView scid, ByteView crypto_stream,
    std::uint64_t first_packet_number, std::size_t datagram_size) {
  const InitialKeys keys = derive_client_initial_keys(dcid);
  const crypto::Aes128Gcm aead(keys.key);
  const crypto::Aes128 hp_cipher(keys.hp);

  const std::size_t target = std::max(datagram_size, kMinInitialDatagram);
  // Per-datagram budget for CRYPTO payload. Header:
  // 1 (first byte) + 4 (version) + 1 + dcid + 1 + scid + 1 (token len 0)
  // + 2 (length varint) + 4 (packet number); plus 16 B AEAD tag.
  const std::size_t header_len = 1 + 4 + 1 + dcid.size() + 1 + scid.size() +
                                 1 + 2 + kPnLen;
  const std::size_t max_plain = target - header_len - 16;

  std::vector<Bytes> datagrams;
  std::size_t offset = 0;
  std::uint64_t pn = first_packet_number;
  do {
    // CRYPTO frame header: type(1) + offset varint + length varint(2-byte).
    Writer plain;
    const std::size_t frame_overhead = 1 + varint_size(offset) + 2;
    const std::size_t chunk =
        std::min(crypto_stream.size() - offset, max_plain - frame_overhead);
    plain.u8(kFrameCrypto);
    put_varint(plain, offset);
    put_varint_2byte(plain, chunk);
    plain.raw(crypto_stream.subspan(offset, chunk));
    offset += chunk;
    // Pad the plaintext so the datagram reaches the 1200-byte floor.
    while (plain.size() < max_plain) plain.u8(kFramePadding);

    // Header (AAD) with the *unprotected* first byte and packet number.
    Writer hdr;
    hdr.u8(0xc0 | (kPnLen - 1));  // long header, fixed bit, Initial, pn len
    hdr.u32(kQuicVersion1);
    hdr.u8(static_cast<std::uint8_t>(dcid.size()));
    hdr.raw(dcid);
    hdr.u8(static_cast<std::uint8_t>(scid.size()));
    hdr.raw(scid);
    put_varint(hdr, 0);  // token length (client Initials carry none here)
    put_varint_2byte(hdr, kPnLen + plain.size() + 16);  // Length field
    const std::size_t pn_offset = hdr.size();
    hdr.u32(static_cast<std::uint32_t>(pn));

    const Bytes nonce = make_nonce(keys.iv, pn);
    const Bytes sealed = aead.seal(nonce, hdr.data(), plain.data());

    Bytes packet = hdr.data();
    packet.insert(packet.end(), sealed.begin(), sealed.end());

    // Header protection (RFC 9001 §5.4): sample 16 bytes starting 4 bytes
    // past the packet number start, mask the first byte's low nibble and
    // the packet number bytes.
    std::array<std::uint8_t, 16> sample{};
    std::copy_n(packet.begin() + static_cast<std::ptrdiff_t>(pn_offset + 4),
                16, sample.begin());
    const auto mask = hp_cipher.encrypt_block(sample);
    packet[0] ^= mask[0] & 0x0f;
    for (std::size_t i = 0; i < kPnLen; ++i) packet[pn_offset + i] ^= mask[i + 1];

    datagrams.push_back(std::move(packet));
    ++pn;
  } while (offset < crypto_stream.size());
  return datagrams;
}

bool looks_like_initial(ByteView datagram) {
  if (datagram.size() < 7) return false;
  const std::uint8_t first = datagram[0];
  if ((first & 0x80) == 0) return false;  // not long header
  if ((first & 0x30) != 0x00) return false;  // not Initial
  const std::uint32_t version = static_cast<std::uint32_t>(datagram[1]) << 24 |
                                static_cast<std::uint32_t>(datagram[2]) << 16 |
                                static_cast<std::uint32_t>(datagram[3]) << 8 |
                                datagram[4];
  return version == kQuicVersion1;
}

std::optional<InitialPacket> unprotect_client_initial(ByteView datagram) {
  if (!looks_like_initial(datagram)) return std::nullopt;

  Reader r(datagram);
  const std::uint8_t first_protected = r.u8();
  const std::uint32_t version = r.u32();
  const std::uint8_t dcid_len = r.u8();
  const Bytes dcid = r.bytes(dcid_len);
  const std::uint8_t scid_len = r.u8();
  const Bytes scid = r.bytes(scid_len);
  const std::uint64_t token_len = get_varint(r);
  const Bytes token = r.bytes(static_cast<std::size_t>(token_len));
  const std::uint64_t length = get_varint(r);
  if (!r.ok()) return std::nullopt;
  const std::size_t pn_offset = r.offset();
  if (r.remaining() < length || length < kPnLen + 16) return std::nullopt;

  const InitialKeys keys = derive_client_initial_keys(dcid);
  const crypto::Aes128 hp_cipher(keys.hp);

  if (datagram.size() < pn_offset + 4 + 16) return std::nullopt;
  std::array<std::uint8_t, 16> sample{};
  std::copy_n(datagram.begin() + static_cast<std::ptrdiff_t>(pn_offset + 4),
              16, sample.begin());
  const auto mask = hp_cipher.encrypt_block(sample);

  const std::uint8_t first = first_protected ^ (mask[0] & 0x0f);
  const std::size_t pn_len = static_cast<std::size_t>(first & 0x03) + 1;
  std::uint64_t pn = 0;
  Bytes header(datagram.begin(),
               datagram.begin() + static_cast<std::ptrdiff_t>(pn_offset + pn_len));
  header[0] = first;
  for (std::size_t i = 0; i < pn_len; ++i) {
    const std::uint8_t b = datagram[pn_offset + i] ^ mask[i + 1];
    header[pn_offset + i] = b;
    pn = pn << 8 | b;
  }
  // No packet-number recovery against a larger expected window is needed:
  // Initials arrive with tiny PNs and we always observe from packet 0.

  const crypto::Aes128Gcm aead(keys.key);
  const Bytes nonce = make_nonce(keys.iv, pn);
  const ByteView ciphertext =
      datagram.subspan(pn_offset + pn_len,
                       static_cast<std::size_t>(length) - pn_len);
  const auto plain = aead.open(nonce, header, ciphertext);
  if (!plain) return std::nullopt;

  InitialPacket out;
  out.version = version;
  out.dcid = dcid;
  out.scid = scid;
  out.token = token;
  out.packet_number = pn;

  Reader fr(*plain);
  while (!fr.empty()) {
    const std::uint8_t type = fr.u8();
    if (!fr.ok()) break;
    if (type == kFramePadding || type == kFramePing) continue;
    if (type == kFrameCrypto) {
      const std::uint64_t off = get_varint(fr);
      const std::uint64_t len = get_varint(fr);
      if (!fr.ok()) return std::nullopt;
      Bytes data = fr.bytes(static_cast<std::size_t>(len));
      if (!fr.ok()) return std::nullopt;
      out.crypto_fragments.emplace_back(off, std::move(data));
    } else {
      // Unknown frame in an Initial we synthesized ourselves: treat as
      // malformed rather than guessing its length encoding.
      return std::nullopt;
    }
  }
  return out;
}

void CryptoReassembler::add(const InitialPacket& packet) {
  for (const auto& frag : packet.crypto_fragments) fragments_.push_back(frag);
}

Bytes CryptoReassembler::contiguous_prefix() const {
  auto sorted = fragments_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Bytes out;
  for (const auto& [off, data] : sorted) {
    if (off > out.size()) break;  // gap
    if (off + data.size() <= out.size()) continue;  // fully duplicate
    const std::size_t skip = out.size() - static_cast<std::size_t>(off);
    out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(skip),
               data.end());
  }
  return out;
}

}  // namespace vpscope::quic
