// QUIC v1 Initial packets with real RFC 9001 protection.
//
// The paper's pipeline must "identify and decrypt QUIC Initial packets and
// extract handshake attributes from TLS CHLO messages over QUIC" (§4.3.4).
// Initial packets are encrypted with keys derived *from the public DCID*, so
// any on-path observer can remove the protection; this module implements
// both directions:
//
//   synthesize:  ClientHello bytes -> CRYPTO frames -> AEAD-sealed,
//                header-protected Initial packet(s), padded to >= 1200 B
//   observe:     UDP datagram -> header unprotection -> AEAD open ->
//                CRYPTO reassembly -> ClientHello bytes
//
// Large ClientHellos (e.g. post-quantum key shares) are split across
// multiple Initial datagrams, as real clients do.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.hpp"

namespace vpscope::quic {

inline constexpr std::uint32_t kQuicVersion1 = 0x00000001;
inline constexpr std::size_t kMinInitialDatagram = 1200;

/// Cleartext view of one Initial packet (after header/payload unprotection).
struct InitialPacket {
  std::uint32_t version = kQuicVersion1;
  Bytes dcid;
  Bytes scid;
  Bytes token;
  std::uint64_t packet_number = 0;
  /// CRYPTO frame fragments carried by this packet: (stream offset, data).
  std::vector<std::pair<std::uint64_t, Bytes>> crypto_fragments;
};

/// Client Initial AEAD/HP key material derived from the DCID (RFC 9001 §5.2).
struct InitialKeys {
  Bytes key;  // 16 B, AES-128-GCM
  Bytes iv;   // 12 B
  Bytes hp;   // 16 B, header protection
};

InitialKeys derive_client_initial_keys(ByteView dcid);

/// Builds the protected client Initial flight carrying `crypto_stream`
/// (a serialized TLS handshake message). Returns one or more UDP payloads;
/// every datagram is padded to `datagram_size` bytes (client stacks pad to
/// stack-specific sizes >= the RFC 9000 floor of 1200; values below the
/// floor are clamped up to it).
std::vector<Bytes> build_client_initial_flight(
    ByteView dcid, ByteView scid, ByteView crypto_stream,
    std::uint64_t first_packet_number = 0,
    std::size_t datagram_size = kMinInitialDatagram);

/// Removes protection from one client Initial datagram. Returns nullopt if
/// the datagram is not a v1 Initial or authentication fails.
std::optional<InitialPacket> unprotect_client_initial(ByteView datagram);

/// Convenience for observers: feeds datagrams of one flow in order and
/// reassembles the CRYPTO stream. Returns nullopt until the stream is
/// gapless from offset 0; callers typically stop as soon as a full
/// ClientHello parses.
class CryptoReassembler {
 public:
  void add(const InitialPacket& packet);
  /// Contiguous prefix of the CRYPTO stream assembled so far.
  Bytes contiguous_prefix() const;

 private:
  std::vector<std::pair<std::uint64_t, Bytes>> fragments_;
};

/// True if the datagram looks like a QUIC v1 long-header Initial (cheap
/// pre-filter used by the pipeline before attempting decryption).
bool looks_like_initial(ByteView datagram);

}  // namespace vpscope::quic
