#include "core/handshake.hpp"

#include "quic/initial.hpp"

namespace vpscope::core {

using fingerprint::Transport;

bool HandshakeExtractor::feed(const net::DecodedPacket& packet) {
  if (complete_ || failed_) return false;
  if (packet.tcp) return feed_tcp(packet);
  if (packet.udp) return feed_quic(packet);
  return false;
}

bool HandshakeExtractor::feed_tcp(const net::DecodedPacket& packet) {
  const net::TcpHeader& tcp = *packet.tcp;

  // The client SYN opens the observation.
  if (tcp.flags.syn && !tcp.flags.ack) {
    if (seen_syn_) return false;  // retransmission; first one wins
    seen_syn_ = true;
    client_addr_ = packet.src;
    client_port_ = tcp.src_port;

    FlowHandshake h;
    h.transport = Transport::Tcp;
    h.init_packet_size = packet.ip_packet_size;
    h.ttl = packet.ttl;
    h.syn_flags = tcp.flags;
    h.tcp_window = tcp.window;
    h.tcp_mss = tcp.options.mss;
    h.tcp_window_scale = tcp.options.window_scale;
    h.tcp_sack_permitted = tcp.options.sack_permitted;
    result_ = std::move(h);
    return true;
  }

  if (!seen_syn_ || !client_addr_) return false;
  // Only client-to-server payload can carry the ClientHello.
  if (packet.src != *client_addr_ || tcp.src_port != client_port_)
    return false;
  if (packet.payload.empty()) return false;

  tcp_stream_.insert(tcp_stream_.end(), packet.payload.begin(),
                     packet.payload.end());
  // A ClientHello comfortably fits the first few segments; bail out if the
  // client sent lots of data without a parseable hello (not a TLS flow).
  if (auto chlo = tls::ClientHello::parse_record(tcp_stream_)) {
    finish_with_chlo(std::move(*chlo));
    return true;
  }
  if (tcp_stream_.size() > 16384) failed_ = true;
  return true;
}

bool HandshakeExtractor::feed_quic(const net::DecodedPacket& packet) {
  if (!quic::looks_like_initial(packet.payload)) return false;
  // Only the client's Initials decrypt with the DCID-derived client keys;
  // server packets fail authentication and are skipped, so no explicit
  // direction tracking is needed.
  const auto initial = quic::unprotect_client_initial(packet.payload);
  if (!initial) return false;

  if (!seen_initial_) {
    seen_initial_ = true;
    FlowHandshake h;
    h.transport = Transport::Quic;
    h.init_packet_size = packet.ip_packet_size;
    h.ttl = packet.ttl;
    result_ = std::move(h);
  }
  reassembler_.add(*initial);
  const Bytes stream = reassembler_.contiguous_prefix();
  if (stream.size() < 4) return true;
  if (auto chlo = tls::ClientHello::parse_handshake(stream)) {
    finish_with_chlo(std::move(*chlo));
  }
  return true;
}

void HandshakeExtractor::finish_with_chlo(tls::ClientHello chlo) {
  if (!result_) return;
  if (result_->transport == Transport::Quic) {
    if (const auto tp_body = chlo.quic_transport_parameters())
      result_->quic_tp = quic::TransportParameters::parse(*tp_body);
  }
  result_->chlo = std::move(chlo);
  complete_ = true;
}

std::string_view HandshakeExtractor::sni() const {
  if (!complete_ || !result_) return {};
  return result_->chlo.server_name_view().value_or(std::string_view{});
}

std::optional<FlowHandshake> extract_handshake(
    std::span<const net::Packet> packets) {
  HandshakeExtractor extractor;
  for (const auto& packet : packets) {
    const auto decoded = net::decode(packet);
    if (!decoded) continue;
    extractor.feed(*decoded);
    if (extractor.complete()) break;
  }
  return extractor.complete() ? extractor.handshake() : std::nullopt;
}

}  // namespace vpscope::core
