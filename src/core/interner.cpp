#include "core/interner.hpp"

namespace vpscope::core {

std::uint64_t TokenInterner::hash(std::string_view token) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : token) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

TokenId TokenInterner::lookup(std::string_view token) const {
  if (slots_.empty()) return kUnseenId;
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t i = hash(token) & mask;; i = (i + 1) & mask) {
    const TokenId id = slots_[i];
    if (id == kUnseenId) return kUnseenId;
    if (tokens_[id - 1] == token) return id;
  }
}

TokenId TokenInterner::intern(std::string_view token) {
  const TokenId found = lookup(token);
  if (found != kUnseenId || frozen_) return found;
  tokens_.emplace_back(token);
  const auto id = static_cast<TokenId>(tokens_.size());
  // Keep the load factor under ~0.7 while growing.
  if (slots_.empty() || tokens_.size() * 10 >= slots_.size() * 7)
    rehash(slots_.empty() ? 16 : slots_.size() * 2);
  else
    insert_slot(id);
  return id;
}

void TokenInterner::insert_slot(TokenId id) {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = hash(tokens_[id - 1]) & mask;
  while (slots_[i] != kUnseenId) i = (i + 1) & mask;
  slots_[i] = id;
}

void TokenInterner::rehash(std::size_t slot_count) {
  slots_.assign(slot_count, kUnseenId);
  for (TokenId id = 1; id <= tokens_.size(); ++id) insert_slot(id);
}

void TokenInterner::freeze() {
  if (frozen_) return;
  // Fit the table tight: smallest power of two keeping the load under ~0.7.
  std::size_t slot_count = 16;
  while (tokens_.size() * 10 >= slot_count * 7) slot_count *= 2;
  rehash(slot_count);
  frozen_ = true;
}

std::string_view TokenInterner::token(TokenId id) const {
  if (id == kUnseenId || id > tokens_.size()) return "<unseen>";
  return tokens_[id - 1];
}

}  // namespace vpscope::core
