// TokenInterner: the string -> TokenId substrate of the allocation-free
// attribute path. Every categorical/list token the extractors produce is a
// short byte string ("4865", "h2", "GREASE", ...); interning them once lets
// the rest of the pipeline — RawAttr, FeatureEncoder dictionaries, the
// fitted value tables — operate on dense u32 ids with no string compares or
// heap traffic between packet parse and forest input.
//
// Lifecycle mirrors the encoder's: during fit() the interner grows (every
// new token gets the next id); freeze() then fits the open-addressing probe
// table tight and makes the interner immutable, after which lookups of
// unknown tokens return the reserved kUnseenId — exactly the open-set
// semantics the paper's value-mapping process needs (first-seen-at-inference
// values land in one dedicated bucket).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vpscope::core {

/// Dense token identity. 0 is reserved for "not in the fitted vocabulary".
using TokenId = std::uint32_t;

class TokenInterner {
 public:
  static constexpr TokenId kUnseenId = 0;

  TokenInterner() = default;

  /// Growable phase: returns the token's id, assigning the next one (ids
  /// start at 1) on first sight. After freeze() behaves exactly like
  /// lookup() — unknown tokens map to kUnseenId instead of growing.
  TokenId intern(std::string_view token);

  /// Lookup-only: the token's id, or kUnseenId when unknown. Performs no
  /// allocation (FNV-1a over the bytes + linear probing).
  TokenId lookup(std::string_view token) const;

  /// Fits the probe table to its final size and makes the interner
  /// immutable. Idempotent.
  void freeze();
  bool frozen() const { return frozen_; }

  /// Number of distinct interned tokens (kUnseenId excluded).
  std::size_t size() const { return tokens_.size(); }

  /// Reverse lookup; "<unseen>" for kUnseenId or out-of-range ids.
  std::string_view token(TokenId id) const;

 private:
  static std::uint64_t hash(std::string_view token);
  void rehash(std::size_t slot_count);
  void insert_slot(TokenId id);

  std::vector<std::string> tokens_;  // id - 1 -> token bytes
  std::vector<TokenId> slots_;       // open addressing; kUnseenId = empty
  bool frozen_ = false;
};

}  // namespace vpscope::core
