// FlowHandshake: everything an on-path observer learns from the first few
// connection-establishment packets of a video flow — the observation the
// paper's 62 attributes are derived from (its Fig. 2(b) blue region).
//
// For TCP flows this is the client SYN (flags/window/options) plus the TLS
// ClientHello record; for QUIC it is the Initial datagram(s), which are
// unprotected with the DCID-derived keys and reassembled into the
// ClientHello, including the embedded quic_transport_parameters.
#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "fingerprint/platform.hpp"
#include "net/packet.hpp"
#include "quic/initial.hpp"
#include "quic/transport_params.hpp"
#include "tls/client_hello.hpp"

namespace vpscope::core {

struct FlowHandshake {
  fingerprint::Transport transport = fingerprint::Transport::Tcp;

  // Transport-layer surface (attributes t1/t2 for both transports,
  // t3..t14 for TCP).
  std::size_t init_packet_size = 0;  // IP datagram size of SYN / first Initial
  std::uint8_t ttl = 0;
  net::TcpFlags syn_flags;
  std::uint16_t tcp_window = 0;
  std::optional<std::uint16_t> tcp_mss;
  std::optional<std::uint8_t> tcp_window_scale;
  bool tcp_sack_permitted = false;

  // TLS surface (m*/o* attributes), plus parsed QUIC transport parameters
  // (q* attributes) when the flow is QUIC.
  tls::ClientHello chlo;
  std::optional<quic::TransportParameters> quic_tp;
};

/// Incremental handshake extraction: feed packets of one flow in arrival
/// order; `handshake()` becomes available once the SYN+ClientHello (TCP) or
/// a complete Initial CRYPTO stream (QUIC) has been seen. Mirrors how the
/// real-time pipeline consumes a packet stream.
class HandshakeExtractor {
 public:
  /// Returns true if the packet advanced the handshake state (i.e. was a
  /// client handshake packet of interest).
  bool feed(const net::DecodedPacket& packet);

  bool complete() const { return complete_; }
  const std::optional<FlowHandshake>& handshake() const { return result_; }

  /// The SNI observed in the ClientHello (a view into the parsed
  /// ClientHello, valid while the extractor lives), empty until complete.
  std::string_view sni() const;

 private:
  bool feed_tcp(const net::DecodedPacket& packet);
  bool feed_quic(const net::DecodedPacket& packet);
  void finish_with_chlo(tls::ClientHello chlo);

  std::optional<FlowHandshake> result_;
  bool seen_syn_ = false;
  bool seen_initial_ = false;
  bool complete_ = false;
  bool failed_ = false;
  quic::CryptoReassembler reassembler_;
  Bytes tcp_stream_;  // client-to-server TCP payload bytes accumulated
  std::optional<net::IpAddr> client_addr_;
  std::uint16_t client_port_ = 0;
};

/// One-shot convenience over a full packet capture of a single flow.
std::optional<FlowHandshake> extract_handshake(
    std::span<const net::Packet> packets);

}  // namespace vpscope::core
