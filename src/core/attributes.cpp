#include "core/attributes.hpp"

#include <charconv>
#include <cstdio>
#include <cstring>

#include "tls/constants.hpp"

namespace vpscope::core {

using fingerprint::Transport;

const std::array<AttributeInfo, kNumAttributes>& attribute_catalog() {
  static const std::array<AttributeInfo, kNumAttributes> catalog = {{
      // --- transport layer (t1..t14) ---
      {"t1", "init_packet_size", AttrType::Numerical, true, true, 0},
      {"t2", "ttl", AttrType::Numerical, true, true, 0},
      {"t3", "tcp_cwr", AttrType::Presence, true, false, 0},
      {"t4", "tcp_ece", AttrType::Presence, true, false, 0},
      {"t5", "tcp_urg", AttrType::Presence, true, false, 0},
      {"t6", "tcp_ack", AttrType::Presence, true, false, 0},
      {"t7", "tcp_psh", AttrType::Presence, true, false, 0},
      {"t8", "tcp_rst", AttrType::Presence, true, false, 0},
      {"t9", "tcp_syn", AttrType::Presence, true, false, 0},
      {"t10", "tcp_fin", AttrType::Presence, true, false, 0},
      {"t11", "tcp_window_size", AttrType::Numerical, true, false, 0},
      {"t12", "tcp_mss", AttrType::Numerical, true, false, 0},
      {"t13", "tcp_window_scale", AttrType::Numerical, true, false, 0},
      {"t14", "tcp_sack_permitted", AttrType::Presence, true, false, 0},
      // --- mandatory fields (m1..m5) ---
      {"m1", "handshake_length", AttrType::Numerical, true, true, 0},
      {"m2", "tls_version", AttrType::Categorical, true, true, 0},
      {"m3", "cipher_suites", AttrType::List, true, true, 24},
      {"m4", "compression_methods", AttrType::Length, true, true, 0},
      {"m5", "extensions_length", AttrType::Numerical, true, true, 0},
      // --- optional extensions (o1..o23) ---
      {"o1", "tls_extensions", AttrType::List, true, true, 24},
      {"o2", "server_name", AttrType::Length, true, true, 0},
      {"o3", "status_request", AttrType::Categorical, true, true, 0},
      {"o4", "supported_groups", AttrType::List, true, true, 10},
      {"o5", "ec_point_formats", AttrType::Categorical, true, true, 0},
      {"o6", "signature_algorithms", AttrType::List, true, true, 16},
      {"o7", "application_layer_protocol_negotiation", AttrType::List, true,
       true, 4},
      {"o8", "signed_certificate_timestamp", AttrType::Length, true, true, 0},
      {"o9", "padding", AttrType::Length, true, true, 0},
      {"o10", "encrypt_then_mac", AttrType::Presence, true, true, 0},
      {"o11", "extended_master_secret", AttrType::Presence, true, true, 0},
      {"o12", "compress_certificate", AttrType::Categorical, true, true, 0},
      {"o13", "record_size_limit", AttrType::Numerical, true, true, 0},
      {"o14", "delegated_credentials", AttrType::List, true, true, 8},
      {"o15", "session_ticket", AttrType::Length, true, true, 0},
      {"o16", "pre_shared_key", AttrType::Presence, true, true, 0},
      {"o17", "early_data", AttrType::Length, true, true, 0},
      {"o18", "supported_versions", AttrType::List, true, true, 5},
      {"o19", "psk_key_exchange_modes", AttrType::Categorical, true, true, 0},
      {"o20", "post_handshake_auth", AttrType::Presence, true, true, 0},
      {"o21", "key_share", AttrType::List, true, true, 5},
      {"o22", "application_settings", AttrType::List, true, true, 5},
      {"o23", "renegotiation_info", AttrType::Presence, true, true, 0},
      // --- QUIC parameters (q1..q20) ---
      {"q1", "quic_parameters", AttrType::List, false, true, 24},
      {"q2", "max_idle_timeout", AttrType::Numerical, false, true, 0},
      {"q3", "max_udp_payload_size", AttrType::Numerical, false, true, 0},
      {"q4", "initial_max_data", AttrType::Numerical, false, true, 0},
      {"q5", "initial_max_stream_data_bidi_local", AttrType::Numerical, false,
       true, 0},
      {"q6", "initial_max_stream_data_bidi_remote", AttrType::Numerical,
       false, true, 0},
      {"q7", "initial_max_stream_data_uni", AttrType::Numerical, false, true,
       0},
      {"q8", "initial_max_streams_bidi", AttrType::Numerical, false, true, 0},
      {"q9", "initial_max_streams_uni", AttrType::Numerical, false, true, 0},
      {"q10", "max_ack_delay", AttrType::Numerical, false, true, 0},
      {"q11", "disable_active_migration", AttrType::Presence, false, true, 0},
      {"q12", "active_connection_id_limit", AttrType::Numerical, false, true,
       0},
      {"q13", "initial_source_connection_id", AttrType::Length, false, true,
       0},
      {"q14", "max_datagram_frame_size", AttrType::Numerical, false, true, 0},
      {"q15", "grease_quic_bit", AttrType::Presence, false, true, 0},
      {"q16", "initial_rtt", AttrType::Presence, false, true, 0},
      {"q17", "google_connection_options", AttrType::Categorical, false, true,
       0},
      {"q18", "user_agent", AttrType::Categorical, false, true, 0},
      {"q19", "google_version", AttrType::Categorical, false, true, 0},
      {"q20", "ack_delay_exponent", AttrType::Numerical, false, true, 0},
  }};
  return catalog;
}

int applicable_count(Transport transport) {
  int n = 0;
  for (const auto& info : attribute_catalog())
    n += transport == Transport::Tcp ? info.tcp : info.quic;
  return n;
}

namespace {

/// Decimal rendering of an integral token into caller stack storage.
/// Faithful to the paper's §3.3.2: "a 1:1 mapping between the values
/// contained in the fields to a unique number" — GREASE values (random per
/// flow by design, RFC 8701) are NOT collapsed, so greasing stacks carry
/// per-flow noise in their list attributes. Tree ensembles shrug this off;
/// distance- and gradient-based models don't, which is part of why the
/// paper's RF wins its model comparison.
template <typename T>
std::string_view dec_token(T v, std::span<char> buf) {
  const auto [end, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), v);
  (void)ec;  // buffers are sized for the widest integral rendering
  return {buf.data(), static_cast<std::size_t>(end - buf.data())};
}

/// Builds "-"-joined tokens ("0-1-2") in fixed stack storage; ample for the
/// few-element u8/u16 lists that feed categorical attributes.
class JoinBuffer {
 public:
  template <typename T>
  void append(T v) {
    if (len_ > 0 && len_ < sizeof(buf_)) buf_[len_++] = '-';
    char tmp[24];
    const auto t = dec_token(v, tmp);
    const std::size_t n = std::min(t.size(), sizeof(buf_) - len_);
    std::memcpy(buf_ + len_, t.data(), n);
    len_ += n;
  }
  std::string_view view() const { return {buf_, len_}; }

 private:
  char buf_[160];
  std::size_t len_ = 0;
};

RawAttr num(double v) {
  RawAttr a;
  a.present = true;
  a.number = v;
  return a;
}

RawAttr presence(bool p) {
  RawAttr a;
  a.present = p;
  a.number = p ? 1.0 : 0.0;
  return a;
}

/// Length attributes report the on-wire extension size including its 4-byte
/// type+length header, so an *empty but present* extension (e.g. SCT,
/// session_ticket) is distinguishable from an absent one.
RawAttr ext_length(const tls::ClientHello& chlo, std::uint16_t type) {
  const tls::Extension* e = chlo.find(type);
  RawAttr a;
  if (e) {
    a.present = true;
    a.number = static_cast<double>(4 + e->body.size());
  }
  return a;
}

RawAttr ext_presence(const tls::ClientHello& chlo, std::uint16_t type) {
  return presence(chlo.has_extension(type));
}

/// The extraction body, parameterized over the token sink so the fit-time
/// (growing) and inference-time (frozen lookup, allocation-free) paths share
/// one implementation. `sink(string_view) -> TokenId`.
template <typename Sink>
void extract_impl(const FlowHandshake& h, RawAttrs& out, Sink&& sink) {
  out.fill(RawAttr{});
  const bool is_tcp = h.transport == Transport::Tcp;
  const tls::ClientHello& chlo = h.chlo;
  namespace ext = tls::ext;
  char buf[24];

  const auto cat = [&](RawAttr& a, std::string_view token) {
    a.present = true;
    a.set_token(sink(token));
  };

  // t1/t2
  out[0] = num(static_cast<double>(h.init_packet_size));
  out[1] = num(static_cast<double>(h.ttl));

  if (is_tcp) {
    out[2] = presence(h.syn_flags.cwr);
    out[3] = presence(h.syn_flags.ece);
    out[4] = presence(h.syn_flags.urg);
    out[5] = presence(h.syn_flags.ack);
    out[6] = presence(h.syn_flags.psh);
    out[7] = presence(h.syn_flags.rst);
    out[8] = presence(h.syn_flags.syn);
    out[9] = presence(h.syn_flags.fin);
    out[10] = num(h.tcp_window);
    out[11] = num(h.tcp_mss ? *h.tcp_mss : 0.0);
    out[12] = num(h.tcp_window_scale ? *h.tcp_window_scale : 0.0);
    out[13] = presence(h.tcp_sack_permitted);
  }

  // m1..m5
  out[14] = num(static_cast<double>(chlo.handshake_body_length()));
  cat(out[15], dec_token(chlo.legacy_version, buf));
  out[16].present = !chlo.cipher_suites.empty();
  for (const std::uint16_t suite : chlo.cipher_suites)
    out[16].push_token(sink(dec_token(suite, buf)));
  out[17] = num(static_cast<double>(chlo.compression_methods.size()));
  out[18] = num(static_cast<double>(chlo.extensions_length()));

  // o1: extension type codes in wire order.
  out[19].present = !chlo.extensions.empty();
  for (const auto& e : chlo.extensions)
    out[19].push_token(sink(dec_token(e.type, buf)));
  // o2: SNI length (the name itself is matched upstream for provider
  // detection; only the length can fingerprint the platform).
  if (const auto sni = chlo.server_name_view())
    out[20] = num(static_cast<double>(sni->size()));
  // o3: status_request type byte.
  if (const tls::Extension* e = chlo.find(ext::kStatusRequest))
    cat(out[21], e->body.empty()
                     ? std::string_view("empty")
                     : dec_token(e->body[0], buf));
  // o4
  if (tls::U16View groups; chlo.supported_groups_into(groups)) {
    out[22].present = groups.size() > 0;
    for (std::size_t i = 0; i < groups.size(); ++i)
      out[22].push_token(sink(dec_token(groups[i], buf)));
  }
  // o5
  if (tls::U8View formats; chlo.ec_point_formats_into(formats)) {
    JoinBuffer joined;
    for (std::size_t i = 0; i < formats.size(); ++i) joined.append(formats[i]);
    cat(out[23], joined.view());
  }
  // o6
  if (tls::U16View algs; chlo.signature_algorithms_into(algs)) {
    out[24].present = algs.size() > 0;
    for (std::size_t i = 0; i < algs.size(); ++i)
      out[24].push_token(sink(dec_token(algs[i], buf)));
  }
  // o7
  if (tls::NameView alpn; chlo.alpn_protocols_into(alpn)) {
    out[25].present = alpn.size() > 0;
    for (std::size_t i = 0; i < alpn.size(); ++i)
      out[25].push_token(sink(alpn[i]));
  }
  // o8/o9
  out[26] = ext_length(chlo, ext::kSignedCertTimestamp);
  out[27] = ext_length(chlo, ext::kPadding);
  // o10/o11
  out[28] = ext_presence(chlo, ext::kEncryptThenMac);
  out[29] = ext_presence(chlo, ext::kExtendedMasterSecret);
  // o12
  if (tls::U16View comp; chlo.compress_certificate_into(comp)) {
    JoinBuffer joined;
    for (std::size_t i = 0; i < comp.size(); ++i) joined.append(comp[i]);
    cat(out[30], joined.view());
  }
  // o13
  if (const auto limit = chlo.record_size_limit()) out[31] = num(*limit);
  // o14
  if (tls::U16View dc; chlo.delegated_credentials_into(dc)) {
    out[32].present = dc.size() > 0;
    for (std::size_t i = 0; i < dc.size(); ++i)
      out[32].push_token(sink(dec_token(dc[i], buf)));
  }
  // o15..o17
  out[33] = ext_length(chlo, ext::kSessionTicket);
  out[34] = ext_presence(chlo, ext::kPreSharedKey);
  out[35] = ext_length(chlo, ext::kEarlyData);
  // o18
  if (tls::U16View versions; chlo.supported_versions_into(versions)) {
    out[36].present = versions.size() > 0;
    for (std::size_t i = 0; i < versions.size(); ++i)
      out[36].push_token(sink(dec_token(versions[i], buf)));
  }
  // o19
  if (tls::U8View modes; chlo.psk_key_exchange_modes_into(modes)) {
    JoinBuffer joined;
    for (std::size_t i = 0; i < modes.size(); ++i) joined.append(modes[i]);
    cat(out[37], joined.view());
  }
  // o20
  out[38] = ext_presence(chlo, ext::kPostHandshakeAuth);
  // o21
  if (tls::U16View shares; chlo.key_share_groups_into(shares)) {
    out[39].present = shares.size() > 0;
    for (std::size_t i = 0; i < shares.size(); ++i)
      out[39].push_token(sink(dec_token(shares[i], buf)));
  }
  // o22: the application_settings content, prefixed by the extension code
  // variant in use (ALPS codepoint migration distinguishes Chromium forks).
  if (tls::NameView settings; chlo.application_settings_into(settings)) {
    out[40].present = true;
    out[40].push_token(sink(chlo.has_extension(ext::kApplicationSettingsNew)
                                ? std::string_view("alps-new")
                                : std::string_view("alps-old")));
    for (std::size_t i = 0; i < settings.size(); ++i)
      out[40].push_token(sink(settings[i]));
  }
  // o23
  out[41] = ext_presence(chlo, ext::kRenegotiationInfo);

  // q1..q20
  if (h.transport == Transport::Quic && h.quic_tp) {
    const quic::TransportParameters& tp = *h.quic_tp;
    out[42].present = !tp.param_order.empty();
    for (const std::uint64_t id : tp.param_order)
      out[42].push_token(sink(quic::tp::is_grease(id)
                                  ? std::string_view("GREASE")
                                  : dec_token(id, buf)));
    const auto opt_num = [](const std::optional<std::uint64_t>& v) {
      RawAttr a;
      if (v) {
        a.present = true;
        a.number = static_cast<double>(*v);
      }
      return a;
    };
    out[43] = opt_num(tp.max_idle_timeout);
    out[44] = opt_num(tp.max_udp_payload_size);
    out[45] = opt_num(tp.initial_max_data);
    out[46] = opt_num(tp.initial_max_stream_data_bidi_local);
    out[47] = opt_num(tp.initial_max_stream_data_bidi_remote);
    out[48] = opt_num(tp.initial_max_stream_data_uni);
    out[49] = opt_num(tp.initial_max_streams_bidi);
    out[50] = opt_num(tp.initial_max_streams_uni);
    out[51] = opt_num(tp.max_ack_delay);
    out[52] = presence(tp.disable_active_migration);
    out[53] = opt_num(tp.active_connection_id_limit);
    if (tp.has_initial_source_connection_id)
      out[54] =
          num(static_cast<double>(tp.initial_source_connection_id.size()));
    out[55] = opt_num(tp.max_datagram_frame_size);
    out[56] = presence(tp.grease_quic_bit);
    out[57] = presence(tp.initial_rtt_us.has_value());
    if (tp.google_connection_options)
      cat(out[58], *tp.google_connection_options);
    if (tp.user_agent) cat(out[59], *tp.user_agent);
    if (tp.google_version) cat(out[60], dec_token(*tp.google_version, buf));
    out[61] = opt_num(tp.ack_delay_exponent);
  }
}

}  // namespace

void extract_raw_attributes(const FlowHandshake& handshake,
                            const TokenInterner& interner, RawAttrs& out) {
  extract_impl(handshake, out,
               [&](std::string_view t) { return interner.lookup(t); });
}

void extract_raw_attributes(const FlowHandshake& handshake,
                            TokenInterner& interner, RawAttrs& out) {
  extract_impl(handshake, out,
               [&](std::string_view t) { return interner.intern(t); });
}

RawAttrs extract_raw_attributes(const FlowHandshake& handshake,
                                TokenInterner& interner) {
  RawAttrs out;
  extract_raw_attributes(handshake, interner, out);
  return out;
}

std::string attribute_signature(const RawAttr& raw, AttrType type,
                                const TokenInterner& interner) {
  if (!raw.present) return "<absent>";
  switch (type) {
    case AttrType::Numerical:
    case AttrType::Presence:
    case AttrType::Length: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f", raw.number);
      return buf;
    }
    case AttrType::Categorical:
      return std::string(interner.token(raw.token()));
    case AttrType::List: {
      std::string out;
      for (std::size_t i = 0; i < raw.count; ++i) {
        out += interner.token(raw.tokens[i]);
        out += '|';
      }
      return out;
    }
  }
  return "<absent>";
}

}  // namespace vpscope::core
