#include "core/encoder.hpp"

#include <algorithm>

namespace vpscope::core {

using fingerprint::Transport;

FeatureEncoder::FeatureEncoder(Transport transport)
    : transport_(transport), dicts_(kNumAttributes) {
  const auto& catalog = attribute_catalog();
  for (int i = 0; i < kNumAttributes; ++i) {
    const AttributeInfo& info = catalog[static_cast<std::size_t>(i)];
    const bool applicable = transport == Transport::Tcp ? info.tcp : info.quic;
    if (!applicable) continue;
    attributes_.push_back(i);
    if (info.type == AttrType::List) {
      for (int slot = 0; slot < info.list_slots; ++slot)
        columns_.push_back({i, slot});
    } else {
      columns_.push_back({i, 0});
    }
  }
}

void FeatureEncoder::fit(std::span<const FlowHandshake> handshakes) {
  const auto& catalog = attribute_catalog();
  for (const FlowHandshake& h : handshakes) {
    const auto raw = extract_raw_attributes(h);
    for (int attr : attributes_) {
      const AttributeInfo& info = catalog[static_cast<std::size_t>(attr)];
      const RawAttr& r = raw[static_cast<std::size_t>(attr)];
      if (!r.present) continue;
      auto& dict = dicts_[static_cast<std::size_t>(attr)];
      if (info.type == AttrType::Categorical) {
        dict.try_emplace(r.token, static_cast<int>(dict.size()) + 1);
      } else if (info.type == AttrType::List) {
        for (const auto& token : r.tokens)
          dict.try_emplace(token, static_cast<int>(dict.size()) + 1);
      }
    }
  }
}

double FeatureEncoder::map_token(int attribute,
                                 const std::string& token) const {
  const auto& dict = dicts_[static_cast<std::size_t>(attribute)];
  const auto it = dict.find(token);
  // Unseen values land in a single dedicated bucket past every fitted id.
  if (it == dict.end()) return static_cast<double>(dict.size() + 1);
  return static_cast<double>(it->second);
}

std::vector<double> FeatureEncoder::transform_raw(
    const std::array<RawAttr, kNumAttributes>& raw) const {
  const auto& catalog = attribute_catalog();
  std::vector<double> out;
  out.reserve(columns_.size());
  for (const Column& col : columns_) {
    const AttributeInfo& info =
        catalog[static_cast<std::size_t>(col.attribute)];
    const RawAttr& r = raw[static_cast<std::size_t>(col.attribute)];
    if (!r.present) {
      out.push_back(0.0);
      continue;
    }
    switch (info.type) {
      case AttrType::Numerical:
      case AttrType::Presence:
      case AttrType::Length:
        out.push_back(r.number);
        break;
      case AttrType::Categorical:
        out.push_back(map_token(col.attribute, r.token));
        break;
      case AttrType::List: {
        const auto slot = static_cast<std::size_t>(col.slot);
        if (slot < r.tokens.size())
          out.push_back(map_token(col.attribute, r.tokens[slot]));
        else
          out.push_back(0.0);  // zero padding for short lists
        break;
      }
    }
  }
  return out;
}

std::vector<double> FeatureEncoder::transform(
    const FlowHandshake& handshake) const {
  return transform_raw(extract_raw_attributes(handshake));
}

std::vector<int> FeatureEncoder::columns_for_attributes(
    const std::vector<int>& attribute_indices) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (std::find(attribute_indices.begin(), attribute_indices.end(),
                  columns_[i].attribute) != attribute_indices.end())
      out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace vpscope::core
