#include "core/encoder.hpp"

#include <algorithm>

namespace vpscope::core {

using fingerprint::Transport;

FeatureEncoder::FeatureEncoder(Transport transport)
    : transport_(transport), dicts_(kNumAttributes) {
  const auto& catalog = attribute_catalog();
  for (int i = 0; i < kNumAttributes; ++i) {
    const AttributeInfo& info = catalog[static_cast<std::size_t>(i)];
    const bool applicable = transport == Transport::Tcp ? info.tcp : info.quic;
    if (!applicable) continue;
    attributes_.push_back(i);
    if (info.type == AttrType::List) {
      for (int slot = 0; slot < info.list_slots; ++slot)
        columns_.push_back({i, slot});
    } else {
      columns_.push_back({i, 0});
    }
  }
}

void FeatureEncoder::fit(std::span<const FlowHandshake> handshakes) {
  const auto& catalog = attribute_catalog();
  RawAttrs raw;
  for (const FlowHandshake& h : handshakes) {
    extract_raw_attributes(h, interner_, raw);
    for (int attr : attributes_) {
      const AttributeInfo& info = catalog[static_cast<std::size_t>(attr)];
      const RawAttr& r = raw[static_cast<std::size_t>(attr)];
      if (!r.present) continue;
      auto& dict = dicts_[static_cast<std::size_t>(attr)];
      if (info.type == AttrType::Categorical) {
        dict.try_emplace(r.token(), static_cast<int>(dict.size()) + 1);
      } else if (info.type == AttrType::List) {
        for (std::size_t i = 0; i < r.count; ++i)
          dict.try_emplace(r.tokens[i], static_cast<int>(dict.size()) + 1);
      }
    }
  }
  build_value_tables();
}

void FeatureEncoder::build_value_tables() {
  interner_.freeze();
  value_tables_.assign(kNumAttributes, {});
  for (int attr : attributes_) {
    const auto a = static_cast<std::size_t>(attr);
    const auto& dict = dicts_[a];
    // Unseen values land in a single dedicated bucket past every fitted id —
    // the default for every token the attribute's dictionary never saw.
    const auto unseen = static_cast<double>(dict.size() + 1);
    value_tables_[a].assign(interner_.size() + 1, unseen);
    for (const auto& [token_id, value] : dict)
      value_tables_[a][token_id] = static_cast<double>(value);
  }
}

double FeatureEncoder::map_value(std::size_t attribute, TokenId token) const {
  if (attribute < value_tables_.size()) {
    const auto& table = value_tables_[attribute];
    if (token < table.size()) return table[token];
  }
  // Unfitted encoder (no tables yet) or a token interned elsewhere: the
  // dedicated unseen bucket, exactly as the fitted table would answer.
  return static_cast<double>(dicts_[attribute].size() + 1);
}

void FeatureEncoder::transform_raw_into(const RawAttrs& raw,
                                        std::span<double> out) const {
  const auto& catalog = attribute_catalog();
  std::size_t i = 0;
  for (const Column& col : columns_) {
    const auto a = static_cast<std::size_t>(col.attribute);
    const AttributeInfo& info = catalog[a];
    const RawAttr& r = raw[a];
    double v = 0.0;
    if (r.present) {
      switch (info.type) {
        case AttrType::Numerical:
        case AttrType::Presence:
        case AttrType::Length:
          v = r.number;
          break;
        case AttrType::Categorical:
          v = map_value(a, r.token());
          break;
        case AttrType::List: {
          const auto slot = static_cast<std::size_t>(col.slot);
          // Zero padding for short lists.
          if (slot < r.count) v = map_value(a, r.tokens[slot]);
          break;
        }
      }
    }
    out[i++] = v;
  }
}

void FeatureEncoder::transform_into(const FlowHandshake& handshake,
                                    RawAttrs& raw_scratch,
                                    std::span<double> out) const {
  extract_raw_attributes(handshake, interner_, raw_scratch);
  transform_raw_into(raw_scratch, out);
}

std::vector<double> FeatureEncoder::transform_raw(const RawAttrs& raw) const {
  std::vector<double> out(columns_.size());
  transform_raw_into(raw, out);
  return out;
}

std::vector<double> FeatureEncoder::transform(
    const FlowHandshake& handshake) const {
  std::vector<double> out(columns_.size());
  RawAttrs raw;
  transform_into(handshake, raw, out);
  return out;
}

std::vector<int> FeatureEncoder::columns_for_attributes(
    const std::vector<int>& attribute_indices) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (std::find(attribute_indices.begin(), attribute_indices.end(),
                  columns_[i].attribute) != attribute_indices.end())
      out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<std::pair<std::string, int>> FeatureEncoder::dictionary(
    int attribute) const {
  const auto& dict = dicts_[static_cast<std::size_t>(attribute)];
  std::vector<std::pair<std::string, int>> out;
  out.reserve(dict.size());
  for (const auto& [token_id, value] : dict)
    out.emplace_back(std::string(interner_.token(token_id)), value);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second < b.second;
  });
  return out;
}

FeatureEncoder FeatureEncoder::from_dictionaries(
    Transport transport,
    const std::vector<std::vector<std::pair<std::string, int>>>& dicts) {
  FeatureEncoder enc(transport);
  const std::size_t n =
      std::min<std::size_t>(dicts.size(), kNumAttributes);
  for (std::size_t a = 0; a < n; ++a)
    for (const auto& [token, value] : dicts[a])
      enc.dicts_[a].emplace(enc.interner_.intern(token), value);
  enc.build_value_tables();
  return enc;
}

}  // namespace vpscope::core
