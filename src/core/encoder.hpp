// FeatureEncoder: turns raw attribute observations into the fixed-width
// numeric vectors the classifiers consume (paper §4.2.1).
//
//   numerical / presence / length attributes -> one column, value as-is
//   categorical attributes -> one column, value-id from a fitted dictionary
//   list attributes -> `list_slots` positional columns, item-ids from a
//       fitted per-attribute item dictionary, zero-padded
//
// Dictionaries are fitted on training data (the "value mapping process"
// whose cost Table 2 accounts for); values first seen at inference map to a
// dedicated unseen-id so open-set inputs stay well-defined.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/attributes.hpp"

namespace vpscope::core {

class FeatureEncoder {
 public:
  /// One output column of the encoded vector.
  struct Column {
    int attribute = 0;  // index into attribute_catalog()
    int slot = 0;       // 0 for scalars; position for list attributes
  };

  explicit FeatureEncoder(fingerprint::Transport transport);

  /// Learns categorical/list dictionaries from training observations.
  void fit(std::span<const FlowHandshake> handshakes);

  /// Encodes one observation; requires fit() first for categorical/list
  /// attributes to be meaningful.
  std::vector<double> transform(const FlowHandshake& handshake) const;
  std::vector<double> transform_raw(
      const std::array<RawAttr, kNumAttributes>& raw) const;

  fingerprint::Transport transport() const { return transport_; }
  const std::vector<Column>& columns() const { return columns_; }
  std::size_t dimension() const { return columns_.size(); }

  /// Attribute indices applicable to this transport, in catalog order
  /// (50 entries for QUIC, 42 for TCP).
  const std::vector<int>& attributes() const { return attributes_; }

  /// Column positions belonging to the given attributes — used for
  /// attribute-subset models (Table 5, Fig. 6(a)).
  std::vector<int> columns_for_attributes(
      const std::vector<int>& attribute_indices) const;

 private:
  double map_token(int attribute, const std::string& token) const;

  fingerprint::Transport transport_;
  std::vector<int> attributes_;
  std::vector<Column> columns_;
  /// Per attribute: token -> positive id (scalar dictionaries for
  /// categorical attributes, item dictionaries for list attributes).
  std::vector<std::map<std::string, int>> dicts_;
};

}  // namespace vpscope::core
