// FeatureEncoder: turns raw attribute observations into the fixed-width
// numeric vectors the classifiers consume (paper §4.2.1).
//
//   numerical / presence / length attributes -> one column, value as-is
//   categorical attributes -> one column, value-id from a fitted dictionary
//   list attributes -> `list_slots` positional columns, item-ids from a
//       fitted per-attribute item dictionary, zero-padded
//
// Dictionaries are fitted on training data (the "value mapping process"
// whose cost Table 2 accounts for); values first seen at inference map to a
// dedicated unseen-id so open-set inputs stay well-defined.
//
// The hot path is allocation-free: fit() interns every token into an
// immutable TokenInterner and lowers the per-attribute dictionaries into
// flat TokenId -> value tables, so transform_into() is two array indexes per
// column — no string compares, no map walks, no heap. The allocating
// transform()/transform_raw() overloads are thin wrappers kept for training
// and analysis code (proven bit-identical in tests).
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/attributes.hpp"
#include "core/interner.hpp"

namespace vpscope::core {

class FeatureEncoder {
 public:
  /// One output column of the encoded vector.
  struct Column {
    int attribute = 0;  // index into attribute_catalog()
    int slot = 0;       // 0 for scalars; position for list attributes
  };

  explicit FeatureEncoder(fingerprint::Transport transport);

  /// Learns categorical/list dictionaries from training observations and
  /// freezes the token interner.
  void fit(std::span<const FlowHandshake> handshakes);

  /// Allocation-free encode: extracts into `raw_scratch` and writes the
  /// vector into `out` (`out.size() == dimension()`). Requires fit().
  void transform_into(const FlowHandshake& handshake, RawAttrs& raw_scratch,
                      std::span<double> out) const;
  void transform_raw_into(const RawAttrs& raw, std::span<double> out) const;

  /// Allocating wrappers over the _into path (training / analysis use).
  std::vector<double> transform(const FlowHandshake& handshake) const;
  std::vector<double> transform_raw(const RawAttrs& raw) const;

  fingerprint::Transport transport() const { return transport_; }
  const std::vector<Column>& columns() const { return columns_; }
  std::size_t dimension() const { return columns_.size(); }

  /// The fitted token vocabulary (frozen after fit()). Extraction against
  /// it resolves tokens without allocating; unseen tokens collapse to
  /// TokenInterner::kUnseenId.
  const TokenInterner& interner() const { return interner_; }

  /// Attribute indices applicable to this transport, in catalog order
  /// (50 entries for QUIC, 42 for TCP).
  const std::vector<int>& attributes() const { return attributes_; }

  /// Column positions belonging to the given attributes — used for
  /// attribute-subset models (Table 5, Fig. 6(a)).
  std::vector<int> columns_for_attributes(
      const std::vector<int>& attribute_indices) const;

  /// One attribute's fitted dictionary as (token, id) pairs in id order
  /// (ids are dense 1..n) — the serialization surface of ml/serialize.
  std::vector<std::pair<std::string, int>> dictionary(int attribute) const;

  /// Restores a fitted encoder from serialized dictionaries; `dicts` holds
  /// one (token, id)-in-id-order list per catalog attribute.
  static FeatureEncoder from_dictionaries(
      fingerprint::Transport transport,
      const std::vector<std::vector<std::pair<std::string, int>>>& dicts);

 private:
  /// Freezes the interner and lowers dicts_ into value_tables_.
  void build_value_tables();
  double map_value(std::size_t attribute, TokenId token) const;

  fingerprint::Transport transport_;
  std::vector<int> attributes_;
  std::vector<Column> columns_;
  TokenInterner interner_;
  /// Per attribute: interned token -> positive id (scalar dictionaries for
  /// categorical attributes, item dictionaries for list attributes), ids
  /// assigned in first-seen order. Cold: serialization + table building.
  std::vector<std::unordered_map<TokenId, int>> dicts_;
  /// Per attribute: TokenId -> encoded value, indexed by id (size
  /// interner.size() + 1); tokens outside the attribute's dictionary —
  /// including kUnseenId — hold the attribute's unseen bucket value
  /// (dict size + 1). This is the whole hot-path lookup.
  std::vector<std::vector<double>> value_tables_;
};

}  // namespace vpscope::core
