// The paper's Table 2: 62 attributes formalized from TCP/QUIC and TLS
// handshake fields, with their types (numerical / categorical / list /
// presence / length) and preprocessing costs (low / medium / high).
//
// Index layout follows the paper's labels:
//   t1..t14  transport layer            (indices 0..13)
//   m1..m5   TLS mandatory fields       (indices 14..18)
//   o1..o23  TLS optional extensions    (indices 19..41)
//   q1..q20  QUIC transport parameters  (indices 42..61)
//
// Note: the paper's running text uses attribute q20 (e.g. Fig. 5(a)) and
// its type counts (20 numerical, 17 presence, 7 length) only add up to 62
// with a 20th QUIC attribute, but Table 2 as printed stops at q19. We model
// q20 as ack_delay_exponent — a numerical, low-cost QUIC transport
// parameter, which keeps every per-type count consistent with §4.2.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/handshake.hpp"
#include "core/interner.hpp"

namespace vpscope::core {

inline constexpr int kNumAttributes = 62;

enum class AttrType : std::uint8_t {
  Numerical,
  Categorical,
  List,
  Presence,
  Length,
};

enum class AttrCost : std::uint8_t { Low, Medium, High };

struct AttributeInfo {
  const char* label;       // "t1", "m3", "o13", ...
  const char* field_name;  // "init_packet_size", ...
  AttrType type;
  bool tcp;   // applicable to TCP flows
  bool quic;  // applicable to QUIC flows
  /// For List attributes: the fixed number of positional slots used by the
  /// encoder (paper §4.2.1's fixed-length vector with zero padding).
  int list_slots;

  /// Cost follows the type, exactly as in Table 2: numerical / presence /
  /// length attributes read fields directly (low); categorical attributes
  /// need one dictionary lookup (medium); list attributes need one lookup
  /// per item (high).
  AttrCost cost() const {
    switch (type) {
      case AttrType::Categorical:
        return AttrCost::Medium;
      case AttrType::List:
        return AttrCost::High;
      default:
        return AttrCost::Low;
    }
  }
};

/// The full catalog, indexed 0..61.
const std::array<AttributeInfo, kNumAttributes>& attribute_catalog();

/// Number of attributes applicable to a transport (50 for QUIC, 42 for TCP).
int applicable_count(fingerprint::Transport transport);

/// Fixed token capacity of a List observation. The longest lists any real
/// client stack emits (cipher suites, extension codes) stay well under this;
/// overflow items are dropped with `count` capped.
inline constexpr int kMaxListTokens = 32;

/// One attribute's raw (pre-dictionary) observation from a flow: a POD
/// tagged record — which fields are meaningful follows the attribute's
/// AttrType from the catalog (union-style, without the type-punning).
/// Categorical/list values are interned TokenIds, never strings, so a full
/// 62-attribute extraction performs zero heap allocations.
struct RawAttr {
  bool present = false;
  std::uint8_t count = 0;  // List: valid entries in tokens[]
  double number = 0.0;     // Numerical / Presence / Length
  std::array<TokenId, kMaxListTokens> tokens{};  // List; Categorical uses [0]

  /// Categorical accessors (slot 0 of the token storage).
  TokenId token() const { return tokens[0]; }
  void set_token(TokenId id) {
    tokens[0] = id;
    count = 1;
  }
  void push_token(TokenId id) {
    if (count < kMaxListTokens) tokens[static_cast<std::size_t>(count++)] = id;
  }
};

using RawAttrs = std::array<RawAttr, kNumAttributes>;

/// Extracts all 62 raw attributes from a handshake observation into `out`.
/// Attributes not applicable to the flow's transport are left absent
/// (encoded as 0, as per §3.3.1: "If a field does not appear in a flow, a
/// value of 0 is assigned").
///
/// The const overload is the steady-state path: tokens resolve against the
/// fitted (frozen) interner, unseen tokens collapse to kUnseenId, and the
/// call allocates nothing. The mutable overload grows the interner (fit and
/// analysis time).
void extract_raw_attributes(const FlowHandshake& handshake,
                            const TokenInterner& interner, RawAttrs& out);
void extract_raw_attributes(const FlowHandshake& handshake,
                            TokenInterner& interner, RawAttrs& out);

/// Convenience wrapper for analysis/tooling paths (allocates the array).
RawAttrs extract_raw_attributes(const FlowHandshake& handshake,
                                TokenInterner& interner);

/// A stable discrete signature of one attribute's observation, used for the
/// information-gain analysis of Fig. 3/5/13/14 (the attribute's "value" as a
/// single categorical outcome; lists hash to their full content signature).
/// `interner` must be the one the observation was extracted with.
std::string attribute_signature(const RawAttr& raw, AttrType type,
                                const TokenInterner& interner);

}  // namespace vpscope::core
