#include "pipeline/sharded_pipeline.hpp"

#include <stdexcept>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace vpscope::pipeline {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// Spin-then-yield wait: a short busy loop for the common sub-microsecond
/// case, then cooperative yielding so an oversubscribed machine (more
/// shards than cores) still makes progress.
template <typename Predicate>
void spin_until(Predicate&& done) {
  int spins = 0;
  while (!done()) {
    if (++spins < 256)
      cpu_relax();
    else
      std::this_thread::yield();
  }
}

}  // namespace

ShardedPipeline::ShardedPipeline(const ClassifierBank* bank,
                                 ShardedPipelineOptions options) {
  if (options.n_shards <= 0)
    throw std::invalid_argument("ShardedPipeline: n_shards must be >= 1");
  shards_.reserve(static_cast<std::size_t>(options.n_shards));
  for (int i = 0; i < options.n_shards; ++i) {
    auto shard = std::make_unique<Shard>(bank, options.queue_capacity);
    shard->pipe.set_sink([this](telemetry::SessionRecord record) {
      const std::lock_guard<std::mutex> lock(sink_mutex_);
      if (sink_) sink_(std::move(record));
    });
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_)
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
}

ShardedPipeline::~ShardedPipeline() {
  broadcast(Item::Kind::Stop);
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
}

void ShardedPipeline::set_sink(
    std::function<void(telemetry::SessionRecord)> sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = std::move(sink);
}

std::size_t ShardedPipeline::shard_of(const net::FlowKey& key) const {
  return net::FlowKeyHash{}(key) % shards_.size();
}

void ShardedPipeline::enqueue(Shard& shard, Item&& item) {
  spin_until([&] { return shard.queue.try_push(item); });
  shard.enqueued.fetch_add(1, std::memory_order_release);
}

void ShardedPipeline::broadcast(Item::Kind kind, std::uint64_t arg0,
                                std::uint64_t arg1) {
  for (auto& shard : shards_) {
    Item item;
    item.kind = kind;
    item.arg0 = arg0;
    item.arg1 = arg1;
    enqueue(*shard, std::move(item));
  }
}

void ShardedPipeline::on_packet(const net::Packet& packet) {
  ++dispatcher_stats_.packets_total;
  Item item;
  item.kind = Item::Kind::Packet;
  item.packet = packet;  // one copy; the shard owns its bytes
  item.decoded = net::decode(item.packet);
  if (!item.decoded) {
    ++dispatcher_stats_.packets_non_ip;
    return;
  }
  const std::size_t shard = shard_of(item.decoded->flow_key());
  enqueue(*shards_[shard], std::move(item));
}

void ShardedPipeline::on_volume_sample(const net::FlowKey& key,
                                       std::uint64_t ts_us,
                                       std::uint64_t bytes_down,
                                       std::uint64_t bytes_up) {
  Item item;
  item.kind = Item::Kind::Volume;
  item.key = key;
  item.arg0 = ts_us;
  item.arg1 = bytes_down;
  item.arg2 = bytes_up;
  enqueue(*shards_[shard_of(key)], std::move(item));
}

void ShardedPipeline::flush_idle(std::uint64_t now_us,
                                 std::uint64_t idle_timeout_us) {
  broadcast(Item::Kind::FlushIdle, now_us, idle_timeout_us);
  drain();
}

void ShardedPipeline::flush_all() {
  broadcast(Item::Kind::FlushAll);
  drain();
}

void ShardedPipeline::drain() {
  for (auto& shard : shards_) {
    const std::uint64_t target =
        shard->enqueued.load(std::memory_order_relaxed);
    // The acquire load pairs with the worker's release increment, making
    // all of the shard's pipeline state visible once the count is reached.
    spin_until([&] {
      return shard->processed.load(std::memory_order_acquire) >= target;
    });
  }
}

PipelineStats ShardedPipeline::stats() {
  drain();
  PipelineStats merged = dispatcher_stats_;
  for (auto& shard : shards_) merged += shard->pipe.stats();
  return merged;
}

std::size_t ShardedPipeline::active_flows() {
  drain();
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->pipe.active_flows();
  return total;
}

void ShardedPipeline::worker_loop(Shard& shard) {
  Item item;
  for (;;) {
    spin_until([&] { return shard.queue.try_pop(item); });
    bool stop = false;
    switch (item.kind) {
      case Item::Kind::Packet:
        shard.pipe.on_decoded(*item.decoded);
        // Release the packet buffer before signalling completion so drain()
        // observers never race the deallocation.
        item = Item{};
        break;
      case Item::Kind::Volume:
        shard.pipe.on_volume_sample(item.key, item.arg0, item.arg1, item.arg2);
        break;
      case Item::Kind::FlushIdle:
        shard.pipe.flush_idle(item.arg0, item.arg1);
        break;
      case Item::Kind::FlushAll:
        shard.pipe.flush_all();
        break;
      case Item::Kind::Stop:
        stop = true;
        break;
    }
    shard.processed.fetch_add(1, std::memory_order_release);
    if (stop) return;
  }
}

}  // namespace vpscope::pipeline
