#include "pipeline/sharded_pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "pipeline/faultpoint.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

// The dispatcher-thread contract check runs in debug builds (assert) and in
// the fault-injection build (counted, so tests can observe a violation
// without dying). Release builds compile it out entirely.
#if !defined(NDEBUG) || (defined(VPSCOPE_FAULT_INJECTION) && VPSCOPE_FAULT_INJECTION)
#define VPSCOPE_CHECK_DISPATCHER 1
#else
#define VPSCOPE_CHECK_DISPATCHER 0
#endif

namespace vpscope::pipeline {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// Spin-then-yield wait: a short busy loop for the common sub-microsecond
/// case, then cooperative yielding so an oversubscribed machine (more
/// shards than cores) still makes progress.
template <typename Predicate>
void spin_until(Predicate&& done) {
  int spins = 0;
  while (!done()) {
    if (++spins < 256)
      cpu_relax();
    else
      std::this_thread::yield();
  }
}

/// Monotonic wall clock for grace/watchdog deadlines. Only consulted on the
/// slow path (a full ring), never per packet.
std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Iterations of pure cpu_relax before the wait loop starts paying for
/// clock reads — covers the common momentary-full case for free.
constexpr int kFreeSpins = 64;

}  // namespace

AdmissionClass admission_class(const net::DecodedPacket& decoded) {
  if (decoded.tcp) {
    if (decoded.tcp->flags.syn) return AdmissionClass::Handshake;
    // TLS handshake record at a segment start: content type 0x16, major
    // version 0x03 (all TLS versions on the wire). Matches ClientHello
    // fragments and the server's reply flight alike.
    if (decoded.payload.size() >= 2 && decoded.payload[0] == 0x16 &&
        decoded.payload[1] == 0x03)
      return AdmissionClass::Handshake;
    return AdmissionClass::Payload;
  }
  if (decoded.udp && !decoded.payload.empty()) {
    // QUIC long header (form+fixed bits set) with packet type Initial (00).
    const std::uint8_t first = decoded.payload[0];
    if ((first & 0xc0) == 0xc0 && (first & 0x30) == 0x00)
      return AdmissionClass::Handshake;
  }
  return AdmissionClass::Payload;
}

ShardedPipeline::ShardedPipeline(const ClassifierBank* bank,
                                 ShardedPipelineOptions options)
    : options_(options) {
  if (options.n_shards <= 0)
    throw std::invalid_argument("ShardedPipeline: n_shards must be >= 1");
  if (options_.batch_size == 0) options_.batch_size = 1;
  const auto n = static_cast<std::size_t>(options.n_shards);
  obs_ = std::make_shared<obs::PipelineObs>(options.n_shards, options.obs);
  // The flow-table budget is global; each shard polices its slice.
  PipelineOptions per_shard = options.flow_table;
  if (per_shard.max_flows > 0)
    per_shard.max_flows = (per_shard.max_flows + n - 1) / n;
  // Batch size propagates into deferred classification unless the caller
  // pinned an explicit classify_batch on the flow table.
  if (per_shard.classify_batch <= 1)
    per_shard.classify_batch = options_.batch_size;
  shards_.reserve(n);
  for (int i = 0; i < options.n_shards; ++i) {
    auto shard =
        std::make_unique<Shard>(bank, options.queue_capacity, per_shard);
    shard->index = i;
    shard->staged.reserve(options_.batch_size);
    // All shards write the one shared registry, each at its own slot.
    shard->pipe.bind_obs(obs_.get(), i);
    shard->pipe.set_sink([this](telemetry::SessionRecord record) {
      const std::lock_guard<std::mutex> lock(sink_mutex_);
      if (sink_) sink_(std::move(record));
    });
    // Per-shard drift monitor: worker-thread-owned, never obs-bound (the
    // merged view at the dispatcher slot is the only gauge writer — summing
    // per-shard gauges at exposition would double-count baselines).
    if (options_.drift) {
      shard->drift = std::make_unique<DriftMonitor>(*options_.drift);
      shard->pipe.set_drift_monitor(shard->drift.get());
    }
    // Attach before the worker starts: the thread launch below is the
    // happens-before edge that publishes the adopted generation.
    if (options_.lifecycle) shard->pipe.attach_lifecycle(options_.lifecycle, i);
    shards_.push_back(std::move(shard));
  }
  if (options_.lifecycle)
    options_.lifecycle->bind_obs(&obs_->registry(), obs_->dispatcher_slot());
  for (auto& shard : shards_)
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
}

ShardedPipeline::~ShardedPipeline() {
  // Hand over any packets still staged so they are processed (or counted
  // as shed on a bypassed shard) rather than silently discarded.
  flush_staged();
  // Stop must reach every worker, bypassed or not, so the join below
  // terminates. A worker wedged in user code forever cannot be joined —
  // the watchdog's bypass assumes stalls are transient (slow sink, paging)
  // or that the process is exiting anyway.
  for (auto& shard : shards_) {
    Item item;
    item.kind = Item::Kind::Stop;
    spin_until([&] { return shard->queue.try_push(item); });
    shard->enqueued.fetch_add(1, std::memory_order_release);
  }
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
}

void ShardedPipeline::set_sink(
    std::function<void(telemetry::SessionRecord)> sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = std::move(sink);
}

void ShardedPipeline::set_shard_sinks(
    std::vector<std::function<void(telemetry::SessionRecord)>> sinks) {
  if (sinks.size() != shards_.size())
    throw std::invalid_argument(
        "ShardedPipeline: set_shard_sinks needs exactly one sink per shard");
  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->pipe.set_sink(std::move(sinks[i]));
}

void ShardedPipeline::set_stuck_callback(
    std::function<void(int shard)> callback) {
  stuck_callback_ = std::move(callback);
}

void ShardedPipeline::set_stuck_dump_sink(
    std::function<void(int shard, std::string dump)> sink) {
  stuck_dump_sink_ = std::move(sink);
}

void ShardedPipeline::set_flight_recorder(obs::FlightRecorder* recorder) {
  flight_recorder_ = recorder;
}

void ShardedPipeline::mark_capture_start() {
  if (obs_->spans_enabled()) capture_mark_ns_ = obs::tick_now_ns();
}

void ShardedPipeline::set_exporter(obs::ExportOptions options) {
  exporter_ = std::make_unique<obs::PeriodicExporter>(obs_->registry_ptr(),
                                                      std::move(options));
}

void ShardedPipeline::maybe_export() {
  // Amortized: one clock read per 1024 dispatcher packets, not per packet.
  if (!exporter_) return;
  if ((++packets_since_export_check_ & 1023) != 0) return;
  exporter_->tick(steady_now_us());
}

std::size_t ShardedPipeline::shard_of(const net::FlowKey& key) const {
  return net::FlowKeyHash{}(key) % shards_.size();
}

void ShardedPipeline::check_dispatcher_thread() {
#if VPSCOPE_CHECK_DISPATCHER
  const std::size_t self =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  bool unpinned = false;
  if (dispatcher_thread_pinned_.compare_exchange_strong(
          unpinned, true, std::memory_order_acq_rel)) {
    dispatcher_thread_hash_.store(self, std::memory_order_release);
    return;
  }
  if (dispatcher_thread_hash_.load(std::memory_order_acquire) != self) {
    // Written from the violating (non-dispatcher) thread; the cell is an
    // atomic, so cross-thread writes are merely contended, never racy.
    obs_->dispatcher_contract_violations.add(obs_->dispatcher_slot());
#if !(defined(VPSCOPE_FAULT_INJECTION) && VPSCOPE_FAULT_INJECTION)
    assert(false &&
           "ShardedPipeline: on_packet/flush/stats/active_flows are "
           "dispatcher-thread-only (see the threading contract)");
#endif
  }
#endif
}

bool ShardedPipeline::watchdog_check(Shard& shard) {
  if (options_.stuck_timeout_us == 0 ||
      shard.bypassed.load(std::memory_order_relaxed))
    return false;
  const std::uint64_t processed =
      shard.processed.load(std::memory_order_relaxed);
  const std::uint64_t now = steady_now_us();
  if (processed != shard.watchdog_last_processed ||
      shard.watchdog_stall_started_us == 0) {
    shard.watchdog_last_processed = processed;
    shard.watchdog_stall_started_us = now;
    return false;
  }
  if (now - shard.watchdog_stall_started_us < options_.stuck_timeout_us)
    return false;
  // No consumer progress for the full timeout while work is pending: flip
  // to telemetry-only bypass so one wedged shard cannot head-of-line-block
  // the capture loop. The backlog becomes `stranded` until recovery.
  shard.bypassed.store(true, std::memory_order_release);
  obs_->shards_bypassed.add(obs_->dispatcher_slot(), 1);
  if (auto* ring = obs_->ring(shard.index)) {
    // Shard-level event, pushed unconditionally (not flow-sampled).
    obs::TraceEvent event;
    event.ts_us = now;
    event.kind = obs::TraceEventKind::Stranded;
    ring->push(event);
  }
  // Post-mortem before the callback, so the dump reflects the moment of
  // the flip (the callback may mutate the world).
  if (stuck_dump_sink_)
    stuck_dump_sink_(shard.index, obs_->dump_shard(shard.index));
  if (flight_recorder_) {
    char detail[32];
    std::snprintf(detail, sizeof(detail), "shard_%d", shard.index);
    flight_recorder_->dump("watchdog_stuck_shard", detail);
  }
  if (stuck_callback_) stuck_callback_(shard.index);
  return true;
}

void ShardedPipeline::count_drop(AdmissionClass cls) {
  // Release: a packet leaving the staging batch must be visible in its drop
  // counter no later than its staged-gauge decrement is, or a concurrent
  // snapshot (which reads counters before the gauge) could double-count it.
  if (cls == AdmissionClass::Handshake)
    obs_->packets_dropped_handshake.add(obs_->dispatcher_slot(), 1,
                                        std::memory_order_release);
  else
    obs_->packets_dropped_payload.add(obs_->dispatcher_slot(), 1,
                                      std::memory_order_release);
}

void ShardedPipeline::shed_staged(Shard& shard, Item& item) {
  // The admission class is only evaluated here, at the moment a drop has to
  // be attributed — never on the Block-mode fast path.
  const AdmissionClass cls = eval_admission_class(*item.decoded);
  count_drop(cls);
  const std::uint64_t hash = net::FlowKeyHash{}(item.decoded->flow_key());
  if (auto* ring = obs_->ring(shard.index); ring && ring->sampled(hash)) {
    obs::TraceEvent event;
    event.ts_us = item.decoded->timestamp_us;
    event.flow_hash = hash;
    event.kind = obs::TraceEventKind::Shed;
    event.outcome = static_cast<std::uint8_t>(cls);
    ring->push(event);
  }
  item = Item{};  // release the packet buffer
}

void ShardedPipeline::flush_shard(Shard& shard) {
  const std::size_t n = shard.staged.size();
  if (n == 0) return;
  const int dslot = obs_->dispatcher_slot();
  // Every staged packet reaches a terminal counter (enqueued or dropped)
  // before this function returns, so the whole batch leaves the staged
  // gauge up front. Decrement-before-increment plus snapshot()'s
  // counters-before-gauge read order means a concurrent snapshot can only
  // under-account packets mid-flush (they are in flight), never count one
  // twice.
  obs_->packets_staged.add(dslot, -static_cast<std::int64_t>(n),
                           std::memory_order_release);
  obs_->dispatch_batches.add(dslot);
  std::size_t done = 0;
  if (!shard.bypassed.load(std::memory_order_relaxed)) {
    // Fast path: bulk handover — one release store per accepted chunk.
    while (done < n) {
      const std::size_t pushed =
          shard.queue.try_push_bulk(shard.staged.data() + done, n - done);
      if (pushed == 0) break;
      shard.watchdog_stall_started_us = 0;
      shard.enqueued.fetch_add(pushed, std::memory_order_release);
      obs_->packets_enqueued.add(shard.index, pushed,
                                 std::memory_order_release);
      done += pushed;
    }
    // Slow path: the ring is full. Per item, the PR-4 bounded-wait policy:
    // Block waits (watchdog escape only), Shed waits out the class grace.
    const bool shed_mode =
        options_.overload == ShardedPipelineOptions::Overload::Shed;
    for (; done < n; ++done) {
      Item& item = shard.staged[done];
      bool have_grace = false;
      std::uint64_t grace = 0;
      std::uint64_t wait_started = 0;
      int spins = 0;
      bool pushed = false;
      bool bypassed = false;
      for (;;) {
        if (shard.queue.try_push(item)) {
          pushed = true;
          break;
        }
        if (++spins < kFreeSpins) {
          cpu_relax();
          continue;
        }
        const std::uint64_t now = steady_now_us();
        if (wait_started == 0) wait_started = now;
        if (watchdog_check(shard)) {
          bypassed = true;
          break;
        }
        if (shed_mode) {
          if (!have_grace) {
            grace = eval_admission_class(*item.decoded) ==
                            AdmissionClass::Handshake
                        ? options_.handshake_grace_us
                        : options_.payload_grace_us;
            have_grace = true;
          }
          if (now - wait_started >= grace) break;  // shed this packet
        }
        std::this_thread::yield();
      }
      if (pushed) {
        shard.watchdog_stall_started_us = 0;
        shard.enqueued.fetch_add(1, std::memory_order_release);
        obs_->packets_enqueued.add(shard.index, 1, std::memory_order_release);
        continue;
      }
      if (bypassed) break;       // remainder shed below
      shed_staged(shard, item);  // grace expired
    }
  }
  // Bypassed shard (on entry or flipped mid-flush): shed the remainder.
  for (; done < n; ++done) shed_staged(shard, shard.staged[done]);
  shard.staged.clear();
}

void ShardedPipeline::flush_staged() {
  for (auto& shard : shards_) flush_shard(*shard);
}

ShardedPipeline::Admission ShardedPipeline::enqueue(Shard& shard, Item&& item,
                                                    AdmissionClass cls,
                                                    bool control) {
  if (shard.bypassed.load(std::memory_order_relaxed))
    return Admission::Bypassed;
  const Item::Kind kind = item.kind;
  if (!shard.queue.try_push(item)) {
    const bool shed =
        !control && options_.overload == ShardedPipelineOptions::Overload::Shed;
    const std::uint64_t grace = cls == AdmissionClass::Handshake
                                    ? options_.handshake_grace_us
                                    : options_.payload_grace_us;
    std::uint64_t wait_started = 0;
    int spins = 0;
    for (;;) {
      if (shard.queue.try_push(item)) break;
      if (++spins < kFreeSpins) {
        cpu_relax();
        continue;
      }
      const std::uint64_t now = steady_now_us();
      if (wait_started == 0) wait_started = now;
      if (watchdog_check(shard)) return Admission::Bypassed;
      if (shed && now - wait_started >= grace) return Admission::Shed;
      std::this_thread::yield();
    }
  }
  shard.watchdog_stall_started_us = 0;  // the ring made room: not stuck
  shard.enqueued.fetch_add(1, std::memory_order_release);
  // Packet-item handover counter at the TARGET shard's slot, so
  // enqueued(i) - completed(i) is shard i's packet backlog.
  if (kind == Item::Kind::Packet) obs_->packets_enqueued.add(shard.index);
  return Admission::Enqueued;
}

void ShardedPipeline::broadcast(Item::Kind kind, std::uint64_t arg0,
                                std::uint64_t arg1) {
  // Control items are ordered with the packets that preceded them only if
  // those packets are already in the rings.
  flush_staged();
  for (auto& shard : shards_) {
    // Control traffic never sheds, but it skips bypassed shards — their
    // flows are unreachable until the worker recovers.
    Item item;
    item.kind = kind;
    item.arg0 = arg0;
    item.arg1 = arg1;
    enqueue(*shard, std::move(item), AdmissionClass::Handshake,
            /*control=*/true);
  }
}

void ShardedPipeline::on_packet(const net::Packet& packet) {
  on_packet(net::Packet(packet));  // one copy; the shard owns its bytes
}

void ShardedPipeline::on_packet(net::Packet&& packet) {
  check_dispatcher_thread();
  const int dslot = obs_->dispatcher_slot();
  obs_->packets_total.add(dslot);
  // Span timeline (DESIGN.md §5k): clock reads are deferred until the flow
  // hash is known, so the 63-in-64 unsampled packets pay one branch and
  // zero reads. The cost is span fidelity on sampled flows: decode time
  // lands inside the Capture span (mark_capture_start to post-decode)
  // rather than the Dispatch span — per-stage timing belongs to the
  // profiler's histograms, spans carry causality and queueing.
  const bool spanning = obs_->spans_enabled();
  Item item;
  item.kind = Item::Kind::Packet;
  item.packet = std::move(packet);
  {
    obs::ScopedTimer timer(&obs_->profiler, obs::Stage::Parse, dslot);
    item.decoded = net::decode(item.packet);
  }
  if (!item.decoded) {
    obs_->packets_non_ip.add(dslot);  // rejected at decode = handled
    capture_mark_ns_ = 0;
    maybe_export();
    maybe_poll_lifecycle();
    return;
  }
  // Stage for the next bulk handover. The admission class is NOT computed
  // here: under Block-mode dispatch no decision ever needs it, and the shed
  // paths evaluate it lazily at drop time (shed_staged / the grace wait).
  const std::uint64_t hash = net::FlowKeyHash{}(item.decoded->flow_key());
  Shard& shard = *shards_[hash % shards_.size()];
  if (spanning) {
    if (obs_->span_sampled(hash)) {
      obs::SpanRing& dring = *obs_->span_ring(dslot);
      std::uint64_t parent = 0;
      const std::uint64_t t_entry = obs::tick_now_ns();
      if (capture_mark_ns_ != 0 && capture_mark_ns_ <= t_entry)
        parent = dring.record(obs::SpanKind::Capture, hash, 0,
                              capture_mark_ns_, t_entry, 0);
      const std::uint64_t now = obs::tick_now_ns();
      item.span_parent = dring.record(obs::SpanKind::Dispatch, hash, parent,
                                      t_entry, now, 0);
      item.enqueue_ns = now;
    }
    capture_mark_ns_ = 0;
  }
  shard.staged.push_back(std::move(item));
  // Release pairs with snapshot()'s acquire gauge read: a snapshot that
  // sees the staged packet is guaranteed to see its packets_total
  // increment too (read last there), keeping accounted <= total.
  obs_->packets_staged.add(dslot, 1, std::memory_order_release);
  if (shard.staged.size() >= options_.batch_size) flush_shard(shard);
  maybe_export();
  maybe_poll_lifecycle();
}

void ShardedPipeline::on_volume_sample(const net::FlowKey& key,
                                       std::uint64_t ts_us,
                                       std::uint64_t bytes_down,
                                       std::uint64_t bytes_up) {
  check_dispatcher_thread();
  Shard& shard = *shards_[shard_of(key)];
  // Keep the sample ordered behind the shard's staged packets (same-flow
  // FIFO is the sharding invariant).
  flush_shard(shard);
  Item item;
  item.kind = Item::Kind::Volume;
  item.key = key;
  item.arg0 = ts_us;
  item.arg1 = bytes_down;
  item.arg2 = bytes_up;
  if (enqueue(shard, std::move(item), AdmissionClass::Payload,
              /*control=*/false) != Admission::Enqueued)
    obs_->volume_samples_dropped.add(obs_->dispatcher_slot());
}

void ShardedPipeline::flush_idle(std::uint64_t now_us,
                                 std::uint64_t idle_timeout_us) {
  check_dispatcher_thread();
  broadcast(Item::Kind::FlushIdle, now_us, idle_timeout_us);
  drain();
}

void ShardedPipeline::flush_all() {
  check_dispatcher_thread();
  broadcast(Item::Kind::FlushAll);
  drain();
  if (exporter_) exporter_->export_now();  // final snapshot at end of capture
}

void ShardedPipeline::drain() {
  check_dispatcher_thread();
  flush_staged();  // staged packets are not enqueued yet; hand them over
  for (auto& shard : shards_) {
    if (shard->bypassed.load(std::memory_order_relaxed)) continue;
    const std::uint64_t target =
        shard->enqueued.load(std::memory_order_relaxed);
    // The acquire load pairs with the worker's release increment, making
    // all of the shard's pipeline state visible once the count is reached.
    // The watchdog breaks the wait if the worker wedges mid-backlog.
    int spins = 0;
    for (;;) {
      if (shard->processed.load(std::memory_order_acquire) >= target) break;
      if (++spins < kFreeSpins) {
        cpu_relax();
        continue;
      }
      if (watchdog_check(*shard)) break;
      std::this_thread::yield();
    }
  }
}

bool ShardedPipeline::quiescent(const Shard& shard) const {
  return shard.processed.load(std::memory_order_acquire) >=
         shard.enqueued.load(std::memory_order_relaxed);
}

PipelineStats ShardedPipeline::stats() {
  check_dispatcher_thread();
  drain();
  return snapshot();
}

PipelineStats ShardedPipeline::snapshot() const {
  // Pure registry reads: wait-free for the writers, callable from any
  // thread. Even a wedged shard's counters stay exact — they are atomics
  // the worker publishes per item, not flow-table state.
  const obs::PipelineObs& o = *obs_;
  PipelineStats s;
  s.packets_non_ip = o.packets_non_ip.total();
  s.flows_total = o.flows_total.total();
  s.video_flows = o.video_flows.total();
  s.classified_composite = o.classified_composite.total();
  s.classified_partial = o.classified_partial.total();
  s.classified_unknown = o.classified_unknown.total();
  std::uint64_t completed_sum = 0;
  std::uint64_t stranded = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const int slot = static_cast<int>(i);
    // One acquire load feeds both processed and stranded, keeping the
    // identity an exact equality; the release pair is the worker's
    // per-batch completed increment.
    const std::uint64_t done =
        o.packets_completed.value(slot, std::memory_order_acquire);
    completed_sum += done;
    const std::uint64_t sent =
        o.packets_enqueued.value(slot, std::memory_order_acquire);
    if (sent > done) stranded += sent - done;
  }
  s.packets_processed = completed_sum + s.packets_non_ip;
  s.packets_dropped_payload =
      o.packets_dropped_payload.total(std::memory_order_acquire);
  s.packets_dropped_handshake =
      o.packets_dropped_handshake.total(std::memory_order_acquire);
  // The staged gauge is read strictly AFTER the enqueued/dropped counters:
  // the dispatcher decrements it before a packet's terminal counter
  // increment, so this order can momentarily miss an in-flight packet
  // (under-account) but can never see it twice. Staged packets are backlog
  // — counted as stranded, like a live shard's ring occupancy.
  const std::int64_t staged = o.packets_staged.value(
      o.dispatcher_slot(), std::memory_order_acquire);
  if (staged > 0) stranded += static_cast<std::uint64_t>(staged);
  s.packets_stranded = stranded;
  s.volume_samples_dropped = o.volume_samples_dropped.total();
  s.flows_evicted_capacity = o.flows_evicted_capacity.total();
  s.sink_errors = o.sink_errors.total();
  s.worker_errors = o.worker_errors.total();
  const std::int64_t bypassed = o.shards_bypassed.total();
  s.shards_bypassed =
      bypassed > 0 ? static_cast<std::uint64_t>(bypassed) : 0;
  // Read the grand total LAST: every packet visible in a component counter
  // above incremented packets_total first, so a mid-dispatch snapshot is
  // only ever under-accounted (in-flight packets), never over — and
  // exactly balanced once the dispatcher is between calls.
  s.packets_total = o.packets_total.total();
  return s;
}

std::size_t ShardedPipeline::active_flows() {
  check_dispatcher_thread();
  drain();
  std::size_t total = 0;
  for (auto& shard : shards_)
    if (quiescent(*shard)) total += shard->pipe.active_flows();
  return total;
}

int ShardedPipeline::reactivate_recovered_shards() {
  check_dispatcher_thread();
  int recovered = 0;
  for (auto& shard : shards_) {
    if (!shard->bypassed.load(std::memory_order_relaxed)) continue;
    if (!quiescent(*shard)) continue;  // still digesting its backlog
    shard->bypassed.store(false, std::memory_order_release);
    shard->watchdog_stall_started_us = 0;
    shard->watchdog_last_processed =
        shard->processed.load(std::memory_order_relaxed);
    obs_->shards_bypassed.add(obs_->dispatcher_slot(), -1);
    if (auto* ring = obs_->ring(shard->index)) {
      obs::TraceEvent event;
      event.ts_us = steady_now_us();
      event.kind = obs::TraceEventKind::Recovered;
      ring->push(event);
    }
    ++recovered;
  }
  return recovered;
}

int ShardedPipeline::bypassed_shards() const {
  int n = 0;
  for (const auto& shard : shards_)
    if (shard->bypassed.load(std::memory_order_relaxed)) ++n;
  return n;
}

void ShardedPipeline::maybe_poll_lifecycle() {
  // Amortized like maybe_export: canary judgement + retired-generation
  // reclamation once per 2048 dispatcher packets, not per packet.
  if (!options_.lifecycle) return;
  if ((++packets_since_lifecycle_poll_ & 2047) != 0) return;
  const ModelLifecycle::Decision decision = options_.lifecycle->poll();
  // A rollback is an incident, not routine churn: black-box it so the spans
  // and scoreboard that led to the judgement survive the rollout's undo.
  if (decision == ModelLifecycle::Decision::RolledBack && flight_recorder_)
    flight_recorder_->dump("canary_rollback");
}

std::vector<std::pair<std::pair<fingerprint::Provider, fingerprint::Transport>,
                      DriftMonitor::Status>>
ShardedPipeline::merged_drift_statuses() const {
  std::vector<std::pair<
      std::pair<fingerprint::Provider, fingerprint::Transport>,
      DriftMonitor::Status>>
      out;
  if (!options_.drift) return out;
  // Union of scenario keys: shards see disjoint flow slices, so a scenario
  // may exist on some shards only.
  std::vector<std::pair<fingerprint::Provider, fingerprint::Transport>> keys;
  for (const auto& shard : shards_) {
    if (!shard->drift) continue;
    for (const auto& key : shard->drift->scenario_keys())
      if (std::find(keys.begin(), keys.end(), key) == keys.end())
        keys.push_back(key);
  }
  std::vector<DriftMonitor::Status> parts;
  for (const auto& key : keys) {
    parts.clear();
    for (const auto& shard : shards_)
      if (shard->drift)
        parts.push_back(shard->drift->status(key.first, key.second));
    out.emplace_back(key, DriftMonitor::merge(parts, *options_.drift));
  }
  return out;
}

DriftMonitor::Status ShardedPipeline::drift_status(
    fingerprint::Provider provider, fingerprint::Transport transport) {
  check_dispatcher_thread();
  drain();  // acquire on processed: worker-side monitor state is visible
  if (!options_.drift) return {};
  std::vector<DriftMonitor::Status> parts;
  for (const auto& shard : shards_)
    if (shard->drift) parts.push_back(shard->drift->status(provider, transport));
  return DriftMonitor::merge(parts, *options_.drift);
}

bool ShardedPipeline::any_drifting() {
  check_dispatcher_thread();
  drain();
  for (const auto& [key, status] : merged_drift_statuses())
    if (status.drifting) return true;
  return false;
}

void ShardedPipeline::refresh_drift_gauges() {
  check_dispatcher_thread();
  drain();
  obs::Registry& registry = obs_->registry();
  const int dslot = obs_->dispatcher_slot();
  for (const auto& [key, status] : merged_drift_statuses()) {
    // Same series a standalone DriftMonitor::bind_obs would write (the
    // registry is idempotent on name+labels); shard monitors never bind, so
    // the merged view is the sole writer.
    std::string labels = "provider=\"";
    labels += fingerprint::to_string(key.first);
    labels += "\",transport=\"";
    labels += fingerprint::to_string(key.second);
    labels += '"';
    registry
        .gauge("vpscope_drift_flagged",
               "1 when the scenario's recent window drifts from its baseline",
               labels)
        .set(dslot, status.drifting ? 1 : 0);
    registry
        .gauge("vpscope_drift_reject_delta_milli",
               "Recent minus baseline non-composite rate, in 1/1000", labels)
        .set(dslot,
             static_cast<std::int64_t>((status.recent_reject_rate -
                                        status.baseline_reject_rate) *
                                       1000.0));
    registry
        .gauge("vpscope_drift_confidence_delta_milli",
               "Recent minus baseline mean composite confidence, in 1/1000",
               labels)
        .set(dslot,
             static_cast<std::int64_t>((status.recent_confidence -
                                        status.baseline_confidence) *
                                       1000.0));
  }
}

void ShardedPipeline::worker_loop(Shard& shard) {
  // Bulk drain (DESIGN.md §5g): up to batch_size items per pop — one
  // acquire/release pair on the ring and one completed-counter RMW per
  // batch instead of per item. Fault containment stays per item.
  std::vector<Item> batch(options_.batch_size);
  std::size_t got = 0;
  for (;;) {
    // Batch boundary = model-swap safe point. One relaxed load when nothing
    // changed; adoption also keeps the epoch slot advancing so the
    // lifecycle collector can retire superseded generations.
    shard.pipe.maybe_adopt_generation();
    got = shard.queue.try_pop_bulk(batch.data(), batch.size());
    if (got == 0) {
      // About to park: resolve any deferred classifications first, so a
      // partial classify batch never waits on traffic that may not come.
      shard.pipe.classify_pending_flush();
      spin_until([&] {
        // Adopt while parked too — an idle shard pinning an old epoch
        // would otherwise stall generation reclamation indefinitely.
        shard.pipe.maybe_adopt_generation();
        return (got = shard.queue.try_pop_bulk(batch.data(), batch.size())) !=
               0;
      });
    }
    obs_->worker_batches.add(shard.index);
    std::uint64_t packet_items = 0;
    bool stop = false;
    for (std::size_t i = 0; i < got; ++i) {
      Item& item = batch[i];
      const Item::Kind kind = item.kind;
      // Contain everything thrown out of item processing: a worker that
      // escapes its loop would std::terminate the process. Sink exceptions
      // are already absorbed (and counted) inside VideoFlowPipeline; this
      // catches injected faults and anything unforeseen.
      try {
        switch (kind) {
          case Item::Kind::Packet:
            VPSCOPE_FAULTPOINT(fault::Point::WorkerItem);
            // Span-sampled packet (one branch otherwise): the Queue span is
            // the staging + ring residency — Dispatch handover to worker
            // pop — recorded in THIS shard's ring, parented on the
            // dispatcher's Dispatch span; the pipeline chains the flow's
            // Extract/Encode/Classify spans onto it.
            if (item.span_parent != 0) {
              if (obs::SpanRing* sring = obs_->span_ring(shard.index))
                shard.pipe.set_packet_span_parent(sring->record(
                    obs::SpanKind::Queue,
                    net::FlowKeyHash{}(item.decoded->flow_key()),
                    item.span_parent, item.enqueue_ns, obs::tick_now_ns(),
                    0));
            }
            shard.pipe.on_decoded(*item.decoded);
            // Release the packet buffer before signalling completion so
            // drain() observers never race the deallocation.
            item = Item{};
            break;
          case Item::Kind::Volume:
            VPSCOPE_FAULTPOINT(fault::Point::WorkerItem);
            shard.pipe.on_volume_sample(item.key, item.arg0, item.arg1,
                                        item.arg2);
            break;
          case Item::Kind::FlushIdle:
            shard.pipe.flush_idle(item.arg0, item.arg1);
            break;
          case Item::Kind::FlushAll:
            shard.pipe.flush_all();
            break;
          case Item::Kind::Stop:
            stop = true;
            break;
        }
      } catch (...) {
        obs_->worker_errors.add(shard.index);
        item = Item{};  // release buffers even on a failed item
      }
      if (kind == Item::Kind::Packet) ++packet_items;
    }
    // Completed (even on contained errors) — published once per batch; the
    // release pairs with the acquire in snapshot(), making the shard's
    // registry writes for the whole batch visible.
    if (packet_items != 0)
      obs_->packets_completed.add(shard.index, packet_items,
                                  std::memory_order_release);
    shard.processed.fetch_add(got, std::memory_order_release);
    if (stop) return;
  }
}

}  // namespace vpscope::pipeline
