// Zero-downtime model lifecycle (DESIGN.md §5j): how a capture server takes
// a retrained classifier bank from "file appeared in the model directory"
// to "serving 100% of flows" without dropping a packet or taking a lock on
// the classify hot path — and how a bad retrain gets caught and rolled back
// before it owns the traffic.
//
// Three pieces:
//
//  1. Epoch-based reclamation (RCU). The active model state is an
//     immutable, heap-allocated Generation published through one atomic
//     pointer. Readers (pipeline shards) pin the generation they use by
//     storing its epoch into a private cache-line-aligned slot; the
//     collector frees a superseded generation only once every non-quiescent
//     slot has advanced past it. Readers never block, never CAS, and the
//     steady-state cost is one relaxed load per batch (peek) — swaps are
//     wait-free for readers.
//
//  2. Hardened admission. A candidate bank (a VPSB artifact, see
//     bank_serialize.hpp) is parsed, integrity-checked, compatibility-
//     checked, and smoke-classified off the hot path. Anything that fails
//     is counted and quarantined — the serving generation is untouched.
//     File reads retry with backoff (a publisher mid-rename on a network
//     filesystem looks like a transient error, not a bad artifact).
//
//  3. Canary rollout. An admitted bank first serves a deterministic
//     FlowKeyHash fraction of traffic alongside the incumbent. Outcome
//     counters (reject rate, composite confidence) accumulate per route;
//     poll() promotes the candidate to 100% once it has seen enough flows
//     and is not measurably worse, or rolls it back (and quarantines the
//     artifact) when it is. No operator in the loop either way.
//
// Thread roles: acquire/release/peek/record_outcome are reader-side and
// wait-free; everything else (offer/swap_to/poll/collect/status/bind_obs)
// is control-plane, serialized by an internal mutex, and may be called from
// any one thread at a time (typically the dispatcher).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/classifier_bank.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bytes.hpp"

namespace vpscope::pipeline {

struct LifecycleOptions {
  /// Fraction of flows (per mille) routed to an armed canary bank. 0
  /// disables staged rollout: an admitted bank swaps straight to stable.
  int canary_permille = 50;
  /// Flows each route must accumulate before poll() may judge the canary.
  std::size_t canary_min_flows = 200;
  std::size_t stable_min_flows = 200;
  /// Rollback when the canary's non-composite rate exceeds stable's by this.
  double reject_margin = 0.10;
  /// Rollback when the canary's mean composite confidence trails stable's
  /// by this (judged only when both routes produced composite outcomes).
  double confidence_margin = 0.05;
  /// offer_file read attempts (transient I/O retries with backoff).
  int admission_retries = 3;
  std::uint64_t retry_backoff_us = 2000;
  /// Move rejected artifacts into <dir>/quarantine/ next to the offered
  /// file (counters tick regardless).
  bool quarantine_files = true;
};

/// What happened to an offered bundle. Armed is the only success: the
/// bundle is serving canary traffic (or, with canary_permille == 0, is
/// already stable).
enum class AdmissionVerdict : std::uint8_t {
  Armed,
  ReadFailed,    // file unreadable after all retries
  BadFormat,     // VPSB integrity/structure rejected (bank_serialize)
  Incompatible,  // validation faulted (wrapped parse/validate exception)
  SmokeFailed,   // parsed fine but failed smoke classification
  Busy,          // a canary is already in flight, or readers won't quiesce
};
const char* to_string(AdmissionVerdict verdict);

class ModelLifecycle {
 public:
  /// One published model state. Immutable after publish; readers hold the
  /// pointer between safe points and route per flow by hash.
  struct Generation {
    /// Epoch: bumps on every publish (arm, promote, rollback, swap).
    std::uint64_t gen = 0;
    /// Model identity: bumps only when `stable` itself changes — the signal
    /// for a pipeline to recalibrate its drift baselines on adoption.
    std::uint64_t model_gen = 0;
    std::shared_ptr<const ClassifierBank> stable;
    std::shared_ptr<const ClassifierBank> canary;  // null: no rollout active
    int canary_permille = 0;

    bool routes_to_canary(std::uint64_t flow_hash) const {
      return canary != nullptr &&
             flow_hash % 1000 <
                 static_cast<std::uint64_t>(canary_permille);
    }
  };

  /// `n_reader_slots` is the maximum number of concurrent readers
  /// (pipeline shards); each reader owns one slot index.
  ModelLifecycle(std::shared_ptr<const ClassifierBank> initial,
                 int n_reader_slots, LifecycleOptions options = {});
  ~ModelLifecycle();
  ModelLifecycle(const ModelLifecycle&) = delete;
  ModelLifecycle& operator=(const ModelLifecycle&) = delete;

  // ---- reader side (wait-free, called from shard workers) ----

  /// The current generation, unpinned — one relaxed load. Readers compare
  /// against their adopted generation to detect a pending swap cheaply.
  const Generation* peek() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Pins and returns the current generation for `slot`. The returned
  /// pointer stays valid until the slot re-acquires or releases.
  const Generation* acquire(int slot);

  /// Marks `slot` quiescent (reader detaching or shutting down).
  void release(int slot);

  /// Feeds one classified flow's outcome into the canary/stable scoreboard.
  /// Wait-free; relaxed per-slot cells, summed by poll().
  void record_outcome(int slot, bool canary_route, telemetry::Outcome outcome,
                      double confidence);

  // ---- control plane (internally serialized) ----

  /// Directly publishes `bank` as the new stable (no canary stage): the
  /// trusted-operator swap. Readers adopt at their next safe point.
  void swap_to(std::shared_ptr<const ClassifierBank> bank);

  /// Admission: validate + smoke-check a serialized VPSB artifact, then arm
  /// it as canary (or swap it straight in when canary_permille == 0).
  AdmissionVerdict offer_bytes(ByteView data, std::string* why = nullptr);

  /// offer_bytes over a file, with transient-read retries; on rejection the
  /// file is moved to <dir>/quarantine/ (when quarantine_files).
  AdmissionVerdict offer_file(const std::string& path,
                              std::string* why = nullptr);

  enum class Decision : std::uint8_t { None, Promoted, RolledBack };

  /// Judges an in-flight canary against the scoreboard, publishes the
  /// promotion or rollback when the evidence is in, and collects retired
  /// generations. Call periodically from the control thread.
  Decision poll();

  /// Blocks (bounded) until every non-quiescent reader has adopted the
  /// current generation. False on timeout.
  bool wait_all_adopted(std::uint64_t timeout_us = 500'000);

  /// Frees superseded generations every reader has moved past. Returns the
  /// number freed. poll() calls this; exposed for tests and shutdown.
  std::size_t collect();

  struct Status {
    std::uint64_t generation = 0;
    std::uint64_t model_generation = 0;
    bool canary_active = false;
    int canary_permille = 0;
    std::size_t generations_retained = 0;  // includes the active one
    std::uint64_t swaps = 0;
    std::uint64_t promotions = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t offers = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t canary_flows = 0;
    std::uint64_t stable_flows = 0;
  };
  Status status() const;

  /// Admission smoke check: must return true for a servable bank. The
  /// default (synth_smoke_check) classifies one synthesized flow per
  /// trained scenario and accepts any structurally sane result — it catches
  /// crashes and NaN confidences, not bad labels (that is the canary's
  /// job). Tests substitute a golden-corpus check.
  using SmokeCheck =
      std::function<bool(const ClassifierBank& bank, std::string* why)>;
  void set_smoke_check(SmokeCheck check);
  static bool synth_smoke_check(const ClassifierBank& bank, std::string* why);

  /// Mirrors lifecycle counters/gauges into `registry` at `slot`
  /// (vpscope_model_generation, vpscope_model_swaps_total,
  /// vpscope_bundle_quarantined, ...). Refreshed on every control-plane
  /// call. `registry` must outlive this object.
  void bind_obs(obs::Registry* registry, int slot);

 private:
  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

  struct alignas(64) ReaderSlot {
    std::atomic<std::uint64_t> epoch{kQuiescent};
    /// Outcome scoreboard, [0] stable route, [1] canary route. Relaxed
    /// increments by the owning reader; reset by the control plane at arm
    /// time (after wait_all_adopted, so no stale-generation pollution).
    struct Cells {
      std::atomic<std::uint64_t> flows{0};
      std::atomic<std::uint64_t> composite{0};
      std::atomic<std::uint64_t> confidence_milli{0};
    } cells[2];
  };

  struct RouteTotals {
    std::uint64_t flows = 0;
    std::uint64_t composite = 0;
    std::uint64_t confidence_milli = 0;
  };

  // Both require mutex_ held.
  void publish(std::unique_ptr<Generation> next);
  std::size_t collect_locked();
  bool wait_all_adopted_locked(std::uint64_t timeout_us);
  RouteTotals sum_route(int route) const;
  void reset_cells();
  void quarantine_file(const std::string& path);
  void sync_obs_locked();

  const LifecycleOptions options_;
  const int n_slots_;
  std::vector<ReaderSlot> slots_;

  std::atomic<Generation*> active_{nullptr};

  mutable std::mutex mutex_;
  /// Publish order; back() is the active generation. Never empty.
  std::vector<std::unique_ptr<Generation>> history_;
  std::uint64_t next_gen_ = 0;
  SmokeCheck smoke_check_;
  /// Where the in-flight canary came from, for rollback quarantine.
  std::string canary_source_path_;

  // Lifetime counters (mutex-protected), mirrored to obs on control calls.
  std::uint64_t swaps_ = 0;
  std::uint64_t promotions_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t offers_ = 0;
  std::uint64_t quarantined_ = 0;

  // obs mirroring (delta-tracked: obs counters are monotonic).
  obs::Registry* registry_ = nullptr;
  int obs_slot_ = 0;
  obs::Gauge* generation_gauge_ = nullptr;
  obs::Gauge* canary_gauge_ = nullptr;
  obs::Gauge* retained_gauge_ = nullptr;
  obs::Counter* swaps_counter_ = nullptr;
  obs::Counter* promotions_counter_ = nullptr;
  obs::Counter* rollbacks_counter_ = nullptr;
  obs::Counter* offers_counter_ = nullptr;
  obs::Counter* quarantined_counter_ = nullptr;
  std::uint64_t swaps_mirrored_ = 0;
  std::uint64_t promotions_mirrored_ = 0;
  std::uint64_t rollbacks_mirrored_ = 0;
  std::uint64_t offers_mirrored_ = 0;
  std::uint64_t quarantined_mirrored_ = 0;
};

/// Polling watcher over a model directory: offers every new or modified
/// *.vpsb file to the lifecycle. Skips the quarantine/ subdirectory and
/// *.tmp files (in-flight atomic publishes). Rejected files move out of the
/// directory (quarantine), so they are not re-offered; Busy offers are
/// retried on the next poll.
class ModelDirWatcher {
 public:
  ModelDirWatcher(ModelLifecycle* lifecycle, std::string dir)
      : lifecycle_(lifecycle), dir_(std::move(dir)) {}

  /// Scans once; returns the number of offers made. `log`, when given,
  /// accumulates one line per offer: "<file>: <verdict>[ (<why>)]".
  int poll(std::string* log = nullptr);

 private:
  ModelLifecycle* lifecycle_;
  std::string dir_;
  struct FileSig {
    std::int64_t mtime = 0;
    std::uint64_t size = 0;
    bool operator==(const FileSig&) const = default;
  };
  std::map<std::string, FileSig> seen_;
};

}  // namespace vpscope::pipeline
