#include "pipeline/classifier_bank.hpp"

#include <algorithm>
#include <span>
#include <vector>

#include "core/handshake.hpp"

namespace vpscope::pipeline {

using fingerprint::Provider;
using fingerprint::Transport;

namespace {

std::pair<int, int> scenario_key(Provider provider, Transport transport) {
  return {static_cast<int>(provider), static_cast<int>(transport)};
}

/// Builds a dense class index over the values present in `values`,
/// preserving first-seen order of the provided canonical ordering.
template <typename T>
int class_index(std::vector<T>& classes, const T& value) {
  const auto it = std::find(classes.begin(), classes.end(), value);
  if (it != classes.end()) return static_cast<int>(it - classes.begin());
  classes.push_back(value);
  return static_cast<int>(classes.size()) - 1;
}

}  // namespace

void ClassifierBank::train(const synth::Dataset& dataset,
                           const BankParams& params) {
  scenarios_.clear();
  threshold_ = params.confidence_threshold;

  // Group flows (as handshakes) per scenario.
  struct Staging {
    std::vector<core::FlowHandshake> handshakes;
    std::vector<fingerprint::PlatformId> labels;
  };
  std::map<std::pair<int, int>, Staging> staging;

  for (const auto& flow : dataset.flows) {
    const auto handshake = core::extract_handshake(flow.packets);
    if (!handshake) continue;  // malformed synthesis would be a bug; skip
    auto& s = staging[scenario_key(flow.provider, flow.transport)];
    s.handshakes.push_back(*handshake);
    s.labels.push_back(flow.platform);
  }

  for (auto& [key, s] : staging) {
    const auto transport = static_cast<Transport>(key.second);
    Scenario scenario;
    scenario.encoder = core::FeatureEncoder(transport);
    scenario.encoder.fit(s.handshakes);

    ml::Dataset platform_data, device_data, agent_data;
    for (std::size_t i = 0; i < s.handshakes.size(); ++i) {
      const auto features = scenario.encoder.transform(s.handshakes[i]);
      const fingerprint::PlatformId& label = s.labels[i];
      platform_data.x.push_back(features);
      platform_data.y.push_back(
          class_index(scenario.platform_classes, label));
      device_data.x.push_back(features);
      device_data.y.push_back(class_index(scenario.device_classes, label.os));
      agent_data.x.push_back(features);
      agent_data.y.push_back(class_index(scenario.agent_classes, label.agent));
    }

    ml::ForestParams fp = params.forest;
    scenario.platform_model.fit(platform_data, fp);
    fp.seed += 101;
    scenario.device_model.fit(device_data, fp);
    fp.seed += 101;
    scenario.agent_model.fit(agent_data, fp);

    scenario.platform_compiled =
        ml::CompiledForest::compile(scenario.platform_model);
    scenario.device_compiled =
        ml::CompiledForest::compile(scenario.device_model);
    scenario.agent_compiled =
        ml::CompiledForest::compile(scenario.agent_model);

    scenarios_.emplace(key, std::move(scenario));
  }
}

bool ClassifierBank::trained(Provider provider, Transport transport) const {
  return scenarios_.count(scenario_key(provider, transport)) > 0;
}

const ClassifierBank::Scenario* ClassifierBank::scenario(
    Provider provider, Transport transport) const {
  const auto it = scenarios_.find(scenario_key(provider, transport));
  return it == scenarios_.end() ? nullptr : &it->second;
}

void ClassifierBank::install_scenario(Provider provider, Transport transport,
                                      Scenario scenario) {
  scenario.platform_compiled =
      ml::CompiledForest::compile(scenario.platform_model);
  scenario.device_compiled = ml::CompiledForest::compile(scenario.device_model);
  scenario.agent_compiled = ml::CompiledForest::compile(scenario.agent_model);
  scenarios_.insert_or_assign(scenario_key(provider, transport),
                              std::move(scenario));
}

std::vector<std::pair<Provider, Transport>> ClassifierBank::scenario_keys()
    const {
  std::vector<std::pair<Provider, Transport>> keys;
  keys.reserve(scenarios_.size());
  for (const auto& [key, scenario] : scenarios_)
    keys.emplace_back(static_cast<Provider>(key.first),
                      static_cast<Transport>(key.second));
  return keys;
}

PlatformPrediction ClassifierBank::classify(const core::FlowHandshake& handshake,
                                            Provider provider,
                                            obs::StageProfiler* profiler,
                                            int slot,
                                            obs::SpanScratch* spans) const {
  PlatformPrediction out;
  const Scenario* s = scenario(provider, handshake.transport);
  if (!s) return out;  // untrained scenario: Unknown

  // One scratch per thread: classify() is const and runs concurrently on
  // every shard worker. The whole extract -> encode -> predict chain below
  // is allocation-free in steady state: raw attributes are POD TokenId
  // records, the encoder writes into the reused feature buffer (resize
  // within capacity after the first few calls), and the compiled forests
  // allocate nothing per call.
  struct ClassifyScratch {
    core::RawAttrs raw;
    std::vector<double> features;
    ml::CompiledForest::Scratch forest;
  };
  thread_local ClassifyScratch scratch;

  scratch.features.resize(s->encoder.dimension());
  {
    obs::ScopedTimer timer(profiler, obs::Stage::Encode, slot);
    obs::SpanScope span(spans, obs::SpanKind::Encode);
    s->encoder.transform_into(handshake, scratch.raw, scratch.features);
  }
  const std::span<const double> features(scratch.features);

  // Covers the forest descents and confidence logic through every return.
  obs::ScopedTimer classify_timer(profiler, obs::Stage::Classify, slot);
  obs::SpanScope classify_span(spans, obs::SpanKind::Classify);
  const auto [platform_cls, platform_conf] =
      s->platform_compiled.predict_with_confidence(features, scratch.forest);
  out.platform_confidence = platform_conf;

  if (platform_conf >= threshold_) {
    out.outcome = telemetry::Outcome::Composite;
    const auto& platform =
        s->platform_classes[static_cast<std::size_t>(platform_cls)];
    out.platform = platform;
    out.device = platform.os;
    out.agent = platform.agent;
    // The composite prediction implies both partial objectives.
    out.device_confidence = platform_conf;
    out.agent_confidence = platform_conf;
    return out;
  }

  // Fallback: per-objective classifiers, keep whichever is confident.
  const auto [device_cls, device_conf] =
      s->device_compiled.predict_with_confidence(features, scratch.forest);
  const auto [agent_cls, agent_conf] =
      s->agent_compiled.predict_with_confidence(features, scratch.forest);
  out.device_confidence = device_conf;
  out.agent_confidence = agent_conf;

  bool any = false;
  if (device_conf >= threshold_) {
    out.device = s->device_classes[static_cast<std::size_t>(device_cls)];
    any = true;
  }
  if (agent_conf >= threshold_) {
    out.agent = s->agent_classes[static_cast<std::size_t>(agent_cls)];
    any = true;
  }
  out.outcome = any ? telemetry::Outcome::Partial : telemetry::Outcome::Unknown;
  return out;
}

ClassifierBank::ClassifyBatch::Bucket& ClassifierBank::ClassifyBatch::bucket_for(
    const Scenario* scenario) {
  // At most one bucket per trained scenario (five in the full bank): linear
  // scan beats any map here and keeps bucket order — and therefore emit
  // order — deterministic (first-seen scenario order).
  for (Bucket& bucket : buckets_)
    if (bucket.scenario == scenario) return bucket;
  buckets_.emplace_back();
  buckets_.back().scenario = scenario;
  return buckets_.back();
}

bool ClassifierBank::ClassifyBatch::add(const core::FlowHandshake& handshake,
                                        fingerprint::Provider provider,
                                        std::uint64_t cookie,
                                        obs::StageProfiler* profiler,
                                        int slot,
                                        obs::SpanScratch* spans) {
  const Scenario* s = bank_->scenario(provider, handshake.transport);
  if (!s) return false;  // untrained: the caller's inline path says Unknown
  Bucket& bucket = bucket_for(s);
  const std::size_t dim = s->encoder.dimension();
  const std::size_t row_start = bucket.matrix.size();
  bucket.matrix.resize(row_start + dim);
  {
    obs::ScopedTimer timer(profiler, obs::Stage::Encode, slot);
    obs::SpanScope span(spans, obs::SpanKind::Encode);
    s->encoder.transform_into(
        handshake, raw_,
        std::span<double>(bucket.matrix).subspan(row_start, dim));
  }
  bucket.cookies.push_back(cookie);
  ++staged_;
  return true;
}

void ClassifierBank::ClassifyBatch::classify(
    const std::function<void(std::uint64_t, const PlatformPrediction&)>&
        emit) {
  const double threshold = bank_->threshold_;
  for (Bucket& bucket : buckets_) {
    const std::size_t rows = bucket.cookies.size();
    if (rows == 0) continue;
    const Scenario* s = bucket.scenario;
    const std::size_t dim = s->encoder.dimension();
    labels_.resize(rows);
    confidences_.resize(rows);
    s->platform_compiled.predict_with_confidence_batch(
        bucket.matrix, dim, labels_, confidences_, forest_);

    // Rows under the composite gate fall back to the per-objective forests
    // — batched too, over the compacted sub-matrix of just those rows.
    sub_rows_.clear();
    sub_matrix_.clear();
    for (std::size_t r = 0; r < rows; ++r) {
      if (confidences_[r] >= threshold) continue;
      sub_rows_.push_back(r);
      const auto row = std::span<const double>(bucket.matrix).subspan(
          r * dim, dim);
      sub_matrix_.insert(sub_matrix_.end(), row.begin(), row.end());
    }
    if (!sub_rows_.empty()) {
      const std::size_t sub_n = sub_rows_.size();
      device_labels_.resize(sub_n);
      device_confidences_.resize(sub_n);
      agent_labels_.resize(sub_n);
      agent_confidences_.resize(sub_n);
      s->device_compiled.predict_with_confidence_batch(
          sub_matrix_, dim, device_labels_, device_confidences_, forest_);
      s->agent_compiled.predict_with_confidence_batch(
          sub_matrix_, dim, agent_labels_, agent_confidences_, forest_);
    }

    // Assemble per row, replicating classify()'s logic (and therefore its
    // outcomes and confidences) exactly.
    std::size_t sub_k = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      PlatformPrediction out;
      out.platform_confidence = confidences_[r];
      if (confidences_[r] >= threshold) {
        out.outcome = telemetry::Outcome::Composite;
        const auto& platform =
            s->platform_classes[static_cast<std::size_t>(labels_[r])];
        out.platform = platform;
        out.device = platform.os;
        out.agent = platform.agent;
        out.device_confidence = confidences_[r];
        out.agent_confidence = confidences_[r];
      } else {
        const double device_conf = device_confidences_[sub_k];
        const double agent_conf = agent_confidences_[sub_k];
        out.device_confidence = device_conf;
        out.agent_confidence = agent_conf;
        bool any = false;
        if (device_conf >= threshold) {
          out.device = s->device_classes[static_cast<std::size_t>(
              device_labels_[sub_k])];
          any = true;
        }
        if (agent_conf >= threshold) {
          out.agent = s->agent_classes[static_cast<std::size_t>(
              agent_labels_[sub_k])];
          any = true;
        }
        out.outcome =
            any ? telemetry::Outcome::Partial : telemetry::Outcome::Unknown;
        ++sub_k;
      }
      emit(bucket.cookies[r], out);
    }
    bucket.matrix.clear();
    bucket.cookies.clear();
  }
  staged_ = 0;
}

}  // namespace vpscope::pipeline
