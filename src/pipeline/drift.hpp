// Concept-drift monitoring (paper §5.3): "the overall prediction accuracy
// and confidence will decline over a longer deployment period due to
// evolving traffic characteristics ... the deployment team will have to
// periodically retrain the under-performing classifiers".
//
// The monitor keeps, per (provider, transport) scenario, a sliding window
// of classification outcomes and compares it against a calibration baseline
// recorded right after (re)training. A scenario is flagged as drifting when
// its rejected/partial share rises or its mean composite confidence falls
// materially below the baseline — the operational signal to collect fresh
// ground truth and retrain that scenario's classifiers. The model lifecycle
// (DESIGN.md §5j) closes that loop: promotion of a retrained bank calls
// recalibrate_all() so the new model re-baselines instead of being judged
// against its predecessor's calibration.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "fingerprint/platform.hpp"
#include "obs/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace vpscope::pipeline {

struct DriftConfig {
  /// Sliding-window length (flows) per scenario.
  std::size_t window = 500;
  /// Number of initial flows that form the baseline after (re)calibration.
  std::size_t calibration = 500;
  /// Flag when the non-composite share exceeds baseline + this margin.
  double reject_margin = 0.10;
  /// Flag when mean composite confidence drops below baseline - this margin.
  double confidence_margin = 0.05;
  /// Time bound on the sliding window: samples older than this (relative to
  /// the newest timestamp the scenario has seen) leave the window even when
  /// the count bound alone would retain them. 0 keeps the window purely
  /// count-bounded. Timestamps are clamped against non-monotonic capture
  /// clocks the same way flush_idle's idle_us is — a backwards-stamped
  /// sample neither ages the window nor wraps the arithmetic.
  std::uint64_t max_sample_age_us = 0;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftConfig config = {}) : config_(config) {}

  /// Records one classified flow's outcome. The timestamped overload feeds
  /// the max_sample_age_us bound; the plain form is equivalent to ts_us = 0
  /// (count-bounded window only).
  void record(fingerprint::Provider provider, fingerprint::Transport transport,
              telemetry::Outcome outcome, double confidence) {
    record(provider, transport, outcome, confidence, 0);
  }
  void record(fingerprint::Provider provider, fingerprint::Transport transport,
              telemetry::Outcome outcome, double confidence,
              std::uint64_t ts_us);

  struct Status {
    bool calibrated = false;   // baseline complete
    bool drifting = false;
    std::size_t observed = 0;  // flows seen in total
    double baseline_reject_rate = 0.0;
    double recent_reject_rate = 0.0;
    double baseline_confidence = 0.0;
    double recent_confidence = 0.0;
    // Raw accumulators behind the rates above, exposed so per-shard
    // statuses merge exactly (ShardedPipeline::drift_status sums these and
    // re-derives the rates — merge()).
    std::size_t baseline_n = 0;
    std::size_t baseline_composite = 0;
    double baseline_confidence_sum = 0.0;
    std::size_t window_n = 0;
    std::size_t window_composite = 0;
    double window_confidence_sum = 0.0;
  };

  Status status(fingerprint::Provider provider,
                fingerprint::Transport transport) const;

  /// Combines per-shard statuses of ONE scenario into the status a single
  /// monitor fed with all shards' traffic would report: raw accumulators
  /// sum, rates re-derive, and the drift/calibration gates re-apply against
  /// `config` (merged baseline_n vs calibration, merged window_n vs
  /// window / 4).
  static Status merge(std::span<const Status> shards,
                      const DriftConfig& config);

  /// True if any scenario is currently flagged.
  bool any_drifting() const;

  /// The (provider, transport) scenarios this monitor has seen traffic for.
  std::vector<std::pair<fingerprint::Provider, fingerprint::Transport>>
  scenario_keys() const;

  /// Resets a scenario's baseline (call after retraining its classifiers).
  void recalibrate(fingerprint::Provider provider,
                   fingerprint::Transport transport);

  /// Resets every scenario's baseline — what a model-generation bump means:
  /// the new bank must not be judged against the old bank's calibration.
  /// Invoked automatically when a pipeline adopts a promoted generation.
  void recalibrate_all();

  /// Exports drift state as registry gauges, refreshed from record() every
  /// few samples (amortized): vpscope_drift_flagged plus the reject-rate /
  /// confidence deltas (milli units), one labeled series per scenario.
  /// `registry` must outlive the monitor; call before the first record.
  void bind_obs(obs::Registry* registry, int slot);

 private:
  struct Sample {
    bool composite;
    double confidence;
    std::uint64_t ts_us;  // clamped-monotone staging time (see record)
  };
  struct Scenario {
    std::deque<Sample> window;
    std::size_t observed = 0;
    // Baseline accumulators (first `calibration` flows after reset).
    std::size_t baseline_n = 0;
    std::size_t baseline_composite = 0;
    double baseline_confidence_sum = 0.0;
    /// Newest (clamped) timestamp seen; monotone by construction.
    std::uint64_t last_ts_us = 0;
    // Lazily registered gauges (null until bind_obs + first record).
    obs::Gauge* flagged_gauge = nullptr;
    obs::Gauge* reject_delta_gauge = nullptr;
    obs::Gauge* confidence_delta_gauge = nullptr;
  };

  const Scenario* find(fingerprint::Provider provider,
                       fingerprint::Transport transport) const;
  Status compute(const Scenario& scenario) const;
  void refresh_gauges(fingerprint::Provider provider,
                      fingerprint::Transport transport, Scenario& scenario);

  DriftConfig config_;
  std::map<std::pair<int, int>, Scenario> scenarios_;
  obs::Registry* registry_ = nullptr;
  int obs_slot_ = 0;
};

}  // namespace vpscope::pipeline
