// Concept-drift monitoring (paper §5.3): "the overall prediction accuracy
// and confidence will decline over a longer deployment period due to
// evolving traffic characteristics ... the deployment team will have to
// periodically retrain the under-performing classifiers".
//
// The monitor keeps, per (provider, transport) scenario, a sliding window
// of classification outcomes and compares it against a calibration baseline
// recorded right after (re)training. A scenario is flagged as drifting when
// its rejected/partial share rises or its mean composite confidence falls
// materially below the baseline — the operational signal to collect fresh
// ground truth and retrain that scenario's classifiers.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "fingerprint/platform.hpp"
#include "telemetry/telemetry.hpp"

namespace vpscope::pipeline {

struct DriftConfig {
  /// Sliding-window length (flows) per scenario.
  std::size_t window = 500;
  /// Number of initial flows that form the baseline after (re)calibration.
  std::size_t calibration = 500;
  /// Flag when the non-composite share exceeds baseline + this margin.
  double reject_margin = 0.10;
  /// Flag when mean composite confidence drops below baseline - this margin.
  double confidence_margin = 0.05;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftConfig config = {}) : config_(config) {}

  /// Records one classified flow's outcome.
  void record(fingerprint::Provider provider, fingerprint::Transport transport,
              telemetry::Outcome outcome, double confidence);

  struct Status {
    bool calibrated = false;   // baseline complete
    bool drifting = false;
    std::size_t observed = 0;  // flows seen in total
    double baseline_reject_rate = 0.0;
    double recent_reject_rate = 0.0;
    double baseline_confidence = 0.0;
    double recent_confidence = 0.0;
  };

  Status status(fingerprint::Provider provider,
                fingerprint::Transport transport) const;

  /// True if any scenario is currently flagged.
  bool any_drifting() const;

  /// Resets a scenario's baseline (call after retraining its classifiers).
  void recalibrate(fingerprint::Provider provider,
                   fingerprint::Transport transport);

 private:
  struct Sample {
    bool composite;
    double confidence;
  };
  struct Scenario {
    std::deque<Sample> window;
    std::size_t observed = 0;
    // Baseline accumulators (first `calibration` flows after reset).
    std::size_t baseline_n = 0;
    std::size_t baseline_composite = 0;
    double baseline_confidence_sum = 0.0;
  };

  const Scenario* find(fingerprint::Provider provider,
                       fingerprint::Transport transport) const;

  DriftConfig config_;
  std::map<std::pair<int, int>, Scenario> scenarios_;
};

}  // namespace vpscope::pipeline
