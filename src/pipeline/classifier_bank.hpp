// The classifier bank of the paper's Fig. 4: per (provider, transport)
// scenario, three random-forest classifiers predicting the composite user
// platform, the device type (OS) alone, and the software agent alone, plus
// the 80%-confidence composite -> partial -> unknown fallback logic.
//
// Five scenarios exist (YouTube over TCP and QUIC; Netflix, Disney+, Amazon
// over TCP), so the deployed bank holds 15 forests. The paper counts
// "twelve classifiers (three per provider)" because it groups YouTube's two
// transports into one provider bank; the split by transport is explicit
// here since the attribute schema differs (42 vs 50 attributes).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/encoder.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/forest.hpp"
#include "obs/span.hpp"
#include "obs/timer.hpp"
#include "synth/dataset.hpp"
#include "telemetry/telemetry.hpp"

namespace vpscope::pipeline {

/// One flow's classification result.
struct PlatformPrediction {
  telemetry::Outcome outcome = telemetry::Outcome::Unknown;
  std::optional<fingerprint::PlatformId> platform;
  std::optional<fingerprint::Os> device;
  std::optional<fingerprint::Agent> agent;
  double platform_confidence = 0.0;
  double device_confidence = 0.0;
  double agent_confidence = 0.0;
};

/// The three prediction objectives per scenario.
enum class Objective : std::uint8_t { UserPlatform, DeviceType, SoftwareAgent };

struct BankParams {
  /// Deployment forest configuration. Mild regularization (min split size,
  /// wider per-split feature sampling) keeps the forest from memorizing the
  /// per-flow GREASE/extension-order noise in the attribute vectors, which
  /// is what makes predict_proba calibrated enough for the paper's
  /// 80%-confidence gate to behave as described (correct predictions
  /// confident, errors unsure).
  ml::ForestParams forest{.n_trees = 60,
                          .max_depth = 20,
                          .min_samples_split = 6,
                          .max_features = 40,
                          .bootstrap = true,
                          .seed = 1};
  double confidence_threshold = 0.8;  // the paper's 80% gate
};

class ClassifierBank {
 public:
  /// Trains all scenario banks from a labeled dataset (typically the lab
  /// dataset). Scenarios with no training flows are left untrained and
  /// classify everything as Unknown.
  void train(const synth::Dataset& dataset, const BankParams& params = {});

  bool trained(fingerprint::Provider provider,
               fingerprint::Transport transport) const;

  /// Full Fig. 4 logic: composite prediction, fallback to per-objective
  /// predictions under the confidence threshold, Unknown rejection.
  /// `profiler`/`slot` optionally record the Encode and Classify stage
  /// latencies (obs::StageProfiler); null costs nothing. `spans` optionally
  /// records causal Encode/Classify spans for a sampled flow (DESIGN.md
  /// §5k); null costs one branch per stage.
  PlatformPrediction classify(const core::FlowHandshake& handshake,
                              fingerprint::Provider provider,
                              obs::StageProfiler* profiler = nullptr,
                              int slot = 0,
                              obs::SpanScratch* spans = nullptr) const;

  /// Raw access to one scenario's forest + encoder (evaluation harness use).
  struct Scenario {
    core::FeatureEncoder encoder{fingerprint::Transport::Tcp};
    ml::RandomForest platform_model;
    ml::RandomForest device_model;
    ml::RandomForest agent_model;
    /// Inference-time compiled forms of the three forests; classify() only
    /// ever touches these (the uncompiled models stay available for the
    /// evaluation harness and for re-compilation after reload).
    ml::CompiledForest platform_compiled;
    ml::CompiledForest device_compiled;
    ml::CompiledForest agent_compiled;
    /// Class label -> PlatformId for the composite model.
    std::vector<fingerprint::PlatformId> platform_classes;
    /// Class label -> Os / Agent for the partial models.
    std::vector<fingerprint::Os> device_classes;
    std::vector<fingerprint::Agent> agent_classes;
  };
  const Scenario* scenario(fingerprint::Provider provider,
                           fingerprint::Transport transport) const;

  /// Installs one trained scenario (the bundle load path — DESIGN.md §5j);
  /// replaces any existing scenario for the key and (re)compiles the three
  /// forests. Never call on a bank that is being read concurrently — build
  /// a fresh bank and publish it through ModelLifecycle instead.
  void install_scenario(fingerprint::Provider provider,
                        fingerprint::Transport transport, Scenario scenario);

  /// The trained (provider, transport) keys in deterministic (map) order —
  /// the iteration order bank serialization uses.
  std::vector<std::pair<fingerprint::Provider, fingerprint::Transport>>
  scenario_keys() const;

  double confidence_threshold() const { return threshold_; }
  /// Same concurrency caveat as install_scenario.
  void set_confidence_threshold(double threshold) { threshold_ = threshold; }

  /// Deferred cross-flow classification (DESIGN.md §5g): ready flows are
  /// encoded immediately (into per-scenario row-major feature matrices —
  /// scenarios differ in encoder dimension) but the forest descents run
  /// later, across all staged flows at once, through
  /// CompiledForest::predict_with_confidence_batch. Per flow the outcome is
  /// bit-identical to classify(); the win is the batched descent. One
  /// instance per pipeline (not thread-safe); `bank` must outlive it.
  class ClassifyBatch {
   public:
    explicit ClassifyBatch(const ClassifierBank* bank) : bank_(bank) {}

    /// Encodes and stages one completed handshake under an opaque `cookie`
    /// the caller uses to route the result. Returns false (stages nothing)
    /// for an untrained scenario — the caller falls back to the inline
    /// path. `profiler`/`slot` time the Encode stage like classify() does;
    /// `spans` records the flow's Encode span (its Classify span is
    /// recorded by the caller when the batch resolves).
    bool add(const core::FlowHandshake& handshake,
             fingerprint::Provider provider, std::uint64_t cookie,
             obs::StageProfiler* profiler = nullptr, int slot = 0,
             obs::SpanScratch* spans = nullptr);

    /// Resolves every staged flow, invoking `emit(cookie, prediction)` in
    /// staging order per scenario, then clears the staging (buckets keep
    /// their capacity — steady state allocates nothing).
    void classify(
        const std::function<void(std::uint64_t, const PlatformPrediction&)>&
            emit);

    std::size_t size() const { return staged_; }
    bool empty() const { return staged_ == 0; }

   private:
    struct Bucket {
      const Scenario* scenario = nullptr;
      std::vector<double> matrix;  // staged rows x encoder dimension
      std::vector<std::uint64_t> cookies;
    };
    Bucket& bucket_for(const Scenario* scenario);

    const ClassifierBank* bank_;
    std::vector<Bucket> buckets_;  // one per scenario seen, linear scan
    std::size_t staged_ = 0;
    // Reused scratch: encoder raw attributes, forest batch staging, the
    // per-bucket label/confidence rows and the low-confidence sub-batch.
    core::RawAttrs raw_;
    ml::CompiledForest::BatchScratch forest_;
    std::vector<int> labels_;
    std::vector<double> confidences_;
    std::vector<double> sub_matrix_;
    std::vector<std::size_t> sub_rows_;
    std::vector<int> device_labels_, agent_labels_;
    std::vector<double> device_confidences_, agent_confidences_;
  };

 private:
  std::map<std::pair<int, int>, Scenario> scenarios_;
  double threshold_ = 0.8;
};

}  // namespace vpscope::pipeline
