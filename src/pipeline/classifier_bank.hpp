// The classifier bank of the paper's Fig. 4: per (provider, transport)
// scenario, three random-forest classifiers predicting the composite user
// platform, the device type (OS) alone, and the software agent alone, plus
// the 80%-confidence composite -> partial -> unknown fallback logic.
//
// Five scenarios exist (YouTube over TCP and QUIC; Netflix, Disney+, Amazon
// over TCP), so the deployed bank holds 15 forests. The paper counts
// "twelve classifiers (three per provider)" because it groups YouTube's two
// transports into one provider bank; the split by transport is explicit
// here since the attribute schema differs (42 vs 50 attributes).
#pragma once

#include <map>
#include <optional>

#include "core/encoder.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/forest.hpp"
#include "obs/timer.hpp"
#include "synth/dataset.hpp"
#include "telemetry/telemetry.hpp"

namespace vpscope::pipeline {

/// One flow's classification result.
struct PlatformPrediction {
  telemetry::Outcome outcome = telemetry::Outcome::Unknown;
  std::optional<fingerprint::PlatformId> platform;
  std::optional<fingerprint::Os> device;
  std::optional<fingerprint::Agent> agent;
  double platform_confidence = 0.0;
  double device_confidence = 0.0;
  double agent_confidence = 0.0;
};

/// The three prediction objectives per scenario.
enum class Objective : std::uint8_t { UserPlatform, DeviceType, SoftwareAgent };

struct BankParams {
  /// Deployment forest configuration. Mild regularization (min split size,
  /// wider per-split feature sampling) keeps the forest from memorizing the
  /// per-flow GREASE/extension-order noise in the attribute vectors, which
  /// is what makes predict_proba calibrated enough for the paper's
  /// 80%-confidence gate to behave as described (correct predictions
  /// confident, errors unsure).
  ml::ForestParams forest{.n_trees = 60,
                          .max_depth = 20,
                          .min_samples_split = 6,
                          .max_features = 40,
                          .bootstrap = true,
                          .seed = 1};
  double confidence_threshold = 0.8;  // the paper's 80% gate
};

class ClassifierBank {
 public:
  /// Trains all scenario banks from a labeled dataset (typically the lab
  /// dataset). Scenarios with no training flows are left untrained and
  /// classify everything as Unknown.
  void train(const synth::Dataset& dataset, const BankParams& params = {});

  bool trained(fingerprint::Provider provider,
               fingerprint::Transport transport) const;

  /// Full Fig. 4 logic: composite prediction, fallback to per-objective
  /// predictions under the confidence threshold, Unknown rejection.
  /// `profiler`/`slot` optionally record the Encode and Classify stage
  /// latencies (obs::StageProfiler); null costs nothing.
  PlatformPrediction classify(const core::FlowHandshake& handshake,
                              fingerprint::Provider provider,
                              obs::StageProfiler* profiler = nullptr,
                              int slot = 0) const;

  /// Raw access to one scenario's forest + encoder (evaluation harness use).
  struct Scenario {
    core::FeatureEncoder encoder{fingerprint::Transport::Tcp};
    ml::RandomForest platform_model;
    ml::RandomForest device_model;
    ml::RandomForest agent_model;
    /// Inference-time compiled forms of the three forests; classify() only
    /// ever touches these (the uncompiled models stay available for the
    /// evaluation harness and for re-compilation after reload).
    ml::CompiledForest platform_compiled;
    ml::CompiledForest device_compiled;
    ml::CompiledForest agent_compiled;
    /// Class label -> PlatformId for the composite model.
    std::vector<fingerprint::PlatformId> platform_classes;
    /// Class label -> Os / Agent for the partial models.
    std::vector<fingerprint::Os> device_classes;
    std::vector<fingerprint::Agent> agent_classes;
  };
  const Scenario* scenario(fingerprint::Provider provider,
                           fingerprint::Transport transport) const;

  double confidence_threshold() const { return threshold_; }

 private:
  std::map<std::pair<int, int>, Scenario> scenarios_;
  double threshold_ = 0.8;
};

}  // namespace vpscope::pipeline
