// The end-to-end packet processing pipeline of the paper's Fig. 4:
//
//   raw packets -> flow table (NAT-safe bidirectional 5-tuple)
//     -> video-flow detection (TCP/UDP 443 + SNI suffix match)
//     -> handshake/payload split
//     -> attribute generation -> classifier bank (+ confidence logic)
//     -> per-flow telemetry -> session store
//
// Payload packets only update telemetry counters; classification happens
// once per flow, as soon as the handshake completes — before any video
// content is delivered, matching the paper's "real-time" claim.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/handshake.hpp"
#include "pipeline/classifier_bank.hpp"
#include "pipeline/drift.hpp"
#include "telemetry/telemetry.hpp"

namespace vpscope::pipeline {

/// Maps an SNI to a video provider by suffix (the paper's preprocessing
/// uses "port numbers and service names ... and ClientHello SNIs").
/// DNS hostnames are case-insensitive, so the match ignores ASCII case.
std::optional<fingerprint::Provider> provider_from_sni(std::string_view sni);

struct PipelineStats {
  std::uint64_t packets_total = 0;
  std::uint64_t packets_non_ip = 0;
  std::uint64_t flows_total = 0;
  std::uint64_t video_flows = 0;
  std::uint64_t classified_composite = 0;
  std::uint64_t classified_partial = 0;
  std::uint64_t classified_unknown = 0;

  bool operator==(const PipelineStats&) const = default;
  /// Field-wise accumulation (merging per-shard stats).
  PipelineStats& operator+=(const PipelineStats& other);
};

class VideoFlowPipeline {
 public:
  /// The bank must outlive the pipeline.
  explicit VideoFlowPipeline(const ClassifierBank* bank) : bank_(bank) {}

  /// Called for every finished video session (flow idle-timeout or flush).
  void set_sink(std::function<void(telemetry::SessionRecord)> sink) {
    sink_ = std::move(sink);
  }

  /// Optional concept-drift monitor (paper §5.3), fed at classification
  /// time. Must outlive the pipeline.
  void set_drift_monitor(DriftMonitor* monitor) { drift_ = monitor; }

  /// Feeds one captured packet.
  void on_packet(const net::Packet& packet);

  /// Feeds an already-decoded packet (the sharded front-end decodes once at
  /// dispatch time). Does NOT bump packets_total/packets_non_ip — the caller
  /// that performed the decode accounts for those.
  void on_decoded(const net::DecodedPacket& decoded);

  /// Decimated payload ingestion for large-scale simulation: accounts
  /// `bytes` of downstream volume to an existing flow without materializing
  /// every data packet (the paper's DPDK preprocessing similarly splits
  /// payload packets off into telemetry counters).
  void on_volume_sample(const net::FlowKey& key, std::uint64_t ts_us,
                        std::uint64_t bytes_down, std::uint64_t bytes_up);

  /// Evicts flows idle longer than `idle_timeout_us`, emitting their
  /// session records.
  void flush_idle(std::uint64_t now_us, std::uint64_t idle_timeout_us);

  /// Flushes everything (end of capture).
  void flush_all();

  const PipelineStats& stats() const { return stats_; }
  std::size_t active_flows() const { return flows_.size(); }

 private:
  struct FlowState {
    core::HandshakeExtractor extractor;
    telemetry::FlowCounters counters;
    std::optional<net::IpAddr> client_addr;
    std::uint16_t client_port = 0;
    std::optional<fingerprint::Provider> provider;
    std::optional<PlatformPrediction> prediction;
    fingerprint::Transport transport = fingerprint::Transport::Tcp;
    std::string sni;
    bool video_counted = false;
  };

  void finalize(const net::FlowKey& key, FlowState& state);

  const ClassifierBank* bank_;
  DriftMonitor* drift_ = nullptr;
  std::function<void(telemetry::SessionRecord)> sink_;
  std::unordered_map<net::FlowKey, FlowState, net::FlowKeyHash> flows_;
  PipelineStats stats_;
};

}  // namespace vpscope::pipeline
