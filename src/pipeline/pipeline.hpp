// The end-to-end packet processing pipeline of the paper's Fig. 4:
//
//   raw packets -> flow table (NAT-safe bidirectional 5-tuple)
//     -> video-flow detection (TCP/UDP 443 + SNI suffix match)
//     -> handshake/payload split
//     -> attribute generation -> classifier bank (+ confidence logic)
//     -> per-flow telemetry -> session store
//
// Payload packets only update telemetry counters; classification happens
// once per flow, as soon as the handshake completes — before any video
// content is delivered, matching the paper's "real-time" claim.
#pragma once

#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/handshake.hpp"
#include "obs/pipeline_obs.hpp"
#include "pipeline/classifier_bank.hpp"
#include "pipeline/drift.hpp"
#include "pipeline/model_lifecycle.hpp"
#include "telemetry/telemetry.hpp"

namespace vpscope::pipeline {

/// Maps an SNI to a video provider by suffix (the paper's preprocessing
/// uses "port numbers and service names ... and ClientHello SNIs").
/// DNS hostnames are case-insensitive, so the match ignores ASCII case.
std::optional<fingerprint::Provider> provider_from_sni(std::string_view sni);

struct PipelineStats {
  std::uint64_t packets_total = 0;
  std::uint64_t packets_non_ip = 0;
  std::uint64_t flows_total = 0;
  std::uint64_t video_flows = 0;
  std::uint64_t classified_composite = 0;
  std::uint64_t classified_partial = 0;
  std::uint64_t classified_unknown = 0;

  // ---- overload-control accounting (DESIGN.md §5e) ----
  // The drop-accounting identity every configuration must satisfy:
  //
  //   packets_total == packets_processed
  //                  + packets_dropped_payload + packets_dropped_handshake
  //                  + packets_stranded
  //
  // A single-threaded pipeline never drops or strands, so there
  // processed == total. `packets_stranded` counts packets enqueued to a
  // shard the watchdog has since declared stuck — neither processed nor
  // shed yet; it returns to zero if the shard recovers and drains.
  std::uint64_t packets_processed = 0;
  std::uint64_t packets_dropped_payload = 0;
  std::uint64_t packets_dropped_handshake = 0;
  std::uint64_t packets_stranded = 0;
  /// Decimated volume samples shed under overload (not packets; excluded
  /// from the identity above).
  std::uint64_t volume_samples_dropped = 0;
  /// Flows evicted (or refused) because the flow table hit max_flows.
  std::uint64_t flows_evicted_capacity = 0;
  /// Session-sink invocations that threw; the record is lost but the
  /// pipeline (and in the sharded case, the worker thread) survives.
  std::uint64_t sink_errors = 0;
  /// Exceptions contained by a shard worker outside the sink path.
  std::uint64_t worker_errors = 0;
  /// Shards currently flipped into telemetry-only bypass by the watchdog.
  std::uint64_t shards_bypassed = 0;

  bool operator==(const PipelineStats&) const = default;
  /// Field-wise accumulation (merging per-shard stats).
  PipelineStats& operator+=(const PipelineStats& other);
};

/// Overload policy of one flow table (per shard in the sharded front-end).
struct PipelineOptions {
  /// Upper bound on concurrent tracked flows; 0 = unbounded (the paper's
  /// lab setting). Under a handshake flood the table never exceeds this.
  std::size_t max_flows = 0;
  enum class Eviction : std::uint8_t {
    /// Evict the longest-idle flow (intrusive LRU over arrival order) to
    /// make room; its session record leaves through the normal sink path.
    LruIdle,
    /// Keep established flows, refuse to admit new ones while full.
    RejectNew,
  };
  Eviction eviction = Eviction::LruIdle;
  /// Classification batching (DESIGN.md §5g): ready flows are encoded
  /// immediately but their forest descents are deferred until this many are
  /// staged, then resolved in one cross-flow batched descent
  /// (CompiledForest::predict_with_confidence_batch). 1 = classify inline.
  /// Staged flows always resolve before any finalize can observe them
  /// (flush_idle/flush_all/eviction force a flush first), so emitted records
  /// and quiescent stats are identical to the inline path.
  std::size_t classify_batch = 1;
};

class VideoFlowPipeline {
 public:
  /// The bank must outlive the pipeline. `obs_config` enables the optional
  /// observability features (stage profiling, flow tracing) on the
  /// pipeline's own metrics registry; ignored after bind_obs().
  explicit VideoFlowPipeline(const ClassifierBank* bank,
                             PipelineOptions options = {},
                             obs::ObsConfig obs_config = {});
  /// Releases the lifecycle reader slot, if one is attached.
  ~VideoFlowPipeline();

  /// Called for every finished video session (flow idle-timeout or flush).
  void set_sink(std::function<void(telemetry::SessionRecord)> sink) {
    sink_ = std::move(sink);
  }

  /// Optional concept-drift monitor (paper §5.3), fed at classification
  /// time. Must outlive the pipeline.
  void set_drift_monitor(DriftMonitor* monitor) { drift_ = monitor; }

  /// Attaches this pipeline as reader `reader_slot` of a ModelLifecycle
  /// (DESIGN.md §5j): the lifecycle's generations supersede the constructor
  /// bank, hot swaps are adopted at safe points (maybe_adopt_generation),
  /// canary-fraction flows route to the candidate bank, and outcomes feed
  /// the canary scoreboard. The lifecycle must outlive the pipeline; each
  /// reader slot belongs to exactly one pipeline.
  void attach_lifecycle(ModelLifecycle* lifecycle, int reader_slot);

  /// Adopts a newly published model generation, if any: one relaxed load
  /// when nothing changed. Safe point — staged classifications resolve
  /// against the banks that encoded them first. on_packet calls this;
  /// sharded workers call it at batch boundaries and while parked.
  void maybe_adopt_generation();

  /// Feeds one captured packet. The rvalue form exists so generic
  /// front-ends (capture::replay_into) can move-ingest into either pipeline;
  /// this single-threaded pipeline parses in place and never stores the
  /// packet, so it simply forwards.
  void on_packet(const net::Packet& packet);
  void on_packet(net::Packet&& packet) { on_packet(packet); }

  /// Feeds an already-decoded packet (the sharded front-end decodes once at
  /// dispatch time). Does NOT bump packets_total/packets_non_ip — the caller
  /// that performed the decode accounts for those.
  void on_decoded(const net::DecodedPacket& decoded);

  /// Decimated payload ingestion for large-scale simulation: accounts
  /// `bytes` of downstream volume to an existing flow without materializing
  /// every data packet (the paper's DPDK preprocessing similarly splits
  /// payload packets off into telemetry counters).
  void on_volume_sample(const net::FlowKey& key, std::uint64_t ts_us,
                        std::uint64_t bytes_down, std::uint64_t bytes_up);

  /// Evicts flows idle longer than `idle_timeout_us`, emitting their
  /// session records.
  void flush_idle(std::uint64_t now_us, std::uint64_t idle_timeout_us);

  /// Flushes everything (end of capture).
  void flush_all();

  /// Resolves every staged-but-unclassified flow now (no-op when
  /// classify_batch <= 1 or nothing is staged). The sharded front-end calls
  /// this at batch boundaries and before a worker parks; flush_idle /
  /// flush_all / capacity eviction call it implicitly.
  void classify_pending_flush();

  /// Causal parent for the NEXT packet's span chain: the sharded worker
  /// records the Queue span for a sampled packet and hands its id here
  /// before on_decoded, so the flow's Extract/Encode/Classify spans parent
  /// onto the cross-thread dispatch chain. Consumed (reset to 0) by the
  /// next on_decoded.
  void set_packet_span_parent(std::uint64_t span_id) {
    packet_span_parent_ = span_id;
  }

  /// Re-points this pipeline's metrics at a shared PipelineObs, writing at
  /// `slot` (the sharded front-end binds each shard's pipeline to one
  /// registry, slot = shard index). Call before the first packet; `obs`
  /// must outlive the pipeline.
  void bind_obs(obs::PipelineObs* obs, int slot);

  /// The metrics registry bundle this pipeline writes to (its own unless
  /// bind_obs re-pointed it).
  obs::PipelineObs& observability() { return *obs_; }
  const obs::PipelineObs& observability() const { return *obs_; }
  /// Shared handle to the OWNED bundle, for callers that need the metrics
  /// to outlive the pipeline (e.g. the campus simulator's post-run report);
  /// null after bind_obs.
  std::shared_ptr<obs::PipelineObs> shared_observability() const {
    return owned_obs_;
  }

  /// Assembled from this pipeline's registry slot. Returned by value (the
  /// counters live in the registry now); `const auto&` callers still work
  /// through lifetime extension.
  PipelineStats stats() const;
  std::size_t active_flows() const { return flows_.size(); }

 private:
  struct FlowState {
    core::HandshakeExtractor extractor;
    telemetry::FlowCounters counters;
    std::optional<net::IpAddr> client_addr;
    std::uint16_t client_port = 0;
    std::optional<fingerprint::Provider> provider;
    std::optional<PlatformPrediction> prediction;
    /// Staged in the deferred-classification batch, descent not yet run.
    bool classify_pending = false;
    /// This flow's classification was served by the canary bank.
    bool canary_routed = false;
    fingerprint::Transport transport = fingerprint::Transport::Tcp;
    std::string sni;
    bool video_counted = false;
    /// Position in lru_; only maintained when options_.max_flows > 0.
    std::list<net::FlowKey>::iterator lru_it;
    /// FlowKeyHash of the key; only computed when tracing is enabled.
    std::uint64_t flow_hash = 0;
    /// Deterministic 1-in-N sampling decision for this flow.
    bool traced = false;
    /// Causal span sampling decision (DESIGN.md §5k); independent of the
    /// flow-event trace above.
    bool span_traced = false;
    /// Most recent span recorded for this flow — the parent the next stage
    /// (or the final Sink span) chains from.
    std::uint64_t span_last = 0;
  };

  using FlowMap = std::unordered_map<net::FlowKey, FlowState, net::FlowKeyHash>;

  void finalize(const net::FlowKey& key, FlowState& state);
  /// Outcome counters, trace event, drift feed, state.prediction store —
  /// shared tail of the inline and deferred classification paths.
  void apply_prediction(FlowState& state, const PlatformPrediction& prediction,
                        std::uint64_t ts_us);
  /// Admission control after try_emplace: touches the LRU and, when the
  /// table exceeds max_flows, evicts the longest-idle flow (or the
  /// just-admitted one under RejectNew). Returns false when `it` itself was
  /// rejected and erased. `ts_us` stamps the trace events this may emit.
  bool admit_flow(FlowMap::iterator it, bool inserted, std::uint64_t ts_us);
  void touch_lru(FlowState& state);
  void trace_push(obs::TraceEventKind kind, std::uint64_t ts_us,
                  const FlowState& state);
  /// Keeps the vpscope_flows_active gauge in sync after table mutations.
  void sync_flows_active() {
    obs_->flows_active.set(slot_,
                           static_cast<std::int64_t>(flows_.size()));
  }

  /// Installs `generation` as the serving model state: re-points bank_,
  /// rebuilds the batch stagers, and recalibrates drift baselines when the
  /// stable model identity changed.
  void apply_generation(const ModelLifecycle::Generation* generation);

  const ClassifierBank* bank_;
  PipelineOptions options_;
  /// Engaged when options_.classify_batch > 1 and a bank exists; cookies
  /// handed to it are indices into pending_.
  std::optional<ClassifierBank::ClassifyBatch> batch_;
  /// Stager for canary-routed flows while a rollout is active (the two
  /// banks have distinct Scenario tables; a ClassifyBatch caches Scenario
  /// pointers, so each bank needs its own). Shares pending_ cookies.
  std::optional<ClassifierBank::ClassifyBatch> canary_batch_;
  ModelLifecycle* lifecycle_ = nullptr;
  int reader_slot_ = 0;
  /// The adopted generation (pinned via reader_slot_); null when detached.
  const ModelLifecycle::Generation* generation_ = nullptr;
  /// Cached copy of generation_->model_gen. The moment acquire() advances
  /// this reader's epoch, the *previous* generation becomes reclaimable, so
  /// apply_generation must not dereference the old pointer to ask what
  /// model it carried — it compares against this plain member instead.
  std::uint64_t adopted_model_gen_ = 0;
  struct PendingFlow {
    net::FlowKey key;
    std::uint64_t ts_us = 0;  // staging time, stamps the trace event
    /// Parent for the flow's deferred Classify span (its Encode span id).
    std::uint64_t span_parent = 0;
  };
  std::vector<PendingFlow> pending_;
  DriftMonitor* drift_ = nullptr;
  std::function<void(telemetry::SessionRecord)> sink_;
  FlowMap flows_;
  /// Least-recently-touched flow at the front; empty when unbounded.
  std::list<net::FlowKey> lru_;
  /// Owned registry bundle for the standalone case; the sharded front-end
  /// re-points obs_ at its shared bundle via bind_obs().
  std::shared_ptr<obs::PipelineObs> owned_obs_;
  obs::PipelineObs* obs_ = nullptr;
  obs::TraceRing* ring_ = nullptr;      // cached obs_->ring(slot_)
  obs::SpanRing* span_ring_ = nullptr;  // cached obs_->span_ring(slot_)
  /// Reused per-packet span context for sampled flows (one flow is
  /// processed at a time on this pipeline's thread).
  obs::SpanScratch span_scratch_;
  /// See set_packet_span_parent.
  std::uint64_t packet_span_parent_ = 0;
  int slot_ = 0;
};

}  // namespace vpscope::pipeline
