#include "pipeline/model_lifecycle.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <thread>

#include <dirent.h>
#include <sys/stat.h>

#include "core/handshake.hpp"
#include "fingerprint/profiles.hpp"
#include "pipeline/bank_serialize.hpp"
#include "pipeline/faultpoint.hpp"
#include "synth/flow_synthesizer.hpp"
#include "util/rng.hpp"

namespace vpscope::pipeline {

namespace {

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  return slash == 0 ? "/" : path.substr(0, slash);
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

const char* to_string(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::Armed:
      return "Armed";
    case AdmissionVerdict::ReadFailed:
      return "ReadFailed";
    case AdmissionVerdict::BadFormat:
      return "BadFormat";
    case AdmissionVerdict::Incompatible:
      return "Incompatible";
    case AdmissionVerdict::SmokeFailed:
      return "SmokeFailed";
    case AdmissionVerdict::Busy:
      return "Busy";
  }
  return "?";
}

ModelLifecycle::ModelLifecycle(std::shared_ptr<const ClassifierBank> initial,
                               int n_reader_slots, LifecycleOptions options)
    : options_(options),
      n_slots_(n_reader_slots),
      slots_(static_cast<std::size_t>(n_reader_slots)),
      smoke_check_([](const ClassifierBank& bank, std::string* why) {
        return synth_smoke_check(bank, why);
      }) {
  auto first = std::make_unique<Generation>();
  first->gen = ++next_gen_;
  first->model_gen = 1;
  first->stable = std::move(initial);
  active_.store(first.get(), std::memory_order_seq_cst);
  history_.push_back(std::move(first));
}

ModelLifecycle::~ModelLifecycle() = default;

const ModelLifecycle::Generation* ModelLifecycle::acquire(int slot) {
  auto& epoch = slots_[static_cast<std::size_t>(slot)].epoch;
  // Store-then-recheck: after the epoch store, either the collector's scan
  // observes it (and keeps this generation alive), or the recheck observes
  // a newer active pointer and retries. Both loads and the store are
  // seq_cst so the two orders cannot disagree (classic Dekker handshake
  // with collect()'s slot scan).
  for (;;) {
    Generation* g = active_.load(std::memory_order_seq_cst);
    epoch.store(g->gen, std::memory_order_seq_cst);
    if (active_.load(std::memory_order_seq_cst) == g) return g;
  }
}

void ModelLifecycle::release(int slot) {
  slots_[static_cast<std::size_t>(slot)].epoch.store(
      kQuiescent, std::memory_order_seq_cst);
}

void ModelLifecycle::record_outcome(int slot, bool canary_route,
                                    telemetry::Outcome outcome,
                                    double confidence) {
  auto& cells =
      slots_[static_cast<std::size_t>(slot)].cells[canary_route ? 1 : 0];
  cells.flows.fetch_add(1, std::memory_order_relaxed);
  if (outcome == telemetry::Outcome::Composite) {
    cells.composite.fetch_add(1, std::memory_order_relaxed);
    cells.confidence_milli.fetch_add(
        static_cast<std::uint64_t>(confidence * 1000.0 + 0.5),
        std::memory_order_relaxed);
  }
}

void ModelLifecycle::publish(std::unique_ptr<Generation> next) {
  next->gen = ++next_gen_;
  // If this throws, `next` is destroyed and the previous generation keeps
  // serving — the swap never becomes visible half-done.
  VPSCOPE_FAULTPOINT(fault::Point::LifecycleSwap);
  Generation* raw = next.get();
  history_.push_back(std::move(next));
  active_.store(raw, std::memory_order_seq_cst);
  ++swaps_;
}

void ModelLifecycle::swap_to(std::shared_ptr<const ClassifierBank> bank) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto next = std::make_unique<Generation>();
  next->model_gen = history_.back()->model_gen + 1;
  next->stable = std::move(bank);
  publish(std::move(next));
  collect_locked();
  sync_obs_locked();
}

AdmissionVerdict ModelLifecycle::offer_bytes(ByteView data, std::string* why) {
  // Validation runs outside the control mutex: parsing a multi-megabyte
  // artifact must not block poll()/status() on another control thread.
  std::optional<ClassifierBank> bank;
  AdmissionVerdict verdict = AdmissionVerdict::Armed;
  try {
    VPSCOPE_FAULTPOINT(fault::Point::LifecycleValidate);
    bank = deserialize_bank(data, why);
    if (!bank) verdict = AdmissionVerdict::BadFormat;
  } catch (...) {
    if (why) *why = "validation fault";
    verdict = AdmissionVerdict::Incompatible;
  }
  if (verdict == AdmissionVerdict::Armed && smoke_check_ &&
      !smoke_check_(*bank, why))
    verdict = AdmissionVerdict::SmokeFailed;

  std::lock_guard<std::mutex> lock(mutex_);
  ++offers_;
  if (verdict != AdmissionVerdict::Armed) {
    ++quarantined_;
    sync_obs_locked();
    return verdict;
  }

  if (history_.back()->canary) {
    if (why) *why = "a canary rollout is already in flight";
    sync_obs_locked();
    return AdmissionVerdict::Busy;
  }
  auto shared = std::make_shared<const ClassifierBank>(std::move(*bank));
  auto next = std::make_unique<Generation>();
  const Generation& cur = *history_.back();
  if (options_.canary_permille <= 0) {
    // Staged rollout disabled: admitted means stable.
    next->model_gen = cur.model_gen + 1;
    next->stable = std::move(shared);
    publish(std::move(next));
    collect_locked();
    sync_obs_locked();
    return AdmissionVerdict::Armed;
  }
  // Every reader must be on the current generation before the scoreboard
  // resets, or a straggler still serving an older bank would pollute the
  // canary's outcome cells.
  if (!wait_all_adopted_locked(500'000)) {
    if (why) *why = "readers did not quiesce onto the current generation";
    sync_obs_locked();
    return AdmissionVerdict::Busy;
  }
  reset_cells();
  next->model_gen = cur.model_gen;
  next->stable = cur.stable;
  next->canary = std::move(shared);
  next->canary_permille = std::min(options_.canary_permille, 1000);
  publish(std::move(next));
  collect_locked();
  sync_obs_locked();
  return AdmissionVerdict::Armed;
}

AdmissionVerdict ModelLifecycle::offer_file(const std::string& path,
                                            std::string* why) {
  Bytes data;
  bool read_ok = false;
  const int attempts = std::max(1, options_.admission_retries);
  for (int attempt = 0; attempt < attempts && !read_ok; ++attempt) {
    if (attempt > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(
          options_.retry_backoff_us << (attempt - 1)));
    try {
      // A publisher mid-rename (or a flaky network filesystem) presents as
      // a transient read failure; retry with backoff before giving up.
      VPSCOPE_FAULTPOINT(fault::Point::LifecycleLoad);
      std::ifstream file(path, std::ios::binary);
      if (!file) continue;
      data.assign(std::istreambuf_iterator<char>(file),
                  std::istreambuf_iterator<char>());
      if (!file.bad()) read_ok = true;
    } catch (...) {
    }
  }
  if (!read_ok) {
    if (why) *why = "cannot read " + path;
    std::lock_guard<std::mutex> lock(mutex_);
    ++offers_;
    sync_obs_locked();
    return AdmissionVerdict::ReadFailed;
  }

  const AdmissionVerdict verdict = offer_bytes(data, why);
  if (verdict == AdmissionVerdict::BadFormat ||
      verdict == AdmissionVerdict::Incompatible ||
      verdict == AdmissionVerdict::SmokeFailed) {
    if (options_.quarantine_files) quarantine_file(path);
  } else if (verdict == AdmissionVerdict::Armed) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (history_.back()->canary) canary_source_path_ = path;
  }
  return verdict;
}

ModelLifecycle::Decision ModelLifecycle::poll() {
  std::lock_guard<std::mutex> lock(mutex_);
  Decision decision = Decision::None;
  const Generation& cur = *history_.back();
  if (cur.canary) {
    const RouteTotals stable = sum_route(0);
    const RouteTotals canary = sum_route(1);
    if (stable.flows >= options_.stable_min_flows &&
        canary.flows >= options_.canary_min_flows) {
      const double stable_reject =
          1.0 - static_cast<double>(stable.composite) /
                    static_cast<double>(stable.flows);
      const double canary_reject =
          1.0 - static_cast<double>(canary.composite) /
                    static_cast<double>(canary.flows);
      bool reject = canary_reject > stable_reject + options_.reject_margin;
      if (!reject && canary.composite > 0 && stable.composite > 0) {
        const double stable_conf =
            static_cast<double>(stable.confidence_milli) / 1000.0 /
            static_cast<double>(stable.composite);
        const double canary_conf =
            static_cast<double>(canary.confidence_milli) / 1000.0 /
            static_cast<double>(canary.composite);
        if (canary_conf < stable_conf - options_.confidence_margin)
          reject = true;
      }
      auto next = std::make_unique<Generation>();
      if (reject) {
        next->model_gen = cur.model_gen;  // identity unchanged: same stable
        next->stable = cur.stable;
        ++rollbacks_;
        ++quarantined_;
        if (!canary_source_path_.empty() && options_.quarantine_files)
          quarantine_file(canary_source_path_);
        decision = Decision::RolledBack;
      } else {
        next->model_gen = cur.model_gen + 1;
        next->stable = cur.canary;
        ++promotions_;
        decision = Decision::Promoted;
      }
      canary_source_path_.clear();
      publish(std::move(next));
    }
  }
  collect_locked();
  sync_obs_locked();
  return decision;
}

bool ModelLifecycle::wait_all_adopted(std::uint64_t timeout_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  return wait_all_adopted_locked(timeout_us);
}

bool ModelLifecycle::wait_all_adopted_locked(std::uint64_t timeout_us) {
  const std::uint64_t deadline = steady_now_us() + timeout_us;
  const std::uint64_t current = history_.back()->gen;
  for (;;) {
    bool all = true;
    for (const ReaderSlot& slot : slots_) {
      const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e != kQuiescent && e != current) {
        all = false;
        break;
      }
    }
    if (all) return true;
    if (steady_now_us() >= deadline) return false;
    std::this_thread::yield();
  }
}

std::size_t ModelLifecycle::collect() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t freed = collect_locked();
  sync_obs_locked();
  return freed;
}

std::size_t ModelLifecycle::collect_locked() {
  std::size_t freed = 0;
  while (history_.size() > 1) {
    const Generation* front = history_.front().get();
    bool retirable = true;
    for (const ReaderSlot& slot : slots_) {
      const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e != kQuiescent && e <= front->gen) {
        retirable = false;
        break;
      }
    }
    if (!retirable) break;
    VPSCOPE_FAULTPOINT(fault::Point::LifecycleRetire);
    history_.erase(history_.begin());
    ++freed;
  }
  return freed;
}

ModelLifecycle::RouteTotals ModelLifecycle::sum_route(int route) const {
  RouteTotals totals;
  for (const ReaderSlot& slot : slots_) {
    const auto& cells = slot.cells[route];
    totals.flows += cells.flows.load(std::memory_order_relaxed);
    totals.composite += cells.composite.load(std::memory_order_relaxed);
    totals.confidence_milli +=
        cells.confidence_milli.load(std::memory_order_relaxed);
  }
  return totals;
}

void ModelLifecycle::reset_cells() {
  for (ReaderSlot& slot : slots_)
    for (auto& cells : slot.cells) {
      cells.flows.store(0, std::memory_order_relaxed);
      cells.composite.store(0, std::memory_order_relaxed);
      cells.confidence_milli.store(0, std::memory_order_relaxed);
    }
}

void ModelLifecycle::quarantine_file(const std::string& path) {
  const std::string qdir = dirname_of(path) + "/quarantine";
  ::mkdir(qdir.c_str(), 0755);  // EEXIST is fine
  const std::string target = qdir + "/" + basename_of(path);
  std::rename(path.c_str(), target.c_str());  // best effort
}

ModelLifecycle::Status ModelLifecycle::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Generation& cur = *history_.back();
  Status s;
  s.generation = cur.gen;
  s.model_generation = cur.model_gen;
  s.canary_active = cur.canary != nullptr;
  s.canary_permille = cur.canary_permille;
  s.generations_retained = history_.size();
  s.swaps = swaps_;
  s.promotions = promotions_;
  s.rollbacks = rollbacks_;
  s.offers = offers_;
  s.quarantined = quarantined_;
  s.stable_flows = sum_route(0).flows;
  s.canary_flows = sum_route(1).flows;
  return s;
}

void ModelLifecycle::set_smoke_check(SmokeCheck check) {
  std::lock_guard<std::mutex> lock(mutex_);
  smoke_check_ = std::move(check);
}

bool ModelLifecycle::synth_smoke_check(const ClassifierBank& bank,
                                       std::string* why) {
  Rng rng(777);
  synth::FlowSynthesizer synthesizer(rng);
  for (const auto& [provider, transport] : bank.scenario_keys()) {
    const auto platforms = fingerprint::platforms_for(provider, transport);
    if (platforms.empty()) continue;  // nothing synthesizable to probe with
    for (int i = 0; i < 3; ++i) {
      const auto& platform = platforms[static_cast<std::size_t>(i) %
                                       platforms.size()];
      const auto profile =
          fingerprint::make_profile(platform, provider, transport);
      const auto flow = synthesizer.synthesize(
          profile, {.start_time_us = 1'000'000 * (static_cast<std::uint64_t>(
                                                     i) +
                                                 1)});
      const auto handshake = core::extract_handshake(flow.packets);
      if (!handshake) {
        if (why) *why = "smoke flow did not yield a handshake";
        return false;
      }
      const PlatformPrediction prediction = bank.classify(*handshake, provider);
      // Structural sanity only: no crash above, confidences in range. Label
      // quality is the canary's to judge against live traffic.
      const auto in_range = [](double c) { return c >= 0.0 && c <= 1.0; };
      if (!in_range(prediction.platform_confidence) ||
          !in_range(prediction.device_confidence) ||
          !in_range(prediction.agent_confidence)) {
        if (why) *why = "smoke classification confidence out of range";
        return false;
      }
    }
  }
  return true;
}

void ModelLifecycle::bind_obs(obs::Registry* registry, int slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  registry_ = registry;
  obs_slot_ = slot;
  generation_gauge_ = &registry->gauge("vpscope_model_generation",
                                       "Active model generation (epoch)");
  canary_gauge_ = &registry->gauge("vpscope_model_canary_active",
                                   "1 while a canary rollout is in flight");
  retained_gauge_ =
      &registry->gauge("vpscope_model_generations_retained",
                       "Generations alive (active + awaiting reclamation)");
  swaps_counter_ = &registry->counter("vpscope_model_swaps_total",
                                      "Generation publishes (any cause)");
  promotions_counter_ = &registry->counter(
      "vpscope_model_promotions_total", "Canaries promoted to stable");
  rollbacks_counter_ = &registry->counter(
      "vpscope_model_rollbacks_total", "Canaries rolled back by poll()");
  offers_counter_ = &registry->counter("vpscope_bundle_offers_total",
                                       "Model artifacts offered for admission");
  quarantined_counter_ =
      &registry->counter("vpscope_bundle_quarantined",
                         "Model artifacts rejected at admission or rollback");
  sync_obs_locked();
}

void ModelLifecycle::sync_obs_locked() {
  if (!registry_) return;
  generation_gauge_->set(obs_slot_,
                         static_cast<std::int64_t>(history_.back()->gen));
  canary_gauge_->set(obs_slot_, history_.back()->canary ? 1 : 0);
  retained_gauge_->set(obs_slot_,
                       static_cast<std::int64_t>(history_.size()));
  const auto mirror = [this](obs::Counter* counter, std::uint64_t current,
                             std::uint64_t& mirrored) {
    if (current > mirrored) counter->add(obs_slot_, current - mirrored);
    mirrored = current;
  };
  mirror(swaps_counter_, swaps_, swaps_mirrored_);
  mirror(promotions_counter_, promotions_, promotions_mirrored_);
  mirror(rollbacks_counter_, rollbacks_, rollbacks_mirrored_);
  mirror(offers_counter_, offers_, offers_mirrored_);
  mirror(quarantined_counter_, quarantined_, quarantined_mirrored_);
}

int ModelDirWatcher::poll(std::string* log) {
  DIR* dir = ::opendir(dir_.c_str());
  if (!dir) return 0;
  int offered = 0;
  std::vector<std::string> names;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    // Skip dotfiles, the quarantine subdirectory, and in-flight atomic
    // publishes (*.tmp) — only completed *.vpsb artifacts are candidates.
    if (name.empty() || name[0] == '.') continue;
    if (!ends_with(name, ".vpsb")) continue;
    names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());  // deterministic offer order

  for (const std::string& name : names) {
    const std::string path = dir_ + "/" + name;
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    FileSig sig;
    sig.mtime = static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1'000'000'000 +
                st.st_mtim.tv_nsec;
    sig.size = static_cast<std::uint64_t>(st.st_size);
    const auto it = seen_.find(path);
    if (it != seen_.end() && it->second == sig) continue;

    std::string why;
    const AdmissionVerdict verdict = lifecycle_->offer_file(path, &why);
    ++offered;
    if (log) {
      *log += name;
      *log += ": ";
      *log += to_string(verdict);
      if (!why.empty()) {
        *log += " (";
        *log += why;
        *log += ")";
      }
      *log += "\n";
    }
    // Busy is retried next poll; every other verdict is final for this
    // (path, mtime, size) — quarantined files also moved out of the dir.
    if (verdict != AdmissionVerdict::Busy) seen_[path] = sig;
  }
  return offered;
}

}  // namespace vpscope::pipeline
