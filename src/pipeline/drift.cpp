#include "pipeline/drift.hpp"

#include <algorithm>
#include <string>

namespace vpscope::pipeline {

namespace {

std::pair<int, int> scenario_key(fingerprint::Provider provider,
                                 fingerprint::Transport transport) {
  return {static_cast<int>(provider), static_cast<int>(transport)};
}

std::string scenario_labels(fingerprint::Provider provider,
                            fingerprint::Transport transport) {
  std::string labels = "provider=\"";
  labels += fingerprint::to_string(provider);
  labels += "\",transport=\"";
  labels += fingerprint::to_string(transport);
  labels += "\"";
  return labels;
}

/// Derives the rates and the calibration/drift gates from summed raw
/// accumulators — shared by compute() (one monitor) and merge() (the
/// accumulator sums of many shard monitors). Confidence means are over
/// composite flows only: rejected flows contribute to the reject rate, not
/// to the confidence signal.
void finish(DriftMonitor::Status& status, const DriftConfig& config) {
  status.calibrated = status.baseline_n >= config.calibration;
  if (!status.calibrated || status.baseline_n == 0) return;

  status.baseline_reject_rate =
      1.0 - static_cast<double>(status.baseline_composite) /
                static_cast<double>(status.baseline_n);
  status.baseline_confidence =
      status.baseline_composite
          ? status.baseline_confidence_sum /
                static_cast<double>(status.baseline_composite)
          : 0.0;

  if (status.window_n < config.window / 4)
    return;  // not enough post-calibration traffic to judge

  status.recent_reject_rate =
      1.0 - static_cast<double>(status.window_composite) /
                static_cast<double>(status.window_n);
  status.recent_confidence =
      status.window_composite
          ? status.window_confidence_sum /
                static_cast<double>(status.window_composite)
          : 0.0;

  status.drifting =
      status.recent_reject_rate >
          status.baseline_reject_rate + config.reject_margin ||
      (status.window_composite > 0 &&
       status.recent_confidence <
           status.baseline_confidence - config.confidence_margin);
}

}  // namespace

void DriftMonitor::record(fingerprint::Provider provider,
                          fingerprint::Transport transport,
                          telemetry::Outcome outcome, double confidence,
                          std::uint64_t ts_us) {
  Scenario& scenario = scenarios_[scenario_key(provider, transport)];
  ++scenario.observed;

  // Clamp against non-monotonic capture clocks exactly like flush_idle's
  // idle accounting does: a sample stamped before the newest one this
  // scenario has seen is treated as arriving "now". It can therefore never
  // age the window backwards, wrap the subtraction below, or mass-evict the
  // window on a clock step.
  const std::uint64_t ts = std::max(ts_us, scenario.last_ts_us);
  scenario.last_ts_us = ts;

  const bool composite = outcome == telemetry::Outcome::Composite;
  if (scenario.baseline_n < config_.calibration) {
    ++scenario.baseline_n;
    scenario.baseline_composite += composite;
    if (composite) scenario.baseline_confidence_sum += confidence;
  } else {
    // calibration flows don't enter the sliding window
    scenario.window.push_back({composite, confidence, ts});
    if (scenario.window.size() > config_.window) scenario.window.pop_front();
    if (config_.max_sample_age_us > 0) {
      while (!scenario.window.empty() &&
             ts - scenario.window.front().ts_us > config_.max_sample_age_us)
        scenario.window.pop_front();
    }
  }

  if (registry_ && (scenario.observed & 63) == 0)
    refresh_gauges(provider, transport, scenario);
}

const DriftMonitor::Scenario* DriftMonitor::find(
    fingerprint::Provider provider, fingerprint::Transport transport) const {
  const auto it = scenarios_.find(scenario_key(provider, transport));
  return it == scenarios_.end() ? nullptr : &it->second;
}

DriftMonitor::Status DriftMonitor::compute(const Scenario& scenario) const {
  Status status;
  status.observed = scenario.observed;
  status.baseline_n = scenario.baseline_n;
  status.baseline_composite = scenario.baseline_composite;
  status.baseline_confidence_sum = scenario.baseline_confidence_sum;
  status.window_n = scenario.window.size();
  for (const Sample& sample : scenario.window) {
    if (sample.composite) {
      ++status.window_composite;
      status.window_confidence_sum += sample.confidence;
    }
  }
  finish(status, config_);
  return status;
}

DriftMonitor::Status DriftMonitor::status(
    fingerprint::Provider provider, fingerprint::Transport transport) const {
  const Scenario* scenario = find(provider, transport);
  if (!scenario) return {};
  return compute(*scenario);
}

DriftMonitor::Status DriftMonitor::merge(std::span<const Status> shards,
                                         const DriftConfig& config) {
  Status merged;
  for (const Status& s : shards) {
    merged.observed += s.observed;
    merged.baseline_n += s.baseline_n;
    merged.baseline_composite += s.baseline_composite;
    merged.baseline_confidence_sum += s.baseline_confidence_sum;
    merged.window_n += s.window_n;
    merged.window_composite += s.window_composite;
    merged.window_confidence_sum += s.window_confidence_sum;
  }
  finish(merged, config);
  return merged;
}

bool DriftMonitor::any_drifting() const {
  for (const auto& [key, scenario] : scenarios_)
    if (compute(scenario).drifting) return true;
  return false;
}

std::vector<std::pair<fingerprint::Provider, fingerprint::Transport>>
DriftMonitor::scenario_keys() const {
  std::vector<std::pair<fingerprint::Provider, fingerprint::Transport>> keys;
  keys.reserve(scenarios_.size());
  for (const auto& [key, scenario] : scenarios_)
    keys.emplace_back(static_cast<fingerprint::Provider>(key.first),
                      static_cast<fingerprint::Transport>(key.second));
  return keys;
}

void DriftMonitor::recalibrate(fingerprint::Provider provider,
                               fingerprint::Transport transport) {
  const auto it = scenarios_.find(scenario_key(provider, transport));
  if (it == scenarios_.end()) return;
  Scenario& scenario = it->second;
  scenario.window.clear();
  scenario.baseline_n = 0;
  scenario.baseline_composite = 0;
  scenario.baseline_confidence_sum = 0.0;
  if (registry_) refresh_gauges(provider, transport, scenario);
}

void DriftMonitor::recalibrate_all() {
  for (auto& [key, scenario] : scenarios_) {
    scenario.window.clear();
    scenario.baseline_n = 0;
    scenario.baseline_composite = 0;
    scenario.baseline_confidence_sum = 0.0;
    if (registry_)
      refresh_gauges(static_cast<fingerprint::Provider>(key.first),
                     static_cast<fingerprint::Transport>(key.second), scenario);
  }
}

void DriftMonitor::bind_obs(obs::Registry* registry, int slot) {
  registry_ = registry;
  obs_slot_ = slot;
}

void DriftMonitor::refresh_gauges(fingerprint::Provider provider,
                                  fingerprint::Transport transport,
                                  Scenario& scenario) {
  if (!scenario.flagged_gauge) {
    const std::string labels = scenario_labels(provider, transport);
    scenario.flagged_gauge = &registry_->gauge(
        "vpscope_drift_flagged",
        "1 when the scenario's recent window drifts from its baseline",
        labels);
    scenario.reject_delta_gauge = &registry_->gauge(
        "vpscope_drift_reject_delta_milli",
        "Recent minus baseline non-composite rate, in 1/1000", labels);
    scenario.confidence_delta_gauge = &registry_->gauge(
        "vpscope_drift_confidence_delta_milli",
        "Recent minus baseline mean composite confidence, in 1/1000", labels);
  }
  const Status status = compute(scenario);
  scenario.flagged_gauge->set(obs_slot_, status.drifting ? 1 : 0);
  scenario.reject_delta_gauge->set(
      obs_slot_,
      static_cast<std::int64_t>(
          (status.recent_reject_rate - status.baseline_reject_rate) * 1000.0));
  scenario.confidence_delta_gauge->set(
      obs_slot_,
      static_cast<std::int64_t>(
          (status.recent_confidence - status.baseline_confidence) * 1000.0));
}

}  // namespace vpscope::pipeline
