#include "pipeline/drift.hpp"

namespace vpscope::pipeline {

void DriftMonitor::record(fingerprint::Provider provider,
                          fingerprint::Transport transport,
                          telemetry::Outcome outcome, double confidence) {
  auto& scenario = scenarios_[{static_cast<int>(provider),
                               static_cast<int>(transport)}];
  ++scenario.observed;
  const bool composite = outcome == telemetry::Outcome::Composite;

  if (scenario.baseline_n < config_.calibration) {
    ++scenario.baseline_n;
    scenario.baseline_composite += composite;
    if (composite) scenario.baseline_confidence_sum += confidence;
    return;  // calibration flows don't enter the sliding window
  }

  scenario.window.push_back({composite, confidence});
  if (scenario.window.size() > config_.window) scenario.window.pop_front();
}

const DriftMonitor::Scenario* DriftMonitor::find(
    fingerprint::Provider provider, fingerprint::Transport transport) const {
  const auto it = scenarios_.find(
      {static_cast<int>(provider), static_cast<int>(transport)});
  return it == scenarios_.end() ? nullptr : &it->second;
}

DriftMonitor::Status DriftMonitor::status(
    fingerprint::Provider provider, fingerprint::Transport transport) const {
  Status status;
  const Scenario* scenario = find(provider, transport);
  if (!scenario) return status;

  status.observed = scenario->observed;
  status.calibrated = scenario->baseline_n >= config_.calibration;
  if (!status.calibrated || scenario->baseline_n == 0) return status;

  status.baseline_reject_rate =
      1.0 - static_cast<double>(scenario->baseline_composite) /
                static_cast<double>(scenario->baseline_n);
  status.baseline_confidence =
      scenario->baseline_composite
          ? scenario->baseline_confidence_sum /
                static_cast<double>(scenario->baseline_composite)
          : 0.0;

  if (scenario->window.size() < config_.window / 4)
    return status;  // not enough post-calibration traffic to judge

  std::size_t composite = 0;
  double confidence_sum = 0.0;
  for (const Sample& sample : scenario->window) {
    composite += sample.composite;
    if (sample.composite) confidence_sum += sample.confidence;
  }
  status.recent_reject_rate =
      1.0 - static_cast<double>(composite) /
                static_cast<double>(scenario->window.size());
  status.recent_confidence =
      composite ? confidence_sum / static_cast<double>(composite) : 0.0;

  status.drifting =
      status.recent_reject_rate >
          status.baseline_reject_rate + config_.reject_margin ||
      (composite > 0 && status.recent_confidence <
                            status.baseline_confidence -
                                config_.confidence_margin);
  return status;
}

bool DriftMonitor::any_drifting() const {
  for (const auto& [key, scenario] : scenarios_) {
    const auto provider = static_cast<fingerprint::Provider>(key.first);
    const auto transport = static_cast<fingerprint::Transport>(key.second);
    if (status(provider, transport).drifting) return true;
  }
  return false;
}

void DriftMonitor::recalibrate(fingerprint::Provider provider,
                               fingerprint::Transport transport) {
  scenarios_[{static_cast<int>(provider), static_cast<int>(transport)}] =
      Scenario{};
}

}  // namespace vpscope::pipeline
