// Multi-core front-end for the Fig. 4 pipeline: N worker threads, each
// owning one VideoFlowPipeline shard. The dispatch thread decodes each
// packet once, hashes its canonical FlowKey, and hands it to shard
// `hash % n_shards` through a bounded SPSC ring. Because a flow always
// hashes to the same shard and each ring is FIFO, per-flow packet ordering
// is preserved by construction — the property the paper's 8-core DPDK
// deployment (§5.1) relies on when it fans 20 Gbit/s across cores.
//
// Overload control (DESIGN.md §5e): when a shard's ring is full the
// dispatcher applies the configured admission policy instead of buffering
// unboundedly. `Overload::Block` (default) waits for space — lossless, the
// pre-overload-layer behaviour. `Overload::Shed` waits only a bounded
// grace per packet class and then drops: handshake-bearing packets
// (SYN / TLS ClientHello record / QUIC Initial, classified at dispatch
// time by `admission_class`) get the longest grace because one lost
// handshake packet costs a classification, while a lost payload packet
// costs only a telemetry sample. Every shed is counted, so stats() always
// reconciles:
//
//   packets_total == packets_processed + packets_dropped_payload
//                  + packets_dropped_handshake + packets_stranded
//
// A per-shard watchdog (stuck_timeout_us > 0) watches for rings that stay
// full with no consumer progress — a worker wedged in a slow sink or a
// livelocked downstream — and flips the shard into telemetry-only bypass:
// the dispatcher stops waiting on it, sheds its traffic (counted), and
// keeps every other shard at full service instead of head-of-line-blocking
// the capture loop. `reactivate_recovered_shards` re-admits a bypassed
// shard once it has drained its backlog.
//
// Batched data plane (DESIGN.md §5g): the dispatcher stages up to
// `batch_size` decoded packets per shard and hands them over through one
// bulk ring push (one release store per chunk instead of one per packet);
// workers drain in bulk and defer classification across the batch
// (PipelineOptions::classify_batch), resolving ready flows through the
// cross-flow SIMD forest descent. Staged packets are accounted by the
// vpscope_packets_staged gauge and reported as `stranded` by snapshot()
// until they reach a ring, so the identity above holds in every snapshot;
// control items, volume samples and drain() flush staging first, so
// per-flow ordering and flush semantics are unchanged. Admission classes
// are evaluated lazily — only when a shed/bypass decision actually needs
// one — so Block-mode dispatch does zero admission-class work (see
// admission_class_evaluations()).
//
// Session records from all shards funnel through one lock-protected sink;
// all counters live on one obs::PipelineObs registry (wait-free per-slot
// atomic cells — DESIGN.md §5f), assembled into PipelineStats on demand.
// Control operations (flush_idle / flush_all) travel in-band through the
// same rings, so they are ordered with the packets that preceded them.
//
// Threading contract: on_packet / on_volume_sample / flush_* / drain /
// stats / active_flows are dispatcher-thread-only — they either mutate
// dispatcher state or read shard flow tables that are only safe to touch
// once drain() has observed quiescence, which is only meaningful from the
// one producing thread. Debug builds (and the fault-injection build)
// enforce this with a thread-id check; see
// dispatcher_contract_violations(). snapshot() is the any-thread
// exception: it reads only registry atomics, never flow tables. The sink
// is invoked on worker threads, serialized by the internal mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "pipeline/pipeline.hpp"
#include "util/spsc_ring.hpp"

namespace vpscope::obs {
class FlightRecorder;
}

namespace vpscope::pipeline {

/// Packet classes for admission priority under overload.
enum class AdmissionClass : std::uint8_t {
  /// Connection-establishment packets the classifier needs: TCP SYN, a TLS
  /// handshake record at the start of a segment, or a QUIC long-header
  /// Initial. Shed last.
  Handshake,
  /// Everything else (ACKs, payload, short-header QUIC): telemetry-only
  /// value, shed first.
  Payload,
};

/// Dispatch-time admission classification. Deliberately a cheap heuristic
/// over the already-decoded headers — the dispatcher cannot afford parsing.
AdmissionClass admission_class(const net::DecodedPacket& decoded);

struct ShardedPipelineOptions {
  /// Worker count; 1 degenerates to a single-threaded pipeline behind a
  /// queue. 0 is invalid.
  int n_shards = 1;
  /// Per-shard ring capacity (rounded up to a power of two). Bounded by
  /// design: a slow shard exerts backpressure on the dispatcher instead of
  /// buffering unboundedly.
  std::size_t queue_capacity = 4096;

  /// Batched data plane (DESIGN.md §5g): packets staged per shard before a
  /// bulk ring handover, items drained per worker bulk pop, and (unless
  /// flow_table.classify_batch overrides it) flows staged per deferred
  /// cross-flow classification. 1 restores the item-at-a-time data plane;
  /// 0 is treated as 1.
  std::size_t batch_size = 32;

  /// Per-shard flow-table bound. `flow_table.max_flows` is the TOTAL
  /// budget across the pipeline; each shard gets ceil(max_flows/n_shards).
  PipelineOptions flow_table = {};

  enum class Overload : std::uint8_t {
    Block,  // lossless backpressure: wait for ring space indefinitely
    Shed,   // bounded wait per admission class, then drop (counted)
  };
  Overload overload = Overload::Block;
  /// Shed-mode grace: how long the dispatcher waits for ring space before
  /// dropping, per admission class. Payload defaults to shedding
  /// immediately; handshakes ride out a short stall.
  std::uint64_t payload_grace_us = 0;
  std::uint64_t handshake_grace_us = 2000;

  /// Stuck-shard watchdog: if a full ring shows no consumer progress for
  /// this long, the shard is bypassed. 0 disables the watchdog (a stuck
  /// shard then blocks the dispatcher forever, even under Shed — grace
  /// timers keep expiring but the flood keeps arriving).
  std::uint64_t stuck_timeout_us = 0;

  /// Observability (DESIGN.md §5f): stage profiling and flow tracing for
  /// the shared registry all shards write to. Metrics themselves are
  /// always on — they ARE the pipeline's accounting.
  obs::ObsConfig obs = {};

  /// Model lifecycle (DESIGN.md §5j): when set, shard i attaches as reader
  /// slot i — workers adopt newly published generations at batch boundaries
  /// and while parked, and the dispatcher drives canary judgement through
  /// an amortized lifecycle poll. Must outlive the pipeline and be
  /// constructed with >= n_shards reader slots. The constructor `bank`
  /// argument is ignored once a shard adopts its first generation.
  ModelLifecycle* lifecycle = nullptr;

  /// Per-shard concept-drift monitoring: each shard gets a private
  /// DriftMonitor with this config, fed from its own worker thread with no
  /// synchronization. Read the merged view through drift_status /
  /// any_drifting / refresh_drift_gauges (dispatcher-thread-only).
  std::optional<DriftConfig> drift;
};

class ShardedPipeline {
 public:
  /// The bank must outlive the pipeline and is shared read-only by all
  /// shards (ClassifierBank::classify is const and thread-safe).
  ShardedPipeline(const ClassifierBank* bank,
                  ShardedPipelineOptions options = {});
  ~ShardedPipeline();

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  /// Installs the session sink; called from worker threads but never
  /// concurrently (internally serialized). Set before the first packet.
  void set_sink(std::function<void(telemetry::SessionRecord)> sink);

  /// Multi-writer alternative to set_sink: one sink per shard, invoked on
  /// that shard's worker thread with NO cross-shard serialization — the
  /// mutex funnel is bypassed entirely. Pair with
  /// telemetry::ShardedSessionStore::sink(i), whose writers stage records
  /// into private segments and take the store lock only per sealed
  /// segment. `sinks.size()` must equal shard_count(). Set before the
  /// first packet; replaces any set_sink().
  void set_shard_sinks(
      std::vector<std::function<void(telemetry::SessionRecord)>> sinks);

  /// Called on the dispatcher thread when the watchdog flips a shard into
  /// bypass. Set before the first packet.
  void set_stuck_callback(std::function<void(int shard)> callback);

  /// Receives the post-mortem of a shard the watchdog just bypassed: a
  /// JSON document with the shard's trace ring and a full registry
  /// snapshot (obs::PipelineObs::dump_shard). Called on the dispatcher
  /// thread, before the stuck callback. Set before the first packet.
  void set_stuck_dump_sink(std::function<void(int shard, std::string dump)> sink);

  /// Attaches the crash flight recorder (DESIGN.md §5k): a watchdog trip
  /// dumps a whole-process postmortem ("watchdog_stuck_shard") after the
  /// per-shard dump sink runs, and a lifecycle canary rollback observed by
  /// the dispatcher's amortized poll dumps "canary_rollback". The recorder
  /// must outlive the pipeline. Set before the first packet.
  void set_flight_recorder(obs::FlightRecorder* recorder);

  /// Marks the moment the capture front-end picked up the NEXT packet fed
  /// to on_packet: the gap to dispatch becomes the packet's Capture span.
  /// No-op (one branch) when span tracing is off. Dispatcher-thread-only.
  void mark_capture_start();

  /// Enables the vpscope_obs_export hook: the registry is rendered and
  /// atomically rewritten to `options.path` roughly every
  /// `options.interval_us` (checked every few hundred packets on the
  /// dispatcher thread) and once more on flush_all().
  void set_exporter(obs::ExportOptions options);

  /// Decodes, shards and enqueues one captured packet, applying the
  /// configured admission policy when the target ring is full. The rvalue
  /// overload moves the packet bytes straight into the shard item — the
  /// zero-copy ingest the replay/live capture front-ends use.
  void on_packet(const net::Packet& packet);
  void on_packet(net::Packet&& packet);

  /// Routes a decimated volume sample to the owning shard (payload-class
  /// admission under Shed).
  void on_volume_sample(const net::FlowKey& key, std::uint64_t ts_us,
                        std::uint64_t bytes_down, std::uint64_t bytes_up);

  /// Broadcasts an idle-flush to every live shard and waits for completion.
  void flush_idle(std::uint64_t now_us, std::uint64_t idle_timeout_us);

  /// Broadcasts a full flush to every live shard and waits for completion.
  void flush_all();

  /// Waits until every item enqueued to a live shard has been processed.
  /// Bypassed shards are not waited on (their backlog is `stranded`).
  void drain();

  /// Drains, then snapshots. With no shard bypassed this equals the stats
  /// a single-threaded VideoFlowPipeline would report for the same
  /// admitted packet sequence; a bypassed shard's backlog shows up as
  /// `packets_stranded`. Dispatcher-thread-only (the drain).
  PipelineStats stats();

  /// Lock-free stats assembly straight from the registry — callable from
  /// ANY thread, any time, without draining (the fix for the PR-4
  /// stats() dispatcher-only restriction). Because every counter is a
  /// wait-free atomic cell, the identity
  ///   packets_total == packets_processed + packets_dropped_payload
  ///                  + packets_dropped_handshake + packets_stranded
  /// holds in every snapshot taken between dispatcher packet calls
  /// (in-flight backlog of live shards is reported as stranded until the
  /// workers catch up).
  PipelineStats snapshot() const;

  /// Drains, then sums live flow-table sizes across non-stuck shards.
  /// Dispatcher-thread-only.
  std::size_t active_flows();

  /// Re-admits bypassed shards whose workers have caught up (processed ==
  /// enqueued); returns how many recovered. Dispatcher-thread-only.
  int reactivate_recovered_shards();

  /// Shards currently in telemetry-only bypass.
  int bypassed_shards() const;

  /// How many times the dispatcher evaluated admission_class(). Lazy by
  /// design: zero under Block mode with no bypassed shard — the class only
  /// matters when a shed/bypass decision is actually being made.
  /// Dispatcher-thread-only (like the dispatch path that increments it).
  std::uint64_t admission_class_evaluations() const {
    return admission_class_evals_;
  }

  /// Calls observed on a thread other than the pinned dispatcher thread.
  /// Always 0 in release builds (the check compiles out); in debug builds a
  /// violation also trips an assert.
  std::uint64_t dispatcher_contract_violations() const {
    return obs_->dispatcher_contract_violations.total();
  }

  /// The shared metrics bundle (registry, stage profiler, trace rings).
  obs::PipelineObs& observability() { return *obs_; }
  const obs::PipelineObs& observability() const { return *obs_; }

  int shard_count() const { return static_cast<int>(shards_.size()); }
  std::size_t shard_of(const net::FlowKey& key) const;

  /// Merged drift status of one scenario across every shard's monitor —
  /// exactly what a single monitor fed all shards' traffic would report
  /// (DriftMonitor::merge over the per-shard raw accumulators). Drains
  /// first, so worker-side monitor state is visible (happens-before via the
  /// processed counter). Dispatcher-thread-only. Zero Status when drift
  /// monitoring is not configured.
  DriftMonitor::Status drift_status(fingerprint::Provider provider,
                                    fingerprint::Transport transport);

  /// True when any scenario's merged status is drifting. Drains;
  /// dispatcher-thread-only.
  bool any_drifting();

  /// Writes the merged per-scenario drift gauges (vpscope_drift_flagged,
  /// reject/confidence deltas) at the dispatcher slot. Merged-only by
  /// design: per-shard gauge writes would sum wrongly at exposition.
  /// Drains; dispatcher-thread-only.
  void refresh_drift_gauges();

 private:
  struct Item {
    enum class Kind : std::uint8_t {
      Packet,
      Volume,
      FlushIdle,
      FlushAll,
      Stop,
    };
    Kind kind = Kind::Packet;
    // Kind::Packet: the owned raw bytes plus the dispatch-time decode. The
    // decoded views borrow from packet.data's heap buffer, which is stable
    // across the moves in and out of the ring.
    net::Packet packet;
    std::optional<net::DecodedPacket> decoded;
    // Kind::Volume: (key, ts, down, up). Kind::FlushIdle: (now, idle) in
    // arg0/arg1.
    net::FlowKey key;
    std::uint64_t arg0 = 0, arg1 = 0, arg2 = 0;
    // Kind::Packet, span-sampled flows only: the Dispatch span id the
    // worker's Queue span parents onto, and the handover time that starts
    // it. 0 = unsampled (workers skip all span work on one branch).
    std::uint64_t span_parent = 0;
    std::uint64_t enqueue_ns = 0;
  };

  struct Shard {
    Shard(const ClassifierBank* bank, std::size_t queue_capacity,
          PipelineOptions flow_table)
        : queue(queue_capacity), pipe(bank, flow_table) {}
    SpscRing<Item> queue;
    VideoFlowPipeline pipe;
    std::atomic<std::uint64_t> enqueued{0};   // all item kinds
    std::atomic<std::uint64_t> processed{0};  // all item kinds
    // Packet-item identity counters (enqueued/completed per packet) live on
    // the registry: obs packets_enqueued / packets_completed at this
    // shard's slot.
    std::atomic<bool> bypassed{false};
    std::thread worker;
    int index = 0;
    /// Worker-thread-owned drift monitor (ShardedPipelineOptions::drift);
    /// the dispatcher reads it only behind drain().
    std::unique_ptr<DriftMonitor> drift;
    // ---- dispatcher-thread-only bookkeeping ----
    std::uint64_t watchdog_last_processed = 0;
    std::uint64_t watchdog_stall_started_us = 0;  // 0 = not currently stalled
    /// Decoded packets awaiting the next bulk handover (DESIGN.md §5g);
    /// every staged packet is counted in the packets_staged gauge.
    std::vector<Item> staged;
  };

  /// Result of a bounded-wait enqueue attempt.
  enum class Admission : std::uint8_t { Enqueued, Shed, Bypassed };

  /// `control` items (flushes) never shed: they wait for ring space with
  /// only the watchdog as an escape hatch.
  Admission enqueue(Shard& shard, Item&& item, AdmissionClass cls,
                    bool control);
  /// Hands `shard`'s staging batch to its ring: bulk pushes while there is
  /// room, then the per-item bounded-wait admission policy (grace / shed /
  /// watchdog) for whatever is left. Empties `shard.staged`.
  void flush_shard(Shard& shard);
  /// Flushes every shard's staging (control broadcast / drain / teardown).
  void flush_staged();
  /// Drops one staged packet: lazy admission class, drop counter, trace.
  void shed_staged(Shard& shard, Item& item);
  AdmissionClass eval_admission_class(const net::DecodedPacket& decoded) {
    ++admission_class_evals_;
    return admission_class(decoded);
  }
  void broadcast(Item::Kind kind, std::uint64_t arg0 = 0,
                 std::uint64_t arg1 = 0);
  void worker_loop(Shard& shard);
  /// Watchdog bookkeeping while the dispatcher waits on `shard`; returns
  /// true when the shard was just declared stuck and flipped to bypass.
  bool watchdog_check(Shard& shard);
  void count_drop(AdmissionClass cls);
  bool quiescent(const Shard& shard) const;
  void check_dispatcher_thread();
  /// Amortized exporter tick from the dispatcher packet path.
  void maybe_export();
  /// Amortized lifecycle poll (canary judgement + generation reclamation)
  /// from the dispatcher packet path.
  void maybe_poll_lifecycle();
  /// Union of scenario keys over all shard drift monitors, merged status
  /// per key. Requires a prior drain().
  std::vector<std::pair<std::pair<fingerprint::Provider, fingerprint::Transport>,
                        DriftMonitor::Status>>
  merged_drift_statuses() const;

  ShardedPipelineOptions options_;
  /// Shared registry bundle; slots [0, n_shards) are the workers, slot
  /// n_shards the dispatcher. Constructed before shards_ so shard
  /// pipelines can bind to it.
  std::shared_ptr<obs::PipelineObs> obs_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::function<void(int)> stuck_callback_;
  std::function<void(int, std::string)> stuck_dump_sink_;
  obs::FlightRecorder* flight_recorder_ = nullptr;
  /// tick_now_ns() of the last mark_capture_start(); 0 = none pending.
  /// Dispatcher-thread-only.
  std::uint64_t capture_mark_ns_ = 0;
  std::unique_ptr<obs::PeriodicExporter> exporter_;
  std::uint64_t packets_since_export_check_ = 0;
  std::uint64_t packets_since_lifecycle_poll_ = 0;
  /// Dispatcher-thread-only; see admission_class_evaluations().
  std::uint64_t admission_class_evals_ = 0;
  std::mutex sink_mutex_;
  std::function<void(telemetry::SessionRecord)> sink_;
  // Dispatcher-thread pin for the debug contract check.
  std::atomic<std::size_t> dispatcher_thread_hash_{0};
  std::atomic<bool> dispatcher_thread_pinned_{false};
};

}  // namespace vpscope::pipeline
