// Multi-core front-end for the Fig. 4 pipeline: N worker threads, each
// owning one VideoFlowPipeline shard. The dispatch thread decodes each
// packet once, hashes its canonical FlowKey, and hands it to shard
// `hash % n_shards` through a bounded SPSC ring (spin-then-yield
// backpressure when a shard falls behind). Because a flow always hashes to
// the same shard and each ring is FIFO, per-flow packet ordering is
// preserved by construction — the property the paper's 8-core DPDK
// deployment (§5.1) relies on when it fans 20 Gbit/s across cores.
//
// Session records from all shards funnel through one lock-protected sink;
// per-shard PipelineStats are merged on demand. Control operations
// (flush_idle / flush_all) travel in-band through the same rings, so they
// are ordered with the packets that preceded them.
//
// Threading contract: on_packet / on_volume_sample / flush_* / stats must
// be called from one thread at a time (single dispatcher — matching a
// capture loop); the sink is invoked on worker threads, serialized by the
// internal mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "util/spsc_ring.hpp"

namespace vpscope::pipeline {

struct ShardedPipelineOptions {
  /// Worker count; 1 degenerates to a single-threaded pipeline behind a
  /// queue. 0 is invalid.
  int n_shards = 1;
  /// Per-shard ring capacity (rounded up to a power of two). Bounded by
  /// design: a slow shard exerts backpressure on the dispatcher instead of
  /// buffering unboundedly.
  std::size_t queue_capacity = 4096;
};

class ShardedPipeline {
 public:
  /// The bank must outlive the pipeline and is shared read-only by all
  /// shards (ClassifierBank::classify is const and thread-safe).
  ShardedPipeline(const ClassifierBank* bank,
                  ShardedPipelineOptions options = {});
  ~ShardedPipeline();

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  /// Installs the session sink; called from worker threads but never
  /// concurrently (internally serialized). Set before the first packet.
  void set_sink(std::function<void(telemetry::SessionRecord)> sink);

  /// Decodes, shards and enqueues one captured packet. Blocks (spin, then
  /// yield) while the target shard's ring is full.
  void on_packet(const net::Packet& packet);

  /// Routes a decimated volume sample to the owning shard.
  void on_volume_sample(const net::FlowKey& key, std::uint64_t ts_us,
                        std::uint64_t bytes_down, std::uint64_t bytes_up);

  /// Broadcasts an idle-flush to every shard and waits for completion.
  void flush_idle(std::uint64_t now_us, std::uint64_t idle_timeout_us);

  /// Broadcasts a full flush to every shard and waits for completion.
  void flush_all();

  /// Waits until every enqueued item has been processed.
  void drain();

  /// Drains, then merges dispatcher counters with per-shard stats. Equals
  /// the stats a single-threaded VideoFlowPipeline would report for the
  /// same packet sequence.
  PipelineStats stats();

  /// Drains, then sums live flow-table sizes across shards.
  std::size_t active_flows();

  int shard_count() const { return static_cast<int>(shards_.size()); }
  std::size_t shard_of(const net::FlowKey& key) const;

 private:
  struct Item {
    enum class Kind : std::uint8_t {
      Packet,
      Volume,
      FlushIdle,
      FlushAll,
      Stop,
    };
    Kind kind = Kind::Packet;
    // Kind::Packet: the owned raw bytes plus the dispatch-time decode. The
    // decoded views borrow from packet.data's heap buffer, which is stable
    // across the moves in and out of the ring.
    net::Packet packet;
    std::optional<net::DecodedPacket> decoded;
    // Kind::Volume: (key, ts, down, up). Kind::FlushIdle: (now, idle) in
    // arg0/arg1.
    net::FlowKey key;
    std::uint64_t arg0 = 0, arg1 = 0, arg2 = 0;
  };

  struct Shard {
    Shard(const ClassifierBank* bank, std::size_t queue_capacity)
        : queue(queue_capacity), pipe(bank) {}
    SpscRing<Item> queue;
    VideoFlowPipeline pipe;
    std::atomic<std::uint64_t> enqueued{0};
    std::atomic<std::uint64_t> processed{0};
    std::thread worker;
  };

  void enqueue(Shard& shard, Item&& item);
  void broadcast(Item::Kind kind, std::uint64_t arg0 = 0,
                 std::uint64_t arg1 = 0);
  void worker_loop(Shard& shard);

  std::vector<std::unique_ptr<Shard>> shards_;
  // Dispatcher-owned counters for packets that never reach a shard
  // (packets_total covers everything; packets_non_ip covers decode
  // failures). Only the dispatch thread touches these.
  PipelineStats dispatcher_stats_;
  std::mutex sink_mutex_;
  std::function<void(telemetry::SessionRecord)> sink_;
};

}  // namespace vpscope::pipeline
