#include "pipeline/pipeline.hpp"

#include <algorithm>

namespace vpscope::pipeline {

using fingerprint::Provider;
using fingerprint::Transport;

namespace {

/// ASCII lowercase; SNI hostnames are ASCII (punycode for anything else).
constexpr char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Case-insensitive suffix match without allocating a lowered copy.
bool iends_with(std::string_view s, std::string_view suffix) {
  if (s.size() < suffix.size()) return false;
  const std::size_t off = s.size() - suffix.size();
  for (std::size_t i = 0; i < suffix.size(); ++i)
    if (ascii_lower(s[off + i]) != suffix[i]) return false;
  return true;
}

}  // namespace

std::optional<Provider> provider_from_sni(std::string_view sni) {
  static const std::pair<const char*, Provider> kSuffixes[] = {
      {"googlevideo.com", Provider::YouTube},
      {"youtube.com", Provider::YouTube},
      {"ytimg.com", Provider::YouTube},
      {"nflxvideo.net", Provider::Netflix},
      {"netflix.com", Provider::Netflix},
      {"dssott.com", Provider::Disney},
      {"bamgrid.com", Provider::Disney},
      {"disneyplus.com", Provider::Disney},
      {"primevideo.com", Provider::Amazon},
      {"amazon.com", Provider::Amazon},
      {"amazonaws.com", Provider::Amazon},
      {"cloudfront.net", Provider::Amazon},
      {"akamaihd.net", Provider::Amazon},
  };
  for (const auto& [suffix, provider] : kSuffixes) {
    const std::size_t len = std::string_view(suffix).size();
    if (iends_with(sni, suffix)) {
      // Match either the bare domain or a subdomain boundary.
      if (sni.size() == len || sni[sni.size() - len - 1] == '.')
        return provider;
    }
  }
  return std::nullopt;
}

PipelineStats& PipelineStats::operator+=(const PipelineStats& other) {
  packets_total += other.packets_total;
  packets_non_ip += other.packets_non_ip;
  flows_total += other.flows_total;
  video_flows += other.video_flows;
  classified_composite += other.classified_composite;
  classified_partial += other.classified_partial;
  classified_unknown += other.classified_unknown;
  return *this;
}

void VideoFlowPipeline::on_packet(const net::Packet& packet) {
  ++stats_.packets_total;
  const auto decoded = net::decode(packet);
  if (!decoded) {
    ++stats_.packets_non_ip;
    return;
  }
  on_decoded(*decoded);
}

void VideoFlowPipeline::on_decoded(const net::DecodedPacket& decoded) {
  // Video flows ride HTTPS; anything else never enters the flow table.
  if (decoded.src_port() != 443 && decoded.dst_port() != 443) return;

  const net::FlowKey key = decoded.flow_key();
  auto [it, inserted] = flows_.try_emplace(key);
  FlowState& state = it->second;
  if (inserted) {
    ++stats_.flows_total;
    // The first packet of a flow comes from the client in our captures
    // (SYN / QUIC Initial); fall back to "not port 443" for robustness.
    if (decoded.dst_port() == 443) {
      state.client_addr = decoded.src;
      state.client_port = decoded.src_port();
    } else {
      state.client_addr = decoded.dst;
      state.client_port = decoded.dst_port();
    }
    state.transport =
        decoded.udp ? Transport::Quic : Transport::Tcp;
  }

  // Telemetry: every packet counts, direction by client address.
  const bool from_client = state.client_addr &&
                           decoded.src == *state.client_addr &&
                           decoded.src_port() == state.client_port;
  if (from_client)
    state.counters.add_up(decoded.timestamp_us, decoded.ip_packet_size);
  else
    state.counters.add_down(decoded.timestamp_us, decoded.ip_packet_size);

  // Handshake path: feed until complete, then detect provider + classify.
  if (state.prediction || !state.extractor.feed(decoded)) return;
  if (!state.extractor.complete()) return;

  state.sni = state.extractor.sni();
  state.provider = provider_from_sni(state.sni);
  if (!state.provider) return;  // HTTPS, but not a video provider of interest

  ++stats_.video_flows;
  state.video_counted = true;
  const auto& handshake = *state.extractor.handshake();
  PlatformPrediction prediction =
      bank_ ? bank_->classify(handshake, *state.provider)
            : PlatformPrediction{};
  switch (prediction.outcome) {
    case telemetry::Outcome::Composite:
      ++stats_.classified_composite;
      break;
    case telemetry::Outcome::Partial:
      ++stats_.classified_partial;
      break;
    case telemetry::Outcome::Unknown:
      ++stats_.classified_unknown;
      break;
  }
  if (drift_)
    drift_->record(*state.provider, state.transport, prediction.outcome,
                   prediction.platform_confidence);
  state.prediction = std::move(prediction);
}

void VideoFlowPipeline::on_volume_sample(const net::FlowKey& key,
                                         std::uint64_t ts_us,
                                         std::uint64_t bytes_down,
                                         std::uint64_t bytes_up) {
  const auto it = flows_.find(key);
  if (it == flows_.end()) return;
  if (bytes_down) it->second.counters.add_down(ts_us, bytes_down);
  if (bytes_up) it->second.counters.add_up(ts_us, bytes_up);
}

void VideoFlowPipeline::finalize(const net::FlowKey& key, FlowState& state) {
  (void)key;
  if (!state.video_counted || !state.provider) return;  // not a video flow
  telemetry::SessionRecord record;
  record.provider = *state.provider;
  record.transport = state.transport;
  record.sni = state.sni;
  record.counters = state.counters;
  if (state.prediction) {
    record.outcome = state.prediction->outcome;
    record.platform = state.prediction->platform;
    record.device = state.prediction->device;
    record.agent = state.prediction->agent;
    record.confidence = state.prediction->platform_confidence;
  }
  if (sink_) sink_(std::move(record));
}

void VideoFlowPipeline::flush_idle(std::uint64_t now_us,
                                   std::uint64_t idle_timeout_us) {
  for (auto it = flows_.begin(); it != flows_.end();) {
    const std::uint64_t last = it->second.counters.last_us;
    if (last + idle_timeout_us <= now_us) {
      finalize(it->first, it->second);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
}

void VideoFlowPipeline::flush_all() {
  for (auto& [key, state] : flows_) finalize(key, state);
  flows_.clear();
}

}  // namespace vpscope::pipeline
