#include "pipeline/pipeline.hpp"

#include <algorithm>

#include "pipeline/faultpoint.hpp"

namespace vpscope::pipeline {

using fingerprint::Provider;
using fingerprint::Transport;

namespace {

/// ASCII lowercase; SNI hostnames are ASCII (punycode for anything else).
constexpr char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Case-insensitive suffix match without allocating a lowered copy.
bool iends_with(std::string_view s, std::string_view suffix) {
  if (s.size() < suffix.size()) return false;
  const std::size_t off = s.size() - suffix.size();
  for (std::size_t i = 0; i < suffix.size(); ++i)
    if (ascii_lower(s[off + i]) != suffix[i]) return false;
  return true;
}

}  // namespace

std::optional<Provider> provider_from_sni(std::string_view sni) {
  static const std::pair<const char*, Provider> kSuffixes[] = {
      {"googlevideo.com", Provider::YouTube},
      {"youtube.com", Provider::YouTube},
      {"ytimg.com", Provider::YouTube},
      {"nflxvideo.net", Provider::Netflix},
      {"netflix.com", Provider::Netflix},
      {"dssott.com", Provider::Disney},
      {"bamgrid.com", Provider::Disney},
      {"disneyplus.com", Provider::Disney},
      {"primevideo.com", Provider::Amazon},
      {"amazon.com", Provider::Amazon},
      {"amazonaws.com", Provider::Amazon},
      {"cloudfront.net", Provider::Amazon},
      {"akamaihd.net", Provider::Amazon},
  };
  for (const auto& [suffix, provider] : kSuffixes) {
    const std::size_t len = std::string_view(suffix).size();
    if (iends_with(sni, suffix)) {
      // Match either the bare domain or a subdomain boundary.
      if (sni.size() == len || sni[sni.size() - len - 1] == '.')
        return provider;
    }
  }
  return std::nullopt;
}

PipelineStats& PipelineStats::operator+=(const PipelineStats& other) {
  packets_total += other.packets_total;
  packets_non_ip += other.packets_non_ip;
  flows_total += other.flows_total;
  video_flows += other.video_flows;
  classified_composite += other.classified_composite;
  classified_partial += other.classified_partial;
  classified_unknown += other.classified_unknown;
  packets_processed += other.packets_processed;
  packets_dropped_payload += other.packets_dropped_payload;
  packets_dropped_handshake += other.packets_dropped_handshake;
  packets_stranded += other.packets_stranded;
  volume_samples_dropped += other.volume_samples_dropped;
  flows_evicted_capacity += other.flows_evicted_capacity;
  sink_errors += other.sink_errors;
  worker_errors += other.worker_errors;
  shards_bypassed += other.shards_bypassed;
  return *this;
}

VideoFlowPipeline::VideoFlowPipeline(const ClassifierBank* bank,
                                     PipelineOptions options,
                                     obs::ObsConfig obs_config)
    : bank_(bank), options_(options) {
  // A standalone pipeline is "one shard with no dispatcher": slot 0 of a
  // two-slot registry. The sharded front-end replaces this via bind_obs.
  owned_obs_ = std::make_shared<obs::PipelineObs>(1, obs_config);
  obs_ = owned_obs_.get();
  ring_ = obs_->ring(0);
  span_ring_ = obs_->span_ring(0);
  if (options_.classify_batch > 1 && bank_) batch_.emplace(bank_);
}

VideoFlowPipeline::~VideoFlowPipeline() {
  if (lifecycle_) lifecycle_->release(reader_slot_);
}

void VideoFlowPipeline::attach_lifecycle(ModelLifecycle* lifecycle,
                                         int reader_slot) {
  classify_pending_flush();
  lifecycle_ = lifecycle;
  reader_slot_ = reader_slot;
  apply_generation(lifecycle_->acquire(reader_slot_));
}

void VideoFlowPipeline::maybe_adopt_generation() {
  // Steady state: one relaxed load and a pointer compare.
  if (!lifecycle_ || lifecycle_->peek() == generation_) return;
  // Safe point: staged flows were encoded against the current banks'
  // Scenario tables (ClassifyBatch caches Scenario pointers); resolve them
  // before the banks change underneath.
  classify_pending_flush();
  apply_generation(lifecycle_->acquire(reader_slot_));
}

void VideoFlowPipeline::apply_generation(
    const ModelLifecycle::Generation* generation) {
  // Do NOT read through the old generation_ pointer here: our epoch slot
  // already points at the new generation, so the collector may free the
  // old object concurrently. adopted_model_gen_ carries what we need.
  const std::uint64_t previous_model_gen = adopted_model_gen_;
  generation_ = generation;
  adopted_model_gen_ = generation->model_gen;
  bank_ = generation->stable.get();
  batch_.reset();
  canary_batch_.reset();
  if (options_.classify_batch > 1) {
    if (bank_) batch_.emplace(bank_);
    if (generation->canary) canary_batch_.emplace(generation->canary.get());
  }
  // A model_gen bump means the stable bank itself changed (promotion or
  // direct swap): the drift baselines calibrated against the old model are
  // meaningless for the new one.
  if (drift_ && previous_model_gen != 0 &&
      generation->model_gen != previous_model_gen)
    drift_->recalibrate_all();
}

void VideoFlowPipeline::bind_obs(obs::PipelineObs* obs, int slot) {
  obs_ = obs;
  slot_ = slot;
  ring_ = obs->ring(slot);
  span_ring_ = obs->span_ring(slot);
  owned_obs_.reset();
}

PipelineStats VideoFlowPipeline::stats() const {
  // Thin read over the registry: this pipeline's own slot only, so a shard
  // pipeline bound to a shared registry reports just its contribution.
  PipelineStats s;
  const obs::PipelineObs& o = *obs_;
  const int i = slot_;
  s.packets_total = o.packets_total.value(i);
  s.packets_non_ip = o.packets_non_ip.value(i);
  s.flows_total = o.flows_total.value(i);
  s.video_flows = o.video_flows.value(i);
  s.classified_composite = o.classified_composite.value(i);
  s.classified_partial = o.classified_partial.value(i);
  s.classified_unknown = o.classified_unknown.value(i);
  // Processed decomposes into completed + decode-rejected; a synchronous
  // pipeline never drops, strands, or bypasses.
  s.packets_processed =
      o.packets_completed.value(i) + o.packets_non_ip.value(i);
  s.packets_dropped_payload = o.packets_dropped_payload.value(i);
  s.packets_dropped_handshake = o.packets_dropped_handshake.value(i);
  s.volume_samples_dropped = o.volume_samples_dropped.value(i);
  s.flows_evicted_capacity = o.flows_evicted_capacity.value(i);
  s.sink_errors = o.sink_errors.value(i);
  s.worker_errors = o.worker_errors.value(i);
  return s;
}

void VideoFlowPipeline::trace_push(obs::TraceEventKind kind,
                                   std::uint64_t ts_us,
                                   const FlowState& state) {
  obs::TraceEvent event;
  event.ts_us = ts_us;
  event.flow_hash = state.flow_hash;
  event.kind = kind;
  ring_->push(event);
}

void VideoFlowPipeline::on_packet(const net::Packet& packet) {
  maybe_adopt_generation();
  obs_->packets_total.add(slot_);
  // Span timeline starts at decode in the single-threaded front-end (no
  // dispatcher): the Parse span is the root of this packet's chain.
  std::uint64_t t_parse = 0;
  if (span_ring_) t_parse = obs::tick_now_ns();
  std::optional<net::DecodedPacket> decoded;
  {
    obs::ScopedTimer timer(&obs_->profiler, obs::Stage::Parse, slot_);
    decoded = net::decode(packet);
  }
  if (!decoded) {
    obs_->packets_non_ip.add(slot_);  // rejected at decode = fully handled
    return;
  }
  if (span_ring_) {
    const std::uint64_t hash = net::FlowKeyHash{}(decoded->flow_key());
    if (span_ring_->sampled(hash))
      packet_span_parent_ =
          span_ring_->record(obs::SpanKind::Parse, hash, 0, t_parse,
                             obs::tick_now_ns(), adopted_model_gen_);
  }
  obs_->packets_completed.add(slot_);
  on_decoded(*decoded);
}

void VideoFlowPipeline::touch_lru(FlowState& state) {
  // Idle-ordered by construction: a flow is moved to the back on every
  // packet, so the front is the longest-idle flow even when timestamps run
  // backwards (arrival order, not clock order, drives eviction).
  lru_.splice(lru_.end(), lru_, state.lru_it);
}

bool VideoFlowPipeline::admit_flow(FlowMap::iterator it, bool inserted,
                                   std::uint64_t ts_us) {
  if (options_.max_flows == 0) return true;
  if (inserted) {
    lru_.push_back(it->first);
    it->second.lru_it = std::prev(lru_.end());
  } else {
    touch_lru(it->second);
  }
  if (flows_.size() <= options_.max_flows) return true;
  obs_->flows_evicted_capacity.add(slot_);
  if (options_.eviction == PipelineOptions::Eviction::RejectNew) {
    // `it` is the newest flow (we only get here on insertion); refuse it.
    // flows_total was not yet counted for it — the caller counts only after
    // admission succeeds, keeping the counter monotone (every packet of a
    // refused flow retries the insert, and retries are not new flows).
    if (ring_ && it->second.traced)
      trace_push(obs::TraceEventKind::Rejected, ts_us, it->second);
    lru_.erase(it->second.lru_it);
    flows_.erase(it);
    return false;
  }
  // LruIdle: the front of lru_ is the longest-idle flow; it leaves through
  // the normal sink path. It is never `it` itself — `it` was just touched.
  const net::FlowKey victim_key = lru_.front();
  const auto victim = flows_.find(victim_key);
  // A staged victim must carry its prediction into the sink record: resolve
  // the whole pending batch before finalizing (resolution only mutates flow
  // *states*, never the table, so `it` and `victim` stay valid).
  if (victim->second.classify_pending) classify_pending_flush();
  if (ring_ && victim->second.traced)
    trace_push(obs::TraceEventKind::Evicted, ts_us, victim->second);
  finalize(victim->first, victim->second);
  flows_.erase(victim);
  lru_.pop_front();
  return true;
}

void VideoFlowPipeline::on_decoded(const net::DecodedPacket& decoded) {
  // Video flows ride HTTPS; anything else never enters the flow table.
  if (decoded.src_port() != 443 && decoded.dst_port() != 443) return;

  const net::FlowKey key = decoded.flow_key();
  auto [it, inserted] = flows_.try_emplace(key);
  FlowState& state = it->second;
  if (inserted) {
    // The first packet of a flow comes from the client in our captures
    // (SYN / QUIC Initial); fall back to "not port 443" for robustness.
    if (decoded.dst_port() == 443) {
      state.client_addr = decoded.src;
      state.client_port = decoded.src_port();
    } else {
      state.client_addr = decoded.dst;
      state.client_port = decoded.dst_port();
    }
    state.transport =
        decoded.udp ? Transport::Quic : Transport::Tcp;
    if (ring_ || span_ring_) {
      state.flow_hash = net::FlowKeyHash{}(key);
      if (ring_) state.traced = ring_->sampled(state.flow_hash);
      if (span_ring_) state.span_traced = span_ring_->sampled(state.flow_hash);
    }
  }
  if (!admit_flow(it, inserted, decoded.timestamp_us)) {
    sync_flows_active();
    return;
  }
  if (inserted) {
    obs_->flows_total.add(slot_);
    sync_flows_active();
    if (ring_ && state.traced)
      trace_push(obs::TraceEventKind::Admitted, decoded.timestamp_us, state);
  }

  // Telemetry: every packet counts, direction by client address.
  const bool from_client = state.client_addr &&
                           decoded.src == *state.client_addr &&
                           decoded.src_port() == state.client_port;
  if (from_client)
    state.counters.add_up(decoded.timestamp_us, decoded.ip_packet_size);
  else
    state.counters.add_down(decoded.timestamp_us, decoded.ip_packet_size);

  // Causal span context for this packet: chain onto the cross-thread
  // Queue/Parse span the front-end recorded (packet_span_parent_), or onto
  // the flow's last recorded span when the packet itself was unsampled
  // upstream (spans sample by flow, so the chain stays within one flow).
  obs::SpanScratch* spans = nullptr;
  if (span_ring_ && state.span_traced) {
    const std::uint64_t pkt_parent = packet_span_parent_;
    packet_span_parent_ = 0;
    span_scratch_.ring = span_ring_;
    span_scratch_.flow_hash = state.flow_hash;
    span_scratch_.parent = pkt_parent != 0 ? pkt_parent : state.span_last;
    span_scratch_.model_gen = adopted_model_gen_;
    span_scratch_.last_id = 0;
    spans = &span_scratch_;
  }

  // Handshake path: feed until complete, then detect provider + classify.
  if (state.prediction || state.classify_pending) {
    if (spans) state.span_last = span_scratch_.parent;
    return;
  }
  bool fed;
  {
    obs::ScopedTimer timer(&obs_->profiler, obs::Stage::Extract, slot_);
    obs::SpanScope span(spans, obs::SpanKind::Extract);
    fed = state.extractor.feed(decoded);
  }
  if (spans) state.span_last = span_scratch_.parent;
  if (!fed) return;
  if (!state.extractor.complete()) return;

  state.sni = state.extractor.sni();
  state.provider = provider_from_sni(state.sni);
  if (!state.provider) return;  // HTTPS, but not a video provider of interest

  obs_->video_flows.add(slot_);
  state.video_counted = true;
  const auto& handshake = *state.extractor.handshake();

  // Canary routing (DESIGN.md §5j): while a rollout is active, a
  // deterministic FlowKeyHash fraction of flows classifies against the
  // candidate bank instead of the stable one. Hash-based, so the same flow
  // always lands on the same route regardless of shard or replay order.
  const ClassifierBank* route_bank = bank_;
  ClassifierBank::ClassifyBatch* route_batch =
      batch_ ? &*batch_ : nullptr;
  if (generation_ && generation_->canary) {
    const std::uint64_t flow_hash =
        ring_ ? state.flow_hash : net::FlowKeyHash{}(key);
    if (generation_->routes_to_canary(flow_hash)) {
      state.canary_routed = true;
      route_bank = generation_->canary.get();
      route_batch = canary_batch_ ? &*canary_batch_ : nullptr;
    }
  }

  if (route_batch &&
      route_batch->add(handshake, *state.provider, pending_.size(),
                       &obs_->profiler, slot_, spans)) {
    // Deferred: the flow is encoded, its descent runs with the batch. An
    // untrained scenario stages nothing (add returns false) and falls
    // through to the inline path, which reports it Unknown immediately.
    state.classify_pending = true;
    const std::uint64_t span_parent = spans ? span_scratch_.parent : 0;
    if (spans) state.span_last = span_parent;
    pending_.push_back({key, decoded.timestamp_us, span_parent});
    if (pending_.size() >= options_.classify_batch) classify_pending_flush();
    return;
  }
  const PlatformPrediction prediction =
      route_bank ? route_bank->classify(handshake, *state.provider,
                                        &obs_->profiler, slot_, spans)
                 : PlatformPrediction{};
  if (spans) state.span_last = span_scratch_.parent;
  apply_prediction(state, prediction, decoded.timestamp_us);
}

void VideoFlowPipeline::apply_prediction(FlowState& state,
                                         const PlatformPrediction& prediction,
                                         std::uint64_t ts_us) {
  switch (prediction.outcome) {
    case telemetry::Outcome::Composite:
      obs_->classified_composite.add(slot_);
      break;
    case telemetry::Outcome::Partial:
      obs_->classified_partial.add(slot_);
      break;
    case telemetry::Outcome::Unknown:
      obs_->classified_unknown.add(slot_);
      break;
  }
  if (ring_ && state.traced) {
    obs::TraceEvent event;
    event.ts_us = ts_us;
    event.flow_hash = state.flow_hash;
    event.kind = obs::TraceEventKind::Classified;
    event.os = prediction.device
                   ? static_cast<std::uint8_t>(*prediction.device)
                   : std::uint8_t{0xff};
    event.agent = prediction.agent
                      ? static_cast<std::uint8_t>(*prediction.agent)
                      : std::uint8_t{0xff};
    event.has_platform = prediction.platform.has_value();
    event.confidence = static_cast<float>(prediction.platform_confidence);
    ring_->push(event);
  }
  // Canary-routed flows stay out of the drift monitor — the stable model's
  // baselines must not be judged on a candidate's outputs — and both routes
  // feed the lifecycle scoreboard that decides promote vs rollback.
  if (drift_ && state.provider && !state.canary_routed)
    drift_->record(*state.provider, state.transport, prediction.outcome,
                   prediction.platform_confidence, ts_us);
  if (lifecycle_)
    lifecycle_->record_outcome(reader_slot_, state.canary_routed,
                               prediction.outcome,
                               prediction.platform_confidence);
  state.prediction = prediction;
}

void VideoFlowPipeline::classify_pending_flush() {
  const bool stable_staged = batch_ && !batch_->empty();
  const bool canary_staged = canary_batch_ && !canary_batch_->empty();
  if (!stable_staged && !canary_staged) return;
  // One Classify stage sample covers the whole batch: the histogram then
  // shows the amortized cost directly (batch latency / flows-per-batch is
  // what the bench tables report).
  obs::ScopedTimer timer(&obs_->profiler, obs::Stage::Classify, slot_);
  // Span-sampled flows each get a Classify span covering the shared batch
  // descent up to their emit, parented on their own Encode span.
  const std::uint64_t batch_start_ns =
      span_ring_ ? obs::tick_now_ns() : 0;
  const std::function<void(std::uint64_t, const PlatformPrediction&)> emit =
      [this, batch_start_ns](std::uint64_t cookie,
                             const PlatformPrediction& prediction) {
        const PendingFlow& pending = pending_[cookie];
        const auto it = flows_.find(pending.key);
        if (it == flows_.end()) return;  // unreachable: flush precedes erase
        FlowState& state = it->second;
        state.classify_pending = false;
        if (span_ring_ && state.span_traced)
          state.span_last = span_ring_->record(
              obs::SpanKind::Classify, state.flow_hash, pending.span_parent,
              batch_start_ns, obs::tick_now_ns(), adopted_model_gen_);
        apply_prediction(state, prediction, pending.ts_us);
      };
  if (stable_staged) batch_->classify(emit);
  if (canary_staged) canary_batch_->classify(emit);
  pending_.clear();
}

void VideoFlowPipeline::on_volume_sample(const net::FlowKey& key,
                                         std::uint64_t ts_us,
                                         std::uint64_t bytes_down,
                                         std::uint64_t bytes_up) {
  const auto it = flows_.find(key);
  if (it == flows_.end()) return;
  if (options_.max_flows > 0) touch_lru(it->second);
  if (bytes_down) it->second.counters.add_down(ts_us, bytes_down);
  if (bytes_up) it->second.counters.add_up(ts_us, bytes_up);
}

void VideoFlowPipeline::finalize(const net::FlowKey& key, FlowState& state) {
  (void)key;
  if (!state.video_counted || !state.provider) return;  // not a video flow
  if (ring_ && state.traced)
    trace_push(obs::TraceEventKind::Finalized, state.counters.last_us, state);
  telemetry::SessionRecord record;
  record.provider = *state.provider;
  record.transport = state.transport;
  record.sni = state.sni;
  record.counters = state.counters;
  if (state.prediction) {
    record.outcome = state.prediction->outcome;
    record.platform = state.prediction->platform;
    record.device = state.prediction->device;
    record.agent = state.prediction->agent;
    record.confidence = state.prediction->platform_confidence;
  }
  if (sink_) {
    // A throwing sink must not tear down the pipeline (in the sharded
    // front-end it would escape a worker thread and std::terminate the
    // process); the record is lost, the error is counted, the flow table
    // stays consistent.
    const bool span = span_ring_ && state.span_traced;
    const std::uint64_t t_sink = span ? obs::tick_now_ns() : 0;
    try {
      VPSCOPE_FAULTPOINT(fault::Point::SinkEmit);
      obs::ScopedTimer timer(&obs_->profiler, obs::Stage::Sink, slot_);
      sink_(std::move(record));
    } catch (...) {
      obs_->sink_errors.add(slot_);
    }
    if (span)
      state.span_last = span_ring_->record(
          obs::SpanKind::Sink, state.flow_hash, state.span_last, t_sink,
          obs::tick_now_ns(), adopted_model_gen_);
  }
}

void VideoFlowPipeline::flush_idle(std::uint64_t now_us,
                                   std::uint64_t idle_timeout_us) {
  classify_pending_flush();
  for (auto it = flows_.begin(); it != flows_.end();) {
    // idle_us clamps a non-monotonic clock (now behind last_seen) to zero
    // idle, and — unlike the additive `last + timeout <= now` form — cannot
    // wrap when a hostile timestamp pushes last_us near 2^64.
    if (it->second.counters.idle_us(now_us) >= idle_timeout_us) {
      if (options_.max_flows > 0) lru_.erase(it->second.lru_it);
      finalize(it->first, it->second);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  sync_flows_active();
}

void VideoFlowPipeline::flush_all() {
  classify_pending_flush();
  for (auto& [key, state] : flows_) finalize(key, state);
  flows_.clear();
  lru_.clear();
  sync_flows_active();
}

}  // namespace vpscope::pipeline
