// Deterministic fault injection for the pipeline (DESIGN.md §5e).
//
// Two halves:
//
//  1. In-library fault points. Library code marks the places where a
//     deployment fails (a worker stalling mid-item, the session sink
//     throwing) with VPSCOPE_FAULTPOINT(point). In normal builds the macro
//     compiles to nothing — zero code, zero branches. The `faults` test
//     lane links `vpscope_pipeline_faults`, the same sources compiled with
//     -DVPSCOPE_FAULT_INJECTION=1, where the macro consults the process-wide
//     Registry: tests arm a Point with a Plan (fire at hit `start`, then
//     every `period`-th hit, at most `limit` times) and the point throws
//     InjectedFault or stalls for a fixed duration at exactly those hits.
//     Hit counting is per-point and atomic, so a schedule is deterministic
//     whenever the hits of that point are ordered (each point below is only
//     reached from a single thread per pipeline object).
//
//  2. Harness-side stream mangling. PacketMangler rewrites a packet vector
//     the way a hostile capture feed would — duplicates, drops, bounded
//     reorders, and backwards timestamp warps — from a seeded schedule, so
//     a test can feed the same mangled stream to the single-threaded
//     reference and the sharded pipeline and compare outputs exactly.
//     It needs no build flag; it never touches library internals.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace vpscope::pipeline::fault {

/// Places in the library where a fault can be injected.
enum class Point : int {
  WorkerItem,  // sharded worker, before processing each dequeued item
  SinkEmit,    // VideoFlowPipeline::finalize, before invoking the sink
  // ---- model lifecycle (DESIGN.md §5j) ----
  LifecycleLoad,      // ModelLifecycle::offer_file, each bundle read attempt
  LifecycleValidate,  // ModelLifecycle admission, before parse/validation
  LifecycleSwap,      // ModelLifecycle::publish, before the generation store
  LifecycleRetire,    // ModelLifecycle::collect, before freeing a generation
  LifecyclePublish,   // pipeline::save_bank, between tmp write and rename
  kCount,
};

/// The exception every throwing fault point raises; tests catch (and the
/// worker's containment path counts) exactly this type.
struct InjectedFault : std::runtime_error {
  InjectedFault() : std::runtime_error("vpscope injected fault") {}
};

/// What a fault point does when its schedule fires.
struct Plan {
  enum class Action : std::uint8_t {
    None,   // disarmed
    Throw,  // throw InjectedFault
    Stall,  // sleep for stall_ms (a stuck worker / slow sink)
  };
  Action action = Action::None;
  std::uint64_t start = 0;   // 0-based hit index of the first firing
  std::uint64_t period = 0;  // 0: fire once; else every period-th hit after
  std::uint64_t limit = 1;   // maximum number of firings
  std::uint64_t stall_ms = 0;
};

/// Process-wide fault registry. Tests arm/disarm; instrumented library code
/// calls act() through the VPSCOPE_FAULTPOINT macro. All methods are
/// thread-safe; counters are monotonically increasing atomics.
class Registry {
 public:
  static Registry& instance() {
    static Registry registry;
    return registry;
  }

  void arm(Point point, Plan plan) {
    State& s = state(point);
    s.hits.store(0, std::memory_order_relaxed);
    s.fires.store(0, std::memory_order_relaxed);
    s.action.store(static_cast<int>(plan.action), std::memory_order_relaxed);
    s.start = plan.start;
    s.period = plan.period;
    s.limit = plan.limit;
    s.stall_ms = plan.stall_ms;
  }

  void disarm_all() {
    for (auto& s : states_)
      s.action.store(static_cast<int>(Plan::Action::None),
                     std::memory_order_relaxed);
  }

  /// Number of times the point was reached / actually fired.
  std::uint64_t hits(Point point) const {
    return state(point).hits.load(std::memory_order_relaxed);
  }
  std::uint64_t fires(Point point) const {
    return state(point).fires.load(std::memory_order_relaxed);
  }

  /// Called by instrumented code at every pass through the point.
  void act(Point point) {
    State& s = state(point);
    const auto action =
        static_cast<Plan::Action>(s.action.load(std::memory_order_relaxed));
    const std::uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed);
    if (action == Plan::Action::None) return;
    if (hit < s.start) return;
    const std::uint64_t since = hit - s.start;
    if (s.period == 0 ? since != 0 : since % s.period != 0) return;
    if (s.fires.fetch_add(1, std::memory_order_relaxed) >= s.limit) {
      s.fires.fetch_sub(1, std::memory_order_relaxed);  // limit reached
      return;
    }
    switch (action) {
      case Plan::Action::Throw:
        throw InjectedFault{};
      case Plan::Action::Stall:
        std::this_thread::sleep_for(std::chrono::milliseconds(s.stall_ms));
        break;
      case Plan::Action::None:
        break;
    }
  }

 private:
  struct State {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fires{0};
    std::atomic<int> action{static_cast<int>(Plan::Action::None)};
    std::uint64_t start = 0;
    std::uint64_t period = 0;
    std::uint64_t limit = 0;
    std::uint64_t stall_ms = 0;
  };

  State& state(Point point) {
    return states_[static_cast<std::size_t>(point)];
  }
  const State& state(Point point) const {
    return states_[static_cast<std::size_t>(point)];
  }

  std::array<State, static_cast<std::size_t>(Point::kCount)> states_;
};

/// RAII arm/disarm for one test scope.
class Scoped {
 public:
  Scoped(Point point, Plan plan) { Registry::instance().arm(point, plan); }
  ~Scoped() { Registry::instance().disarm_all(); }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;
};

/// Seeded dispatch-time stream mangler. Every transform is driven by a
/// deterministic per-index schedule, so two runs over the same input are
/// bit-identical — the property the differential fault tests rely on.
class PacketMangler {
 public:
  struct Config {
    /// Duplicate every `dup_period`-th packet (0 = never). The duplicate is
    /// inserted immediately after the original.
    std::uint64_t dup_period = 0;
    /// Drop every `drop_period`-th packet (0 = never).
    std::uint64_t drop_period = 0;
    /// Swap every `reorder_period`-th packet with its successor (0 = never)
    /// — a bounded window-1 reorder, what a multi-queue NIC produces.
    std::uint64_t reorder_period = 0;
    /// Pull every `timewarp_period`-th packet's timestamp backwards by
    /// `timewarp_us` (0 = never) — a non-monotonic capture clock.
    std::uint64_t timewarp_period = 0;
    std::uint64_t timewarp_us = 1'000'000;
    /// Offsets the schedules so different seeds hit different packets.
    std::uint64_t seed = 1;
  };

  explicit PacketMangler(Config config) : config_(config) {}

  std::vector<net::Packet> mangle(const std::vector<net::Packet>& in) const {
    std::vector<net::Packet> out;
    out.reserve(in.size() + (config_.dup_period
                                 ? in.size() / config_.dup_period + 1
                                 : 0));
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (scheduled(config_.drop_period, i)) continue;
      net::Packet p = in[i];
      if (scheduled(config_.timewarp_period, i)) {
        p.timestamp_us =
            p.timestamp_us > config_.timewarp_us
                ? p.timestamp_us - config_.timewarp_us
                : 0;
      }
      out.push_back(p);
      if (scheduled(config_.dup_period, i)) out.push_back(std::move(p));
    }
    if (config_.reorder_period) {
      for (std::size_t i = 0; i + 1 < out.size(); ++i)
        if (scheduled(config_.reorder_period, i)) {
          std::swap(out[i], out[i + 1]);
          ++i;  // don't re-swap the packet we just moved forward
        }
    }
    return out;
  }

 private:
  bool scheduled(std::uint64_t period, std::uint64_t index) const {
    return period != 0 && (index + config_.seed) % period == 0;
  }

  Config config_;
};

}  // namespace vpscope::pipeline::fault

#if defined(VPSCOPE_FAULT_INJECTION) && VPSCOPE_FAULT_INJECTION
#define VPSCOPE_FAULTPOINT(point) \
  ::vpscope::pipeline::fault::Registry::instance().act(point)
#else
#define VPSCOPE_FAULTPOINT(point) ((void)0)
#endif
