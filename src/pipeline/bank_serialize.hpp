// Whole-bank model artifact ("VPSB"): every trained scenario of a
// ClassifierBank — class lists, the three forests, the fitted encoder — in
// one integrity-checked file. This is the unit the model lifecycle
// (DESIGN.md §5j) admits, canaries, and hot-swaps: the offline trainer
// produces one .vpsb, the capture server validates and publishes it
// atomically, and a crash at any byte of that hand-off leaves the previous
// artifact serving.
//
// Layout (big-endian, util/bytes Writer/Reader):
//   u32 magic "VPSB"    u16 version(1)
//   u32 crc32(payload)  u64 payload_size   -- must equal the exact remainder
//   payload:
//     u64 confidence threshold (IEEE-754 bit pattern)
//     u32 scenario count (1..64)
//     per scenario:
//       u8 provider  u8 transport
//       u32 n + n × (u8 os, u8 agent)   composite class list
//       u32 n + n × u8 os               device class list
//       u32 n + n × u8 agent            agent class list
//       u32 len + ml v2 bundle          platform forest + fitted encoder
//       u32 len + ml v1 forest          device forest
//       u32 len + ml v1 forest          agent forest
//
// The exact-size check plus the payload-wide CRC mean any single flipped,
// inserted, or removed byte is rejected before parsing; the structural
// validation behind them (enum ranges, class-count/forest agreement, every
// tree's feature indices inside the encoder dimension) rejects artifacts
// that are well-formed bytes but would misbehave at classify time.
#pragma once

#include <optional>
#include <string>
#include <system_error>

#include "pipeline/classifier_bank.hpp"
#include "util/bytes.hpp"

namespace vpscope::pipeline {

/// Serializes every trained scenario (bank.scenario_keys() order).
Bytes serialize_bank(const ClassifierBank& bank);

/// Parses and fully validates a VPSB artifact. nullopt on any integrity or
/// compatibility failure; `why`, when given, receives a one-line reason.
/// The returned bank has its forests compiled and is ready to serve.
std::optional<ClassifierBank> deserialize_bank(ByteView data,
                                               std::string* why = nullptr);

/// Publishes `bank` at `path` via the atomic tmp + fsync + rename protocol;
/// a crash mid-publish leaves any previous file at `path` intact (the
/// leftover *.tmp is invisible to ModelDirWatcher). Fault point:
/// LifecyclePublish, between the temporary write and the rename.
std::error_code save_bank(const ClassifierBank& bank, const std::string& path);

/// Reads and validates a VPSB file. nullopt + `why` on failure.
std::optional<ClassifierBank> load_bank(const std::string& path,
                                        std::string* why = nullptr);

}  // namespace vpscope::pipeline
