#include "pipeline/bank_serialize.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "ml/serialize.hpp"
#include "pipeline/faultpoint.hpp"
#include "util/crc32.hpp"

namespace vpscope::pipeline {

namespace {

constexpr std::uint32_t kMagic = 0x56505342;  // "VPSB"
constexpr std::uint16_t kVersion = 1;
constexpr std::uint32_t kMaxScenarios = 64;
constexpr std::uint32_t kMaxClasses = 4096;

/// Largest feature index any tree of the forest descends on; -1 for a
/// forest of pure leaves.
int max_feature_index(const ml::RandomForest& forest) {
  int max_feature = -1;
  for (const auto& tree : forest.trees())
    for (const auto& node : tree.nodes())
      max_feature = std::max(max_feature, node.feature);
  return max_feature;
}

}  // namespace

Bytes serialize_bank(const ClassifierBank& bank) {
  Writer payload;
  payload.u64(std::bit_cast<std::uint64_t>(bank.confidence_threshold()));
  const auto keys = bank.scenario_keys();
  payload.u32(static_cast<std::uint32_t>(keys.size()));
  for (const auto& [provider, transport] : keys) {
    const ClassifierBank::Scenario* s = bank.scenario(provider, transport);
    payload.u8(static_cast<std::uint8_t>(provider));
    payload.u8(static_cast<std::uint8_t>(transport));

    payload.u32(static_cast<std::uint32_t>(s->platform_classes.size()));
    for (const auto& platform : s->platform_classes) {
      payload.u8(static_cast<std::uint8_t>(platform.os));
      payload.u8(static_cast<std::uint8_t>(platform.agent));
    }
    payload.u32(static_cast<std::uint32_t>(s->device_classes.size()));
    for (const auto os : s->device_classes)
      payload.u8(static_cast<std::uint8_t>(os));
    payload.u32(static_cast<std::uint32_t>(s->agent_classes.size()));
    for (const auto agent : s->agent_classes)
      payload.u8(static_cast<std::uint8_t>(agent));

    const auto blob = [&payload](const Bytes& bytes) {
      payload.u32(static_cast<std::uint32_t>(bytes.size()));
      payload.raw(bytes);
    };
    // The platform blob is a v2 ml bundle so the fitted encoder travels with
    // the bank; the partial-objective forests share that encoder and ship v1.
    blob(ml::serialize_bundle(s->platform_model, s->encoder));
    blob(ml::serialize_forest(s->device_model));
    blob(ml::serialize_forest(s->agent_model));
  }

  const Bytes body = std::move(payload).take();
  Writer w;
  w.u32(kMagic);
  w.u16(kVersion);
  w.u32(crc32(body));
  w.u64(body.size());
  w.raw(body);
  return std::move(w).take();
}

std::optional<ClassifierBank> deserialize_bank(ByteView data,
                                               std::string* why) {
  const auto fail = [why](const char* reason) {
    if (why) *why = reason;
    return std::nullopt;
  };

  Reader r(data);
  if (r.u32() != kMagic || !r.ok()) return fail("bad magic");
  if (r.u16() != kVersion || !r.ok()) return fail("unsupported version");
  const std::uint32_t crc = r.u32();
  const std::uint64_t payload_size = r.u64();
  if (!r.ok()) return fail("truncated header");
  // Exact-size framing: together with the payload-wide CRC below, any byte
  // flipped, inserted, or removed anywhere in the artifact is rejected here
  // — before a single structural field is trusted.
  if (payload_size != r.remaining()) return fail("payload size mismatch");
  const ByteView payload = r.view(payload_size);
  if (crc32(payload) != crc) return fail("payload crc mismatch");

  Reader p(payload);
  const double threshold = std::bit_cast<double>(p.u64());
  if (!p.ok() || !(threshold >= 0.0 && threshold <= 1.0))
    return fail("confidence threshold out of range");
  const std::uint32_t scenario_count = p.u32();
  if (!p.ok() || scenario_count == 0 || scenario_count > kMaxScenarios)
    return fail("scenario count out of range");

  ClassifierBank bank;
  bank.set_confidence_threshold(threshold);
  std::vector<std::pair<int, int>> seen;

  for (std::uint32_t i = 0; i < scenario_count; ++i) {
    const std::uint8_t provider = p.u8();
    const std::uint8_t transport = p.u8();
    if (!p.ok() || provider >= fingerprint::kNumProviders || transport > 1)
      return fail("scenario key out of range");
    const std::pair<int, int> key{provider, transport};
    if (std::find(seen.begin(), seen.end(), key) != seen.end())
      return fail("duplicate scenario");
    seen.push_back(key);

    ClassifierBank::Scenario scenario;

    std::uint32_t n = p.u32();
    // Every class entry below occupies >= 1 byte; a count the remaining
    // bytes cannot back must not reserve (fuzz: allocation bomb).
    if (!p.ok() || n == 0 || n > kMaxClasses || n > p.remaining() / 2)
      return fail("platform class list out of range");
    scenario.platform_classes.reserve(n);
    for (std::uint32_t c = 0; c < n; ++c) {
      const std::uint8_t os = p.u8();
      const std::uint8_t agent = p.u8();
      if (!p.ok() || os > static_cast<std::uint8_t>(
                              fingerprint::Os::PlayStation) ||
          agent > static_cast<std::uint8_t>(fingerprint::Agent::NativeApp))
        return fail("platform class out of range");
      scenario.platform_classes.push_back(
          {static_cast<fingerprint::Os>(os),
           static_cast<fingerprint::Agent>(agent)});
    }

    n = p.u32();
    if (!p.ok() || n == 0 || n > kMaxClasses || n > p.remaining())
      return fail("device class list out of range");
    scenario.device_classes.reserve(n);
    for (std::uint32_t c = 0; c < n; ++c) {
      const std::uint8_t os = p.u8();
      if (!p.ok() ||
          os > static_cast<std::uint8_t>(fingerprint::Os::PlayStation))
        return fail("device class out of range");
      scenario.device_classes.push_back(static_cast<fingerprint::Os>(os));
    }

    n = p.u32();
    if (!p.ok() || n == 0 || n > kMaxClasses || n > p.remaining())
      return fail("agent class list out of range");
    scenario.agent_classes.reserve(n);
    for (std::uint32_t c = 0; c < n; ++c) {
      const std::uint8_t agent = p.u8();
      if (!p.ok() ||
          agent > static_cast<std::uint8_t>(fingerprint::Agent::NativeApp))
        return fail("agent class out of range");
      scenario.agent_classes.push_back(static_cast<fingerprint::Agent>(agent));
    }

    const auto blob = [&p](std::string* blob_why,
                           const char* what) -> std::optional<ByteView> {
      const std::uint32_t len = p.u32();
      if (!p.ok() || len > p.remaining()) {
        if (blob_why) *blob_why = what;
        return std::nullopt;
      }
      return p.view(len);
    };

    const auto platform_view = blob(why, "platform model blob truncated");
    if (!platform_view) return std::nullopt;
    auto platform_bundle = ml::deserialize_bundle(*platform_view);
    if (!platform_bundle) return fail("platform model blob malformed");
    if (!platform_bundle->encoder)
      return fail("platform model blob lacks an encoder");
    if (platform_bundle->encoder->transport() !=
        static_cast<fingerprint::Transport>(transport))
      return fail("encoder transport does not match the scenario");
    if (platform_bundle->forest.num_classes() !=
        static_cast<int>(scenario.platform_classes.size()))
      return fail("platform forest class count mismatch");

    const auto device_view = blob(why, "device model blob truncated");
    if (!device_view) return std::nullopt;
    auto device_forest = ml::deserialize_forest(*device_view);
    if (!device_forest) return fail("device model blob malformed");
    if (device_forest->num_classes() !=
        static_cast<int>(scenario.device_classes.size()))
      return fail("device forest class count mismatch");

    const auto agent_view = blob(why, "agent model blob truncated");
    if (!agent_view) return std::nullopt;
    auto agent_forest = ml::deserialize_forest(*agent_view);
    if (!agent_forest) return fail("agent model blob malformed");
    if (agent_forest->num_classes() !=
        static_cast<int>(scenario.agent_classes.size()))
      return fail("agent forest class count mismatch");

    scenario.encoder = std::move(*platform_bundle->encoder);
    scenario.platform_model = std::move(platform_bundle->forest);
    scenario.device_model = std::move(*device_forest);
    scenario.agent_model = std::move(*agent_forest);

    // A tree that descends on a feature the encoder never produces would
    // read past the feature vector at classify time.
    const int dim = static_cast<int>(scenario.encoder.dimension());
    if (max_feature_index(scenario.platform_model) >= dim ||
        max_feature_index(scenario.device_model) >= dim ||
        max_feature_index(scenario.agent_model) >= dim)
      return fail("forest descends on a feature outside the encoder");

    bank.install_scenario(static_cast<fingerprint::Provider>(provider),
                          static_cast<fingerprint::Transport>(transport),
                          std::move(scenario));
  }

  if (!p.ok() || !p.empty()) return fail("trailing bytes after last scenario");
  return bank;
}

std::error_code save_bank(const ClassifierBank& bank,
                          const std::string& path) {
  const Bytes data = serialize_bank(bank);
  const std::string tmp = path + ".tmp";
  if (const std::error_code ec = ml::write_file_checked(tmp, data)) {
    std::remove(tmp.c_str());
    return ec;
  }
  // Durability of the temporary before the rename makes it visible.
  if (const int fd = ::open(tmp.c_str(), O_RDONLY | O_CLOEXEC); fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  // A crash (or injected fault) here leaves `path` untouched: the watcher
  // skips *.tmp, so the half-published artifact is never admitted.
  VPSCOPE_FAULTPOINT(fault::Point::LifecyclePublish);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::error_code ec(errno ? errno : EIO, std::generic_category());
    std::remove(tmp.c_str());
    return ec;
  }
  return {};
}

std::optional<ClassifierBank> load_bank(const std::string& path,
                                        std::string* why) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (why) *why = "cannot open " + path;
    return std::nullopt;
  }
  const Bytes data{std::istreambuf_iterator<char>(file),
                   std::istreambuf_iterator<char>()};
  return deserialize_bank(data, why);
}

}  // namespace vpscope::pipeline
