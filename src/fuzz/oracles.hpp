// Differential oracles for the torture harness. Each check ingests one
// mutant through the same code path the on-path pipeline uses and verifies
// the three properties of the harness:
//
//   (a) fixpoint        parse -> serialize -> re-parse reproduces the same
//                       structure on every *accepted* input
//   (b) attr stability  the 62 RawAttrs extracted from the original parse
//                       and from the re-parse are identical
//   (c) no escape       rejection is a clean nullopt/false — a parser that
//                       throws, crashes, or reads out of bounds (caught by
//                       the ASan/UBSan lane) fails the oracle
//
// Checks never throw: any exception escaping a parser is converted into an
// oracle failure naming the mutant.
#pragma once

#include <string>
#include <vector>

#include "core/attributes.hpp"
#include "fuzz/corpus.hpp"

namespace vpscope::fuzz {

struct OracleResult {
  bool accepted = false;  // the mutant parsed as valid input
  std::string failure;    // empty when every oracle held

  bool ok() const { return failure.empty(); }
};

/// TLS record bytes through ClientHello::parse_record (the TCP surface).
OracleResult check_tls_record(ByteView data);

/// Handshake message bytes through ClientHello::parse_handshake (the QUIC
/// CRYPTO surface).
OracleResult check_tls_handshake(ByteView data);

/// quic_transport_parameters body. Serialization normalizes (unknown ids
/// drop, GREASE re-encodes), so the fixpoint is required after one
/// normalization round: serialize(parse(serialize(parse(x)))) ==
/// serialize(parse(x)).
OracleResult check_transport_params(ByteView body);

/// A full flight of UDP datagrams through the observer path: Initial
/// detection, AEAD unprotection, CRYPTO reassembly, ClientHello parse, then
/// the TLS oracles on whatever reassembled.
OracleResult check_initial_flight(const std::vector<Bytes>& datagrams);

/// A serialized pcap blob through both pcap surfaces: the streaming
/// capture::PcapReader walk (must not throw/OOB on any input) and the
/// whole-file net::read_pcap (accepted captures additionally decode,
/// extract, and survive a write_pcap round trip bit-identically).
OracleResult check_pcap_blob(const Bytes& blob);

/// A TPACKETv3 block image through capture::TpacketBlockWalker: the walk
/// must terminate, never yield more frames than the descriptor claims, and
/// every surfaced view must stay inside the image.
OracleResult check_block_image(const Bytes& image);

/// Field-wise RawAttrs comparison (present/count/number/valid tokens).
bool raw_attrs_equal(const core::RawAttrs& a, const core::RawAttrs& b);

}  // namespace vpscope::fuzz
