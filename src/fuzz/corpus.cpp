#include "fuzz/corpus.hpp"

#include "capture/export.hpp"
#include "quic/initial.hpp"
#include "synth/flow_synthesizer.hpp"

namespace vpscope::fuzz {

using fingerprint::Provider;
using fingerprint::Transport;

namespace {

SeedCase make_seed(synth::FlowSynthesizer& synth, Rng& rng,
                   const fingerprint::StackProfile& profile) {
  SeedCase seed;
  seed.platform = profile.platform;
  seed.provider = profile.provider;
  seed.transport = profile.transport;

  const std::string sni = profile.sni_candidates.empty()
                              ? std::string("video.example.net")
                              : profile.sni_candidates.front();
  seed.chlo = synth.build_client_hello(profile, sni);
  seed.record = seed.chlo.serialize_record();
  seed.handshake = seed.chlo.serialize_handshake();
  if (const auto tp = seed.chlo.quic_transport_parameters())
    seed.tp_body.assign(tp->begin(), tp->end());

  seed.dcid.resize(profile.quic.dcid_len ? profile.quic.dcid_len : 8);
  for (auto& b : seed.dcid) b = static_cast<std::uint8_t>(rng.next_u32());
  seed.scid.resize(profile.quic.scid_len);
  for (auto& b : seed.scid) b = static_cast<std::uint8_t>(rng.next_u32());
  if (seed.transport == Transport::Quic)
    seed.flight =
        quic::build_client_initial_flight(seed.dcid, seed.scid, seed.handshake);

  const synth::LabeledFlow flow = synth.synthesize(profile);
  seed.pcap_blob = capture::export_pcap(
      flow.packets, {.link_type = capture::LinkType::Raw});
  seed.pcap_eth_blob = capture::export_pcap(
      flow.packets, {.link_type = capture::LinkType::Ethernet});
  return seed;
}

}  // namespace

std::vector<SeedCase> build_corpus(std::uint64_t seed) {
  Rng rng(seed);
  synth::FlowSynthesizer synth(rng.fork());

  std::vector<SeedCase> corpus;
  for (const auto& platform : fingerprint::all_platforms()) {
    for (Provider provider : fingerprint::all_providers()) {
      if (!fingerprint::supports(platform, provider)) continue;
      if (fingerprint::supports_tcp(platform, provider))
        corpus.push_back(make_seed(
            synth, rng,
            fingerprint::make_profile(platform, provider, Transport::Tcp)));
      if (fingerprint::supports_quic(platform, provider))
        corpus.push_back(make_seed(
            synth, rng,
            fingerprint::make_profile(platform, provider, Transport::Quic)));
    }
  }
  for (int v = 0; v < fingerprint::num_unknown_profiles(); ++v)
    corpus.push_back(make_seed(
        synth, rng,
        fingerprint::make_unknown_profile(Provider::YouTube, v)));
  return corpus;
}

}  // namespace vpscope::fuzz
