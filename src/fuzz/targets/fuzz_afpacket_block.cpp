// libFuzzer entry: raw bytes -> TPACKETv3 block walker; the walk must
// terminate in bounds whatever the descriptor claims.
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "fuzz/oracles.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace vpscope;
  const auto result = fuzz::check_block_image(Bytes(data, data + size));
  if (!result.ok()) {
    std::fprintf(stderr, "oracle failure: %s\n", result.failure.c_str());
    std::abort();
  }
  return 0;
}
