// File-driven fallback driver for the fuzz entry points when the compiler
// has no libFuzzer runtime (GCC). Each argument is a file replayed through
// LLVMFuzzerTestOneInput — the same way `./fuzz_x crash-input` replays a
// libFuzzer artifact. Builds with Clang use -fsanitize=fuzzer and link the
// real runtime instead of this file.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <input-file>...\n"
                 "Replays each file through the fuzz entry point. Build with "
                 "Clang for coverage-guided fuzzing.\n",
                 argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::FILE* f = std::fopen(argv[i], "rb");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    std::vector<std::uint8_t> data;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
      data.insert(data.end(), buf, buf + n);
    std::fclose(f);
    LLVMFuzzerTestOneInput(data.data(), data.size());
    std::fprintf(stderr, "%s: %zu bytes ok\n", argv[i], data.size());
  }
  return 0;
}
