// libFuzzer entry: raw bytes -> quic_transport_parameters body with the
// serialize-normalization fixpoint oracle.
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "fuzz/oracles.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace vpscope;
  const auto result = fuzz::check_transport_params(ByteView{data, size});
  if (!result.ok()) {
    std::fprintf(stderr, "oracle failure: %s\n", result.failure.c_str());
    std::abort();
  }
  return 0;
}
