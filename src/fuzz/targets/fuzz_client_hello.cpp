// libFuzzer entry: raw bytes -> TLS record and handshake parsers, with the
// fixpoint + attribute oracles on anything accepted.
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "fuzz/oracles.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace vpscope;
  const ByteView view{data, size};
  const auto record = fuzz::check_tls_record(view);
  const auto handshake = fuzz::check_tls_handshake(view);
  if (!record.ok() || !handshake.ok()) {
    std::fprintf(stderr, "oracle failure: %s\n",
                 (!record.ok() ? record : handshake).failure.c_str());
    std::abort();
  }
  return 0;
}
