// libFuzzer entry: raw bytes -> one UDP datagram through Initial detection,
// unprotection, CRYPTO reassembly and the ClientHello oracles.
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "fuzz/oracles.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace vpscope;
  const auto result =
      fuzz::check_initial_flight({Bytes(data, data + size)});
  if (!result.ok()) {
    std::fprintf(stderr, "oracle failure: %s\n", result.failure.c_str());
    std::abort();
  }
  return 0;
}
