// Structure-aware wire-format mutation engine. Every mutant derives from a
// valid SeedCase handshake by one draw from a catalog of wire-level attacks:
//
//   byte level     truncation at any offset, bit flips, 16-bit length-field
//                  corruption, splices between seeds, insert/erase runs
//   TLS structure  extension duplication / reordering / GREASE injection,
//                  list inflation past the FixedList decode capacities,
//                  session-id / compression inflation, emptied lists
//   QUIC           varint boundary values and non-canonical (over-long)
//                  id/length encodings in transport parameters; Initial
//                  flights split across datagrams, reordered, duplicated,
//                  coalesced with trailing bytes, or corrupted post-AEAD
//
// All draws come from an explicitly seeded util/rng.hpp generator, so a
// (seed, corpus) pair reproduces the exact mutant sequence — CI runs are
// deterministic and any reported failure is replayable.
#pragma once

#include <cstdint>
#include <vector>

#include "fuzz/corpus.hpp"
#include "util/rng.hpp"

namespace vpscope::fuzz {

class Mutator {
 public:
  explicit Mutator(std::uint64_t seed) : rng_(seed) {}

  /// One mutant of the seed's TLS record bytes (TCP surface).
  Bytes mutate_record(const SeedCase& seed);

  /// One mutant of the seed's Handshake message bytes (QUIC CRYPTO surface).
  Bytes mutate_handshake(const SeedCase& seed);

  /// One mutant transport-parameters body (varint boundary values,
  /// non-canonical encodings, GREASE ids, byte corruption).
  Bytes mutate_transport_params(const SeedCase& seed);

  /// One mutant QUIC Initial flight: rebuilt from a (possibly structurally
  /// mutated) CRYPTO stream and then split / reordered / duplicated /
  /// coalesced / byte-corrupted. Only meaningful for QUIC seeds.
  std::vector<Bytes> mutate_initial_flight(const SeedCase& seed);

  /// One mutant of a serialized pcap blob. Structure-aware: knows the
  /// classic format's header/record layout, so mutants include the valid
  /// byte-swapped twin, nanosecond/garbage magics, snaplen/linktype/version
  /// corruption, caplen allocation bombs, impossible orig_len, boundary
  /// truncation, record duplication/reordering and VLAN tag injection, with
  /// a byte-level fallback.
  Bytes mutate_pcap_blob(const Bytes& blob);

  /// One mutant of a TPACKETv3 block image (the AF_PACKET walker surface):
  /// descriptor-field corruption, torn blocks, tp_next_offset loop attacks.
  Bytes mutate_block_image(const Bytes& image);

  /// Structural ClientHello mutation (also used by the flight mutator).
  tls::ClientHello mutate_structure(const tls::ClientHello& chlo);

  /// Pure byte-level mutation of an arbitrary buffer.
  Bytes mutate_bytes(Bytes data);

  Rng& rng() { return rng_; }

 private:
  Bytes inflate_u16_list_body(std::size_t n);

  Rng rng_;
};

}  // namespace vpscope::fuzz
