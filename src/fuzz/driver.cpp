#include "fuzz/driver.hpp"

#include <exception>
#include <functional>

#include "capture/afpacket.hpp"
#include "capture/pcap.hpp"
#include "core/handshake.hpp"

namespace vpscope::fuzz {

namespace {

void record(TortureReport& report, const TortureConfig& config,
            const OracleResult& result) {
  ++report.mutants;
  if (result.accepted)
    ++report.accepted;
  else
    ++report.rejected;
  if (!result.ok() && report.failures.size() < config.max_failures)
    report.failures.push_back(result.failure);
}

/// Round-robin over the corpus until `total_mutants` mutants ran, one
/// mutation + oracle check per step.
TortureReport run(const std::vector<SeedCase>& corpus,
                  const TortureConfig& config,
                  const std::function<OracleResult(Mutator&, const SeedCase&)>&
                      step) {
  TortureReport report;
  Mutator mutator(config.seed);
  if (corpus.empty()) return report;
  for (std::size_t i = 0; report.mutants < config.total_mutants; ++i)
    record(report, config, step(mutator, corpus[i % corpus.size()]));
  return report;
}

}  // namespace

std::string TortureReport::summary(const char* target) const {
  std::string s(target);
  s += ": " + std::to_string(mutants) + " mutants, " +
       std::to_string(accepted) + " accepted, " + std::to_string(rejected) +
       " rejected, " + std::to_string(failures.size()) + " oracle failures";
  for (const auto& f : failures) s += "\n  " + f;
  return s;
}

TortureReport torture_tls_record(const std::vector<SeedCase>& corpus,
                                 const TortureConfig& config) {
  return run(corpus, config, [](Mutator& m, const SeedCase& seed) {
    return check_tls_record(m.mutate_record(seed));
  });
}

TortureReport torture_tls_handshake(const std::vector<SeedCase>& corpus,
                                    const TortureConfig& config) {
  return run(corpus, config, [](Mutator& m, const SeedCase& seed) {
    return check_tls_handshake(m.mutate_handshake(seed));
  });
}

TortureReport torture_transport_params(const std::vector<SeedCase>& corpus,
                                       const TortureConfig& config) {
  return run(corpus, config, [](Mutator& m, const SeedCase& seed) {
    return check_transport_params(m.mutate_transport_params(seed));
  });
}

TortureReport torture_quic_initial(const std::vector<SeedCase>& corpus,
                                   const TortureConfig& config) {
  // Only QUIC seeds carry a flight worth mutating.
  std::vector<SeedCase> quic;
  for (const auto& seed : corpus)
    if (seed.transport == fingerprint::Transport::Quic) quic.push_back(seed);
  return run(quic, config, [](Mutator& m, const SeedCase& seed) {
    return check_initial_flight(m.mutate_initial_flight(seed));
  });
}

TortureReport torture_pcap(const std::vector<SeedCase>& corpus,
                           const TortureConfig& config) {
  return run(corpus, config, [](Mutator& m, const SeedCase& seed) {
    // Alternate between the RAW and Ethernet-framed surfaces so the L2
    // shim (MAC header, VLAN tags) is under the same mutation pressure.
    const Bytes& blob = (m.rng().uniform(0, 1) && !seed.pcap_eth_blob.empty())
                            ? seed.pcap_eth_blob
                            : seed.pcap_blob;
    return check_pcap_blob(m.mutate_pcap_blob(blob));
  });
}

TortureReport torture_afpacket_block(const std::vector<SeedCase>& corpus,
                                     const TortureConfig& config) {
  return run(corpus, config, [](Mutator& m, const SeedCase& seed) {
    // Rebuild the kernel's layout from the seed's Ethernet capture, then
    // corrupt it: what a hostile/corrupt ring must not do to the walker.
    std::vector<capture::RingFrame> frames;
    auto reader = capture::PcapReader::open(seed.pcap_eth_blob);
    while (reader) {
      const auto frame = reader->next();
      if (!frame) break;
      capture::RingFrame rf;
      rf.timestamp_us = frame->timestamp_us;
      rf.orig_len = frame->orig_len;
      rf.bytes = frame->bytes;
      frames.push_back(rf);
      if (frames.size() >= 64) break;  // one block's worth
    }
    const Bytes image = capture::build_block_image(frames, 1 << 16);
    return check_block_image(m.mutate_block_image(image));
  });
}

TortureReport torture_classifier(const std::vector<SeedCase>& corpus,
                                 const pipeline::ClassifierBank& bank,
                                 const TortureConfig& config) {
  return run(corpus, config, [&bank](Mutator& m, const SeedCase& seed) {
    OracleResult result;
    const Bytes mutant = m.mutate_record(seed);
    try {
      const auto chlo = tls::ClientHello::parse_record(mutant);
      if (!chlo) return result;  // garbage rejected upstream of the bank
      result.accepted = true;

      core::FlowHandshake hs;
      hs.transport = seed.transport;
      hs.chlo = *chlo;
      if (const auto tp_body = hs.chlo.quic_transport_parameters())
        hs.quic_tp = quic::TransportParameters::parse(*tp_body);
      if (hs.transport == fingerprint::Transport::Quic && !hs.quic_tp)
        hs.transport = fingerprint::Transport::Tcp;

      const auto pred = bank.classify(hs, seed.provider);
      const double t = bank.confidence_threshold();
      auto in01 = [](double c) { return c >= 0.0 && c <= 1.0; };
      if (!in01(pred.platform_confidence) || !in01(pred.device_confidence) ||
          !in01(pred.agent_confidence)) {
        result.failure = "classifier: confidence outside [0,1] [mutant " +
                         to_hex(mutant) + "]";
      } else if (pred.outcome == telemetry::Outcome::Composite &&
                 pred.platform_confidence < t) {
        result.failure =
            "classifier: Composite below confidence gate [mutant " +
            to_hex(mutant) + "]";
      } else if (pred.outcome == telemetry::Outcome::Partial &&
                 pred.device_confidence < t && pred.agent_confidence < t) {
        result.failure = "classifier: Partial below confidence gate [mutant " +
                         to_hex(mutant) + "]";
      }
    } catch (const std::exception& e) {
      result.failure = std::string("classifier: ") + e.what() + " [mutant " +
                       to_hex(mutant) + "]";
    }
    return result;
  });
}

}  // namespace vpscope::fuzz
