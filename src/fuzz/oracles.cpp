#include "fuzz/oracles.hpp"

#include <exception>
#include <sstream>

#include "capture/afpacket.hpp"
#include "capture/pcap.hpp"
#include "core/handshake.hpp"
#include "core/interner.hpp"
#include "net/pcap.hpp"
#include "quic/initial.hpp"
#include "quic/transport_params.hpp"

namespace vpscope::fuzz {

namespace {

std::string describe(const char* what, ByteView mutant) {
  std::string s(what);
  s += " [mutant ";
  s += to_hex(mutant);
  s += "]";
  return s;
}

/// Builds the handshake observation the attribute extractor consumes. When
/// the ClientHello embeds parseable transport parameters the flow counts as
/// QUIC so the q* attributes are exercised too.
core::FlowHandshake to_flow_handshake(tls::ClientHello chlo) {
  core::FlowHandshake hs;
  if (const auto tp_body = chlo.quic_transport_parameters()) {
    if (auto tp = quic::TransportParameters::parse(*tp_body)) {
      hs.transport = fingerprint::Transport::Quic;
      hs.quic_tp = std::move(tp);
    }
  }
  hs.chlo = std::move(chlo);
  return hs;
}

/// Oracles (a) + (b) on an already-parsed ClientHello; `reparse` re-ingests
/// the serialized form through the same entry point the mutant came in on.
template <typename Reparse>
OracleResult check_parsed(const tls::ClientHello& chlo, ByteView mutant,
                          const Bytes& serialized, Reparse reparse) {
  OracleResult result;
  result.accepted = true;

  const auto again = reparse(serialized);
  if (!again) {
    result.failure = describe("fixpoint: serialize of accepted parse rejected",
                              mutant);
    return result;
  }
  if (!(*again == chlo)) {
    result.failure = describe("fixpoint: re-parse differs from first parse",
                              mutant);
    return result;
  }

  // One shared interner: two independent interners could assign the same id
  // to different strings and mask a divergence.
  core::TokenInterner interner;
  core::RawAttrs first{}, second{};
  core::extract_raw_attributes(to_flow_handshake(chlo), interner, first);
  core::extract_raw_attributes(to_flow_handshake(*again), interner, second);
  if (!raw_attrs_equal(first, second))
    result.failure = describe("attrs: RawAttrs differ across re-parse", mutant);
  return result;
}

}  // namespace

bool raw_attrs_equal(const core::RawAttrs& a, const core::RawAttrs& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.present != y.present || x.count != y.count || x.number != y.number)
      return false;
    for (std::uint8_t t = 0; t < x.count; ++t)
      if (x.tokens[t] != y.tokens[t]) return false;
  }
  return true;
}

OracleResult check_tls_record(ByteView data) {
  try {
    const auto chlo = tls::ClientHello::parse_record(data);
    if (!chlo) return {};
    return check_parsed(*chlo, data, chlo->serialize_record(),
                        [](const Bytes& b) {
                          return tls::ClientHello::parse_record(b);
                        });
  } catch (const std::exception& e) {
    return {.accepted = false,
            .failure = describe(e.what(), data)};
  }
}

OracleResult check_tls_handshake(ByteView data) {
  try {
    const auto chlo = tls::ClientHello::parse_handshake(data);
    if (!chlo) return {};
    return check_parsed(*chlo, data, chlo->serialize_handshake(),
                        [](const Bytes& b) {
                          return tls::ClientHello::parse_handshake(b);
                        });
  } catch (const std::exception& e) {
    return {.accepted = false,
            .failure = describe(e.what(), data)};
  }
}

OracleResult check_transport_params(ByteView body) {
  try {
    const auto tp = quic::TransportParameters::parse(body);
    if (!tp) return {};
    OracleResult result;
    result.accepted = true;

    const Bytes s1 = tp->serialize();
    const auto tp2 = quic::TransportParameters::parse(s1);
    if (!tp2) {
      result.failure =
          describe("fixpoint: serialize of accepted parse rejected", body);
      return result;
    }
    if (tp2->serialize() != s1)
      result.failure =
          describe("fixpoint: second normalization round not stable", body);
    return result;
  } catch (const std::exception& e) {
    return {.accepted = false, .failure = describe(e.what(), body)};
  }
}

OracleResult check_initial_flight(const std::vector<Bytes>& datagrams) {
  try {
    quic::CryptoReassembler reassembler;
    bool any = false;
    for (const auto& dg : datagrams) {
      if (!quic::looks_like_initial(dg)) continue;
      if (const auto packet = quic::unprotect_client_initial(dg)) {
        reassembler.add(*packet);
        any = true;
      }
    }
    if (!any) return {};
    const Bytes stream = reassembler.contiguous_prefix();
    return check_tls_handshake(stream);
  } catch (const std::exception& e) {
    std::string all;
    for (const auto& dg : datagrams) {
      if (!all.empty()) all += "|";
      all += to_hex(dg);
    }
    return {.accepted = false,
            .failure = std::string(e.what()) + " [flight " + all + "]"};
  }
}

OracleResult check_pcap_blob(const Bytes& blob) {
  try {
    // Streaming surface: the PcapReader walk itself must neither throw nor
    // OOB (the latter is the sanitizer lane's job), whatever the bytes.
    std::uint64_t streamed = 0;
    if (auto reader = capture::PcapReader::open(blob)) {
      while (reader->next()) ++streamed;
    }

    std::istringstream is(
        std::string(reinterpret_cast<const char*>(blob.data()), blob.size()));
    const auto packets = net::read_pcap(is);
    if (!packets) return {};
    OracleResult result;
    result.accepted = true;
    // Every packet a pcap reader accepts must survive decode + handshake
    // extraction without escaping exceptions.
    for (const auto& p : *packets) (void)net::decode(p);
    (void)core::extract_handshake(*packets);
    // Fixpoint: an accepted capture re-serialized through the canonical
    // writer must re-read to the identical packet sequence.
    std::ostringstream os;
    if (!net::write_pcap(os, *packets))
      return {.accepted = true,
              .failure = describe("pcap re-serialization failed", blob)};
    const std::string round = os.str();
    std::istringstream is2(round);
    const auto packets2 = net::read_pcap(is2);
    if (!packets2)
      return {.accepted = true,
              .failure = describe("pcap round-trip no longer parses", blob)};
    if (packets2->size() != packets->size())
      return {.accepted = true,
              .failure = describe("pcap round-trip changed packet count",
                                  blob)};
    for (std::size_t i = 0; i < packets->size(); ++i)
      if ((*packets2)[i].timestamp_us != (*packets)[i].timestamp_us ||
          (*packets2)[i].data != (*packets)[i].data)
        return {.accepted = true,
                .failure = describe("pcap round-trip changed a packet", blob)};
    return result;
  } catch (const std::exception& e) {
    return {.accepted = false, .failure = describe(e.what(), blob)};
  }
}

OracleResult check_block_image(const Bytes& image) {
  try {
    capture::TpacketBlockWalker walker(image);
    std::size_t walked = 0;
    while (const auto frame = walker.next()) {
      // The surfaced view must lie inside the image (ASan would catch the
      // read; this catches the arithmetic before it).
      if (frame->bytes.size() > 0 &&
          (frame->bytes.data() < image.data() ||
           frame->bytes.data() + frame->bytes.size() >
               image.data() + image.size()))
        return {.accepted = true,
                .failure = describe("walker surfaced an escaping view", image)};
      ++walked;
      if (walked > walker.num_packets())
        return {.accepted = true,
                .failure =
                    describe("walker yielded more frames than num_pkts",
                             image)};
    }
    OracleResult result;
    result.accepted = !walker.error() && walked > 0;
    return result;
  } catch (const std::exception& e) {
    return {.accepted = false, .failure = describe(e.what(), image)};
  }
}

}  // namespace vpscope::fuzz
