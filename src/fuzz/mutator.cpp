#include "fuzz/mutator.hpp"

#include <algorithm>

#include "quic/initial.hpp"
#include "quic/transport_params.hpp"
#include "quic/varint.hpp"
#include "tls/constants.hpp"

namespace vpscope::fuzz {

namespace {

std::size_t idx(Rng& rng, std::size_t n) {
  return static_cast<std::size_t>(rng.uniform(0, n - 1));
}

/// Corruption values for 16-bit length fields: the boundary and overflow
/// cases length-prefixed parsers get wrong.
std::uint16_t corrupt_u16(Rng& rng, std::uint16_t original) {
  switch (rng.uniform(0, 5)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return static_cast<std::uint16_t>(original + 1);
    case 3: return static_cast<std::uint16_t>(original - 1);
    case 4: return 0xffff;
    default: return static_cast<std::uint16_t>(rng.next_u32());
  }
}

}  // namespace

Bytes Mutator::mutate_bytes(Bytes data) {
  if (data.empty()) return data;
  switch (rng_.uniform(0, 5)) {
    case 0:  // truncate at any offset
      data.resize(idx(rng_, data.size() + 1));
      break;
    case 1: {  // flip 1..8 random bits
      const int flips = rng_.uniform_int(1, 8);
      for (int i = 0; i < flips; ++i)
        data[idx(rng_, data.size())] ^=
            static_cast<std::uint8_t>(1u << rng_.uniform(0, 7));
      break;
    }
    case 2: {  // corrupt a 16-bit big-endian field anywhere
      if (data.size() < 2) break;
      const std::size_t at = idx(rng_, data.size() - 1);
      const std::uint16_t original =
          static_cast<std::uint16_t>(data[at] << 8 | data[at + 1]);
      const std::uint16_t v = corrupt_u16(rng_, original);
      data[at] = static_cast<std::uint8_t>(v >> 8);
      data[at + 1] = static_cast<std::uint8_t>(v);
      break;
    }
    case 3: {  // insert a short random run
      Bytes run(rng_.uniform(1, 16));
      for (auto& b : run) b = static_cast<std::uint8_t>(rng_.next_u32());
      const std::size_t at = idx(rng_, data.size() + 1);
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(at), run.begin(),
                  run.end());
      break;
    }
    case 4: {  // erase a run
      const std::size_t at = idx(rng_, data.size());
      const std::size_t n =
          std::min<std::size_t>(rng_.uniform(1, 32), data.size() - at);
      data.erase(data.begin() + static_cast<std::ptrdiff_t>(at),
                 data.begin() + static_cast<std::ptrdiff_t>(at + n));
      break;
    }
    default: {  // duplicate a run in place (repeated-structure confusion)
      const std::size_t at = idx(rng_, data.size());
      const std::size_t n =
          std::min<std::size_t>(rng_.uniform(1, 64), data.size() - at);
      const Bytes run(data.begin() + static_cast<std::ptrdiff_t>(at),
                      data.begin() + static_cast<std::ptrdiff_t>(at + n));
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(at), run.begin(),
                  run.end());
      break;
    }
  }
  return data;
}

Bytes Mutator::inflate_u16_list_body(std::size_t n) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(n * 2));
  for (std::size_t i = 0; i < n; ++i)
    w.u16(static_cast<std::uint16_t>(rng_.next_u32()));
  return std::move(w).take();
}

tls::ClientHello Mutator::mutate_structure(const tls::ClientHello& chlo) {
  tls::ClientHello out = chlo;
  switch (rng_.uniform(0, 8)) {
    case 0:  // duplicate a random extension (repeated-extension handling)
      if (!out.extensions.empty()) {
        const auto& e = out.extensions[idx(rng_, out.extensions.size())];
        out.extensions.insert(
            out.extensions.begin() +
                static_cast<std::ptrdiff_t>(idx(rng_, out.extensions.size())),
            e);
      }
      break;
    case 1:  // full extension reorder
      rng_.shuffle(out.extensions);
      break;
    case 2: {  // GREASE injection: extension + cipher suite + group body
      tls::Extension g;
      g.type = tls::grease_value(rng_.uniform_int(0, 15));
      g.body.resize(rng_.uniform(0, 4));
      for (auto& b : g.body) b = static_cast<std::uint8_t>(rng_.next_u32());
      out.extensions.insert(
          out.extensions.begin() +
              static_cast<std::ptrdiff_t>(idx(rng_, out.extensions.size() + 1)),
          std::move(g));
      out.cipher_suites.insert(
          out.cipher_suites.begin() +
              static_cast<std::ptrdiff_t>(
                  idx(rng_, out.cipher_suites.size() + 1)),
          tls::grease_value(rng_.uniform_int(0, 15)));
      break;
    }
    case 3: {  // cipher-suite inflation past the U16View capacity (32)
      const std::size_t n = rng_.uniform(33, 300);
      out.cipher_suites.resize(n);
      for (auto& s : out.cipher_suites)
        s = static_cast<std::uint16_t>(rng_.next_u32());
      break;
    }
    case 4: {  // inflate a u16-list extension body past FixedList capacity
      const std::uint16_t targets[] = {tls::ext::kSupportedGroups,
                                       tls::ext::kSignatureAlgorithms,
                                       tls::ext::kDelegatedCredentials};
      const std::uint16_t type = targets[idx(rng_, 3)];
      const Bytes body = inflate_u16_list_body(rng_.uniform(33, 200));
      if (auto* e = out.find(type))
        e->body = body;
      else
        out.add_raw(type, body);
      break;
    }
    case 5: {  // key_share inflation (16-slot view capacity)
      std::vector<std::uint16_t> groups(rng_.uniform(17, 40));
      for (auto& g : groups) g = static_cast<std::uint16_t>(rng_.next_u32());
      if (auto* e = out.find(tls::ext::kKeyShare)) {
        tls::ClientHello fresh;
        fresh.add_key_shares(groups);
        e->body = fresh.extensions.back().body;
      } else {
        out.add_key_shares(groups);
      }
      break;
    }
    case 6:  // session-id boundary: empty or maximal (u8 length field)
      out.session_id.assign(rng_.bernoulli(0.5) ? 0 : 255, 0x5a);
      break;
    case 7: {  // compression-method inflation
      out.compression_methods.resize(rng_.uniform(2, 200));
      for (auto& c : out.compression_methods)
        c = static_cast<std::uint8_t>(rng_.next_u32());
      break;
    }
    default:  // emptied mandatory lists + random legacy version
      out.cipher_suites.clear();
      out.compression_methods.clear();
      out.legacy_version = static_cast<std::uint16_t>(rng_.next_u32());
      break;
  }
  return out;
}

Bytes Mutator::mutate_record(const SeedCase& seed) {
  // Half structural (mutated ClientHello re-serialized: valid framing,
  // adversarial contents), half byte-level (broken framing).
  if (rng_.bernoulli(0.5)) return mutate_structure(seed.chlo).serialize_record();
  return mutate_bytes(seed.record);
}

Bytes Mutator::mutate_handshake(const SeedCase& seed) {
  if (rng_.bernoulli(0.5))
    return mutate_structure(seed.chlo).serialize_handshake();
  return mutate_bytes(seed.handshake);
}

Bytes Mutator::mutate_transport_params(const SeedCase& seed) {
  const Bytes& body =
      seed.tp_body.empty() ? seed.handshake : seed.tp_body;  // TCP fallback
  switch (rng_.uniform(0, 3)) {
    case 0: {  // varint boundary values on a structural re-encode
      auto tp = quic::TransportParameters::parse(seed.tp_body);
      if (!tp) return mutate_bytes(body);
      static constexpr std::uint64_t kBoundaries[] = {
          0, 63, 64, 16383, 16384, (1ULL << 30) - 1, 1ULL << 30,
          quic::kVarintMax};
      const std::uint64_t v = kBoundaries[idx(rng_, 8)];
      switch (rng_.uniform(0, 3)) {
        case 0: tp->max_idle_timeout = v; break;
        case 1: tp->initial_max_data = v; break;
        case 2: tp->max_udp_payload_size = v; break;
        default: tp->initial_max_streams_bidi = v; break;
      }
      if (rng_.bernoulli(0.3))
        tp->param_order.push_back(27 + 31 * rng_.uniform(0, 40));  // GREASE id
      if (rng_.bernoulli(0.3)) rng_.shuffle(tp->param_order);
      return tp->serialize();
    }
    case 1: {  // non-canonical re-encode: widen every id/length varint
      Reader r(body);
      Writer w;
      while (!r.empty()) {
        const std::uint64_t id = quic::get_varint(r);
        const std::uint64_t len = quic::get_varint(r);
        const ByteView value = r.view(static_cast<std::size_t>(len));
        if (!r.ok()) return mutate_bytes(body);
        const std::size_t widths[] = {1, 2, 4, 8};
        const std::size_t wid = widths[idx(rng_, 4)];
        const std::size_t wlen = widths[idx(rng_, 4)];
        quic::put_varint_forced(
            w, id, std::max(wid, quic::varint_size(id)));
        quic::put_varint_forced(
            w, len, std::max(wlen, quic::varint_size(len)));
        w.raw(value);
      }
      return std::move(w).take();
    }
    default:
      return mutate_bytes(body);
  }
}

std::vector<Bytes> Mutator::mutate_initial_flight(const SeedCase& seed) {
  const int kind = rng_.uniform_int(0, 3);
  if (kind == 0) {
    // Rebuild from a structurally mutated CRYPTO stream; vary datagram size
    // so the CHLO splits across 1..N Initials.
    const Bytes stream = mutate_structure(seed.chlo).serialize_handshake();
    auto flight = quic::build_client_initial_flight(
        seed.dcid, seed.scid, stream, 0, rng_.uniform(1200, 1500));
    if (flight.size() > 1 && rng_.bernoulli(0.5)) rng_.shuffle(flight);
    if (rng_.bernoulli(0.3)) flight.push_back(flight[idx(rng_, flight.size())]);
    return flight;
  }

  // Byte-level attacks on the protected flight the observer actually sees.
  std::vector<Bytes> flight;
  flight.reserve(seed.flight.size());
  for (const auto& dg : seed.flight) flight.push_back(dg);
  if (flight.empty()) flight.push_back(mutate_bytes(seed.handshake));
  Bytes& victim = flight[idx(rng_, flight.size())];
  switch (kind) {
    case 1:
      victim = mutate_bytes(std::move(victim));
      break;
    case 2: {  // coalesce: trailing bytes after the Initial's Length window
      Bytes tail(rng_.uniform(1, 64));
      for (auto& b : tail) b = static_cast<std::uint8_t>(rng_.next_u32());
      if (rng_.bernoulli(0.5) && flight.size() > 1)
        tail = flight[(idx(rng_, flight.size()))];  // packet-after-packet
      victim.insert(victim.end(), tail.begin(), tail.end());
      break;
    }
    default:  // truncate one datagram mid-packet
      victim.resize(idx(rng_, victim.size() + 1));
      break;
  }
  return flight;
}

namespace {

// Classic pcap layout facts. Seed blobs come from the canonical writer
// (little-endian, microsecond magic), which lets mutations target specific
// fields; the derived mutants cover the swapped/nanosecond/corrupt shapes.
constexpr std::size_t kPcapHeaderSize = 24;
constexpr std::size_t kPcapRecordHeaderSize = 16;
constexpr std::uint32_t kMagicUs = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNs = 0xa1b23c4d;

std::uint32_t pcap_rd32(const Bytes& b, std::size_t at) {
  return static_cast<std::uint32_t>(b[at]) |
         static_cast<std::uint32_t>(b[at + 1]) << 8 |
         static_cast<std::uint32_t>(b[at + 2]) << 16 |
         static_cast<std::uint32_t>(b[at + 3]) << 24;
}

void pcap_wr32(Bytes& b, std::size_t at, std::uint32_t v) {
  b[at] = static_cast<std::uint8_t>(v);
  b[at + 1] = static_cast<std::uint8_t>(v >> 8);
  b[at + 2] = static_cast<std::uint8_t>(v >> 16);
  b[at + 3] = static_cast<std::uint8_t>(v >> 24);
}

void pcap_swap32(Bytes& b, std::size_t at) {
  std::swap(b[at], b[at + 3]);
  std::swap(b[at + 1], b[at + 2]);
}

/// Record start offsets of a canonical little-endian blob.
std::vector<std::size_t> pcap_record_offsets(const Bytes& blob) {
  std::vector<std::size_t> offsets;
  std::size_t off = kPcapHeaderSize;
  while (off + kPcapRecordHeaderSize <= blob.size()) {
    const std::uint32_t caplen = pcap_rd32(blob, off + 8);
    if (caplen > blob.size() - off - kPcapRecordHeaderSize) break;
    offsets.push_back(off);
    off += kPcapRecordHeaderSize + caplen;
  }
  return offsets;
}

}  // namespace

Bytes Mutator::mutate_pcap_blob(const Bytes& blob) {
  if (blob.size() < kPcapHeaderSize) return mutate_bytes(blob);
  Bytes out = blob;
  const auto records = pcap_record_offsets(out);
  switch (rng_.uniform(0, 12)) {
    case 0:  // fall back to pure byte-level corruption
      return mutate_bytes(std::move(out));
    case 1: {  // the byte-swapped twin: a *valid* opposite-endian file
      pcap_swap32(out, 0);
      std::swap(out[4], out[5]);  // version_major
      std::swap(out[6], out[7]);  // version_minor
      for (std::size_t at : {std::size_t{8}, std::size_t{12}, std::size_t{16},
                             std::size_t{20}})
        pcap_swap32(out, at);
      for (const std::size_t off : records)
        for (std::size_t f = 0; f < 16; f += 4) pcap_swap32(out, off + f);
      break;
    }
    case 2: {  // magic rewrite: ns variants, swapped-without-swapping, junk
      static constexpr std::uint32_t kMagics[] = {
          kMagicUs, kMagicNs, 0xd4c3b2a1, 0x4d3cb2a1, 0xdeadbeef};
      pcap_wr32(out, 0, kMagics[rng_.uniform(0, 4)]);
      break;
    }
    case 3:  // version corruption (reader pins major == 2)
      out[4 + idx(rng_, 4)] = static_cast<std::uint8_t>(rng_.next_u32());
      break;
    case 4: {  // snaplen corruption: 0 (= unlimited), tiny, random
      static constexpr std::uint32_t kSnaplens[] = {0, 1, 64, 0xffffffff};
      std::uint32_t v = kSnaplens[rng_.uniform(0, 3)];
      if (rng_.uniform(0, 3) == 0) v = rng_.next_u32();
      pcap_wr32(out, 16, v);
      break;
    }
    case 5: {  // linktype walk: the two supported, neighbours, junk
      static constexpr std::uint32_t kLinks[] = {0, 1, 101, 113, 147};
      std::uint32_t v = kLinks[rng_.uniform(0, 4)];
      if (rng_.uniform(0, 3) == 0) v = rng_.next_u32();
      pcap_wr32(out, 20, v);
      break;
    }
    case 6: {  // truncate near a record boundary (headers cut mid-field)
      const std::size_t anchor =
          records.empty() ? kPcapHeaderSize : records[idx(rng_, records.size())];
      const std::size_t jitter = rng_.uniform(0, kPcapRecordHeaderSize + 4);
      out.resize(std::min(out.size(), anchor + jitter));
      break;
    }
    case 7: {  // caplen corruption, including the classic allocation bomb
      if (records.empty()) return mutate_bytes(std::move(out));
      const std::size_t off = records[idx(rng_, records.size())];
      const std::uint32_t caplen = pcap_rd32(out, off + 8);
      static constexpr std::uint32_t kBombs[] = {0xffffffff, 0x7fffffff};
      std::uint32_t v;
      switch (rng_.uniform(0, 3)) {
        case 0: v = kBombs[rng_.uniform(0, 1)]; break;
        case 1: v = caplen + 1; break;
        case 2: v = caplen ? caplen - 1 : 0; break;
        default: v = rng_.next_u32(); break;
      }
      pcap_wr32(out, off + 8, v);
      break;
    }
    case 8: {  // orig_len < caplen: a physically impossible record
      if (records.empty()) return mutate_bytes(std::move(out));
      const std::size_t off = records[idx(rng_, records.size())];
      const std::uint32_t caplen = pcap_rd32(out, off + 8);
      pcap_wr32(out, off + 12, caplen ? rng_.uniform(0, caplen - 1) : 0);
      break;
    }
    case 9: {  // ts_frac out of range (>= 1e6 us / implausible ns)
      if (records.empty()) return mutate_bytes(std::move(out));
      const std::size_t off = records[idx(rng_, records.size())];
      pcap_wr32(out, off + 4,
                1'000'000 + static_cast<std::uint32_t>(rng_.uniform(0, 1u << 30)));
      break;
    }
    case 10: {  // duplicate one record at the tail (still valid)
      if (records.empty()) return mutate_bytes(std::move(out));
      const std::size_t off = records[idx(rng_, records.size())];
      const std::size_t len =
          kPcapRecordHeaderSize + pcap_rd32(out, off + 8);
      out.insert(out.end(), out.begin() + off, out.begin() + off + len);
      break;
    }
    case 11: {  // swap two records (valid; exercises timestamp disorder)
      if (records.size() < 2) return mutate_bytes(std::move(out));
      const std::size_t a = records[idx(rng_, records.size())];
      const std::size_t b = records[idx(rng_, records.size())];
      const std::size_t la = kPcapRecordHeaderSize + pcap_rd32(out, a + 8);
      const std::size_t lb = kPcapRecordHeaderSize + pcap_rd32(out, b + 8);
      if (a == b) return mutate_bytes(std::move(out));
      Bytes ra(out.begin() + a, out.begin() + a + la);
      Bytes rb(out.begin() + b, out.begin() + b + lb);
      Bytes next;
      next.reserve(out.size());
      const std::size_t lo = std::min(a, b), hi = std::max(a, b);
      const std::size_t llo = lo == a ? la : lb, lhi = lo == a ? lb : la;
      next.insert(next.end(), out.begin(), out.begin() + lo);
      next.insert(next.end(), lo == a ? rb.begin() : ra.begin(),
                  lo == a ? rb.end() : ra.end());
      next.insert(next.end(), out.begin() + lo + llo, out.begin() + hi);
      next.insert(next.end(), lo == a ? ra.begin() : rb.begin(),
                  lo == a ? ra.end() : rb.end());
      next.insert(next.end(), out.begin() + hi + lhi, out.end());
      out = std::move(next);
      break;
    }
    default: {  // VLAN tag injection into an Ethernet frame (valid, <= 2 tags)
      if (pcap_rd32(out, 20) != 1 || records.empty())
        return mutate_bytes(std::move(out));
      const std::size_t off = records[idx(rng_, records.size())];
      const std::uint32_t caplen = pcap_rd32(out, off + 8);
      if (caplen < 14) return mutate_bytes(std::move(out));
      const std::uint16_t tci = static_cast<std::uint16_t>(rng_.next_u32());
      const std::uint8_t tag[4] = {0x81, 0x00,
                                   static_cast<std::uint8_t>(tci >> 8),
                                   static_cast<std::uint8_t>(tci)};
      out.insert(out.begin() + off + kPcapRecordHeaderSize + 12, tag, tag + 4);
      pcap_wr32(out, off + 8, caplen + 4);
      pcap_wr32(out, off + 12, pcap_rd32(out, off + 12) + 4);
      break;
    }
  }
  return out;
}

Bytes Mutator::mutate_block_image(const Bytes& image) {
  if (image.size() < 48) return mutate_bytes(image);
  Bytes out = image;
  switch (rng_.uniform(0, 4)) {
    case 0:
      return mutate_bytes(std::move(out));
    case 1:  // block descriptor fields: num_pkts / first offset / blk_len
      pcap_wr32(out, 12 + 4 * rng_.uniform(0, 2), rng_.next_u32());
      break;
    case 2: {  // corrupt a u32 somewhere in the packet-header region
      const std::size_t at = 48 + idx(rng_, std::max<std::size_t>(
                                              out.size() - 48 - 3, 1));
      if (at + 4 <= out.size()) pcap_wr32(out, at, rng_.next_u32());
      break;
    }
    case 3:  // truncate: simulates a partially mapped / torn block
      out.resize(rng_.uniform(0, out.size()));
      break;
    default: {  // tp_next_offset loop attack on the first packet
      const std::size_t first = pcap_rd32(out, 16);
      if (first + 4 <= out.size())
        pcap_wr32(out, first, rng_.uniform(0, 2) == 0 ? 0 : 4);
      break;
    }
  }
  return out;
}

}  // namespace vpscope::fuzz
