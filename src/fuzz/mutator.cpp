#include "fuzz/mutator.hpp"

#include <algorithm>

#include "quic/initial.hpp"
#include "quic/transport_params.hpp"
#include "quic/varint.hpp"
#include "tls/constants.hpp"

namespace vpscope::fuzz {

namespace {

std::size_t idx(Rng& rng, std::size_t n) {
  return static_cast<std::size_t>(rng.uniform(0, n - 1));
}

/// Corruption values for 16-bit length fields: the boundary and overflow
/// cases length-prefixed parsers get wrong.
std::uint16_t corrupt_u16(Rng& rng, std::uint16_t original) {
  switch (rng.uniform(0, 5)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return static_cast<std::uint16_t>(original + 1);
    case 3: return static_cast<std::uint16_t>(original - 1);
    case 4: return 0xffff;
    default: return static_cast<std::uint16_t>(rng.next_u32());
  }
}

}  // namespace

Bytes Mutator::mutate_bytes(Bytes data) {
  if (data.empty()) return data;
  switch (rng_.uniform(0, 5)) {
    case 0:  // truncate at any offset
      data.resize(idx(rng_, data.size() + 1));
      break;
    case 1: {  // flip 1..8 random bits
      const int flips = rng_.uniform_int(1, 8);
      for (int i = 0; i < flips; ++i)
        data[idx(rng_, data.size())] ^=
            static_cast<std::uint8_t>(1u << rng_.uniform(0, 7));
      break;
    }
    case 2: {  // corrupt a 16-bit big-endian field anywhere
      if (data.size() < 2) break;
      const std::size_t at = idx(rng_, data.size() - 1);
      const std::uint16_t original =
          static_cast<std::uint16_t>(data[at] << 8 | data[at + 1]);
      const std::uint16_t v = corrupt_u16(rng_, original);
      data[at] = static_cast<std::uint8_t>(v >> 8);
      data[at + 1] = static_cast<std::uint8_t>(v);
      break;
    }
    case 3: {  // insert a short random run
      Bytes run(rng_.uniform(1, 16));
      for (auto& b : run) b = static_cast<std::uint8_t>(rng_.next_u32());
      const std::size_t at = idx(rng_, data.size() + 1);
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(at), run.begin(),
                  run.end());
      break;
    }
    case 4: {  // erase a run
      const std::size_t at = idx(rng_, data.size());
      const std::size_t n =
          std::min<std::size_t>(rng_.uniform(1, 32), data.size() - at);
      data.erase(data.begin() + static_cast<std::ptrdiff_t>(at),
                 data.begin() + static_cast<std::ptrdiff_t>(at + n));
      break;
    }
    default: {  // duplicate a run in place (repeated-structure confusion)
      const std::size_t at = idx(rng_, data.size());
      const std::size_t n =
          std::min<std::size_t>(rng_.uniform(1, 64), data.size() - at);
      const Bytes run(data.begin() + static_cast<std::ptrdiff_t>(at),
                      data.begin() + static_cast<std::ptrdiff_t>(at + n));
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(at), run.begin(),
                  run.end());
      break;
    }
  }
  return data;
}

Bytes Mutator::inflate_u16_list_body(std::size_t n) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(n * 2));
  for (std::size_t i = 0; i < n; ++i)
    w.u16(static_cast<std::uint16_t>(rng_.next_u32()));
  return std::move(w).take();
}

tls::ClientHello Mutator::mutate_structure(const tls::ClientHello& chlo) {
  tls::ClientHello out = chlo;
  switch (rng_.uniform(0, 8)) {
    case 0:  // duplicate a random extension (repeated-extension handling)
      if (!out.extensions.empty()) {
        const auto& e = out.extensions[idx(rng_, out.extensions.size())];
        out.extensions.insert(
            out.extensions.begin() +
                static_cast<std::ptrdiff_t>(idx(rng_, out.extensions.size())),
            e);
      }
      break;
    case 1:  // full extension reorder
      rng_.shuffle(out.extensions);
      break;
    case 2: {  // GREASE injection: extension + cipher suite + group body
      tls::Extension g;
      g.type = tls::grease_value(rng_.uniform_int(0, 15));
      g.body.resize(rng_.uniform(0, 4));
      for (auto& b : g.body) b = static_cast<std::uint8_t>(rng_.next_u32());
      out.extensions.insert(
          out.extensions.begin() +
              static_cast<std::ptrdiff_t>(idx(rng_, out.extensions.size() + 1)),
          std::move(g));
      out.cipher_suites.insert(
          out.cipher_suites.begin() +
              static_cast<std::ptrdiff_t>(
                  idx(rng_, out.cipher_suites.size() + 1)),
          tls::grease_value(rng_.uniform_int(0, 15)));
      break;
    }
    case 3: {  // cipher-suite inflation past the U16View capacity (32)
      const std::size_t n = rng_.uniform(33, 300);
      out.cipher_suites.resize(n);
      for (auto& s : out.cipher_suites)
        s = static_cast<std::uint16_t>(rng_.next_u32());
      break;
    }
    case 4: {  // inflate a u16-list extension body past FixedList capacity
      const std::uint16_t targets[] = {tls::ext::kSupportedGroups,
                                       tls::ext::kSignatureAlgorithms,
                                       tls::ext::kDelegatedCredentials};
      const std::uint16_t type = targets[idx(rng_, 3)];
      const Bytes body = inflate_u16_list_body(rng_.uniform(33, 200));
      if (auto* e = out.find(type))
        e->body = body;
      else
        out.add_raw(type, body);
      break;
    }
    case 5: {  // key_share inflation (16-slot view capacity)
      std::vector<std::uint16_t> groups(rng_.uniform(17, 40));
      for (auto& g : groups) g = static_cast<std::uint16_t>(rng_.next_u32());
      if (auto* e = out.find(tls::ext::kKeyShare)) {
        tls::ClientHello fresh;
        fresh.add_key_shares(groups);
        e->body = fresh.extensions.back().body;
      } else {
        out.add_key_shares(groups);
      }
      break;
    }
    case 6:  // session-id boundary: empty or maximal (u8 length field)
      out.session_id.assign(rng_.bernoulli(0.5) ? 0 : 255, 0x5a);
      break;
    case 7: {  // compression-method inflation
      out.compression_methods.resize(rng_.uniform(2, 200));
      for (auto& c : out.compression_methods)
        c = static_cast<std::uint8_t>(rng_.next_u32());
      break;
    }
    default:  // emptied mandatory lists + random legacy version
      out.cipher_suites.clear();
      out.compression_methods.clear();
      out.legacy_version = static_cast<std::uint16_t>(rng_.next_u32());
      break;
  }
  return out;
}

Bytes Mutator::mutate_record(const SeedCase& seed) {
  // Half structural (mutated ClientHello re-serialized: valid framing,
  // adversarial contents), half byte-level (broken framing).
  if (rng_.bernoulli(0.5)) return mutate_structure(seed.chlo).serialize_record();
  return mutate_bytes(seed.record);
}

Bytes Mutator::mutate_handshake(const SeedCase& seed) {
  if (rng_.bernoulli(0.5))
    return mutate_structure(seed.chlo).serialize_handshake();
  return mutate_bytes(seed.handshake);
}

Bytes Mutator::mutate_transport_params(const SeedCase& seed) {
  const Bytes& body =
      seed.tp_body.empty() ? seed.handshake : seed.tp_body;  // TCP fallback
  switch (rng_.uniform(0, 3)) {
    case 0: {  // varint boundary values on a structural re-encode
      auto tp = quic::TransportParameters::parse(seed.tp_body);
      if (!tp) return mutate_bytes(body);
      static constexpr std::uint64_t kBoundaries[] = {
          0, 63, 64, 16383, 16384, (1ULL << 30) - 1, 1ULL << 30,
          quic::kVarintMax};
      const std::uint64_t v = kBoundaries[idx(rng_, 8)];
      switch (rng_.uniform(0, 3)) {
        case 0: tp->max_idle_timeout = v; break;
        case 1: tp->initial_max_data = v; break;
        case 2: tp->max_udp_payload_size = v; break;
        default: tp->initial_max_streams_bidi = v; break;
      }
      if (rng_.bernoulli(0.3))
        tp->param_order.push_back(27 + 31 * rng_.uniform(0, 40));  // GREASE id
      if (rng_.bernoulli(0.3)) rng_.shuffle(tp->param_order);
      return tp->serialize();
    }
    case 1: {  // non-canonical re-encode: widen every id/length varint
      Reader r(body);
      Writer w;
      while (!r.empty()) {
        const std::uint64_t id = quic::get_varint(r);
        const std::uint64_t len = quic::get_varint(r);
        const ByteView value = r.view(static_cast<std::size_t>(len));
        if (!r.ok()) return mutate_bytes(body);
        const std::size_t widths[] = {1, 2, 4, 8};
        const std::size_t wid = widths[idx(rng_, 4)];
        const std::size_t wlen = widths[idx(rng_, 4)];
        quic::put_varint_forced(
            w, id, std::max(wid, quic::varint_size(id)));
        quic::put_varint_forced(
            w, len, std::max(wlen, quic::varint_size(len)));
        w.raw(value);
      }
      return std::move(w).take();
    }
    default:
      return mutate_bytes(body);
  }
}

std::vector<Bytes> Mutator::mutate_initial_flight(const SeedCase& seed) {
  const int kind = rng_.uniform_int(0, 3);
  if (kind == 0) {
    // Rebuild from a structurally mutated CRYPTO stream; vary datagram size
    // so the CHLO splits across 1..N Initials.
    const Bytes stream = mutate_structure(seed.chlo).serialize_handshake();
    auto flight = quic::build_client_initial_flight(
        seed.dcid, seed.scid, stream, 0, rng_.uniform(1200, 1500));
    if (flight.size() > 1 && rng_.bernoulli(0.5)) rng_.shuffle(flight);
    if (rng_.bernoulli(0.3)) flight.push_back(flight[idx(rng_, flight.size())]);
    return flight;
  }

  // Byte-level attacks on the protected flight the observer actually sees.
  std::vector<Bytes> flight;
  flight.reserve(seed.flight.size());
  for (const auto& dg : seed.flight) flight.push_back(dg);
  if (flight.empty()) flight.push_back(mutate_bytes(seed.handshake));
  Bytes& victim = flight[idx(rng_, flight.size())];
  switch (kind) {
    case 1:
      victim = mutate_bytes(std::move(victim));
      break;
    case 2: {  // coalesce: trailing bytes after the Initial's Length window
      Bytes tail(rng_.uniform(1, 64));
      for (auto& b : tail) b = static_cast<std::uint8_t>(rng_.next_u32());
      if (rng_.bernoulli(0.5) && flight.size() > 1)
        tail = flight[(idx(rng_, flight.size()))];  // packet-after-packet
      victim.insert(victim.end(), tail.begin(), tail.end());
      break;
    }
    default:  // truncate one datagram mid-packet
      victim.resize(idx(rng_, victim.size() + 1));
      break;
  }
  return flight;
}

Bytes Mutator::mutate_pcap_blob(const Bytes& blob) {
  return mutate_bytes(blob);
}

}  // namespace vpscope::fuzz
