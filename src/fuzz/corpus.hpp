// Seed corpus for the wire-format torture harness: one valid handshake per
// supported (platform, provider, transport) combination of Table 1, plus the
// unknown stacks the campus population contains. Every seed carries the
// structured ClientHello *and* its serialized wire forms so mutations can be
// applied structurally (re-serialize a modified ClientHello) or at the byte
// level (corrupt the exact bytes an on-path observer would see).
#pragma once

#include <cstdint>
#include <vector>

#include "fingerprint/profiles.hpp"
#include "tls/client_hello.hpp"
#include "util/bytes.hpp"

namespace vpscope::fuzz {

struct SeedCase {
  fingerprint::PlatformId platform;
  fingerprint::Provider provider = fingerprint::Provider::YouTube;
  fingerprint::Transport transport = fingerprint::Transport::Tcp;

  tls::ClientHello chlo;
  Bytes record;     // TLS record bytes (the TCP first-flight payload)
  Bytes handshake;  // Handshake message bytes (the QUIC CRYPTO stream)
  Bytes tp_body;    // quic_transport_parameters body; empty for TCP seeds
  Bytes dcid, scid; // connection ids used for Initial protection (QUIC)
  /// Protected client Initial datagrams carrying `handshake` (QUIC seeds
  /// only). Cached so byte-level mutants skip the per-mutant AEAD cost.
  std::vector<Bytes> flight;
  /// A serialized pcap capture of one full synthesized handshake flow from
  /// this platform/provider/transport (the pcap/net mutation surface) —
  /// LINKTYPE_RAW, plus the same flow wrapped in Ethernet frames so the L2
  /// shim (MAC header, VLAN tags) is on the mutation surface too.
  Bytes pcap_blob;
  Bytes pcap_eth_blob;
};

/// Builds the deterministic seed corpus: all supported Table 1 combinations
/// (TCP and QUIC where available) and every unknown-stack profile. The same
/// seed always yields bit-identical corpora.
std::vector<SeedCase> build_corpus(std::uint64_t seed);

}  // namespace vpscope::fuzz
