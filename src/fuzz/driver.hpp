// Deterministic torture driver: mutant generation loop + oracle dispatch
// per parser target, with failure capture for replay. The ctest `fuzz` lane
// and the libFuzzer standalone runners are both thin wrappers over these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/oracles.hpp"
#include "pipeline/classifier_bank.hpp"

namespace vpscope::fuzz {

struct TortureConfig {
  std::uint64_t seed = 0xf022;
  std::size_t total_mutants = 50'000;
  std::size_t max_failures = 8;  // stop collecting repros past this
};

struct TortureReport {
  std::size_t mutants = 0;
  std::size_t accepted = 0;  // mutants that still parsed as valid
  std::size_t rejected = 0;
  /// Oracle violations, each with the hex mutant embedded for replay.
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
  std::string summary(const char* target) const;
};

TortureReport torture_tls_record(const std::vector<SeedCase>& corpus,
                                 const TortureConfig& config = {});
TortureReport torture_tls_handshake(const std::vector<SeedCase>& corpus,
                                    const TortureConfig& config = {});
TortureReport torture_transport_params(const std::vector<SeedCase>& corpus,
                                       const TortureConfig& config = {});
TortureReport torture_quic_initial(const std::vector<SeedCase>& corpus,
                                   const TortureConfig& config = {});
TortureReport torture_pcap(const std::vector<SeedCase>& corpus,
                           const TortureConfig& config = {});
/// TPACKETv3 block images (rebuilt from each seed's Ethernet capture, then
/// mutated) through the AF_PACKET block walker.
TortureReport torture_afpacket_block(const std::vector<SeedCase>& corpus,
                                     const TortureConfig& config = {});

/// Oracle (c): every mutant record, fed to a trained bank as a handshake
/// observation, must classify without crashing, report confidences in
/// [0, 1], and only claim Composite/Partial outcomes when the corresponding
/// confidence clears the bank's threshold.
TortureReport torture_classifier(const std::vector<SeedCase>& corpus,
                                 const pipeline::ClassifierBank& bank,
                                 const TortureConfig& config = {});

}  // namespace vpscope::fuzz
