// Model persistence: a compact self-describing binary format for trained
// random forests. A production deployment (paper §5.1) trains offline and
// ships model files to the capture servers; these routines are that
// interface. The format is versioned and endian-stable (big-endian via the
// same Writer/Reader the protocol stack uses).
#pragma once

#include <iosfwd>
#include <optional>

#include "ml/forest.hpp"
#include "util/bytes.hpp"

namespace vpscope::ml {

/// Serializes a trained forest (trees, thresholds, leaf distributions).
/// Training-only state (params, rng) is not preserved.
Bytes serialize_forest(const RandomForest& forest);

/// Restores a forest; nullopt on malformed/truncated/mismatched input.
std::optional<RandomForest> deserialize_forest(ByteView data);

bool save_forest(const RandomForest& forest, const std::string& path);
std::optional<RandomForest> load_forest(const std::string& path);

}  // namespace vpscope::ml
