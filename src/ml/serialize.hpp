// Model persistence: a compact self-describing binary format for trained
// random forests. A production deployment (paper §5.1) trains offline and
// ships model files to the capture servers; these routines are that
// interface. The format is versioned and endian-stable (big-endian via the
// same Writer/Reader the protocol stack uses).
//
// Versions:
//   v1  forest only (trees, thresholds, leaf distributions)
//   v2  v1 forest body + the fitted FeatureEncoder dictionaries (transport
//       tag, then per catalog attribute its tokens in id order). A model and
//       its value mapping now travel as one artifact, so a capture server
//       can rebuild the allocation-free encode path without the training
//       data. v1 files still load everywhere; v2 files load through the
//       forest-only readers too (the dictionary block is validated and
//       skipped).
#pragma once

#include <iosfwd>
#include <optional>
#include <system_error>

#include "core/encoder.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/forest.hpp"
#include "ml/quantized_forest.hpp"
#include "util/bytes.hpp"

namespace vpscope::ml {

/// Serializes a trained forest (trees, thresholds, leaf distributions) as
/// format v1. Training-only state (params, rng) is not preserved.
Bytes serialize_forest(const RandomForest& forest);

/// Restores a forest from a v1 or v2 stream (the v2 dictionary block is
/// skipped); nullopt on malformed/truncated/mismatched input.
std::optional<RandomForest> deserialize_forest(ByteView data);

bool save_forest(const RandomForest& forest, const std::string& path);
std::optional<RandomForest> load_forest(const std::string& path);

/// A deserialized model artifact: the forest plus, for v2 streams, the
/// fitted encoder that produced its training features.
struct ForestBundle {
  RandomForest forest;
  std::optional<core::FeatureEncoder> encoder;  // nullopt for v1 files
};

/// Serializes forest + fitted encoder dictionaries as format v2.
Bytes serialize_bundle(const RandomForest& forest,
                       const core::FeatureEncoder& encoder);

/// Restores a bundle from a v1 (encoder absent) or v2 stream.
std::optional<ForestBundle> deserialize_bundle(ByteView data);

bool save_bundle(const RandomForest& forest,
                 const core::FeatureEncoder& encoder, const std::string& path);
std::optional<ForestBundle> load_bundle(const std::string& path);

/// Writes `data` to `path` with every write(2) return value checked: a
/// short write, a full disk, or a failed close surfaces as the std::errc it
/// maps to instead of a silently truncated file. {} on success.
std::error_code write_file_checked(const std::string& path, ByteView data);

/// Atomic publish protocol for model artifacts: write `path`.tmp, fsync the
/// file (and the containing directory), then rename(2) over `path`. A
/// concurrent reader — or a model-dir watcher — observes either the old
/// complete file or the new complete file, never a partial one. The
/// temporary is unlinked on any failure.
std::error_code write_file_atomic_sync(const std::string& path, ByteView data);

/// save_forest/save_bundle through the atomic publish protocol above.
std::error_code save_forest_atomic(const RandomForest& forest,
                                   const std::string& path);
std::error_code save_bundle_atomic(const RandomForest& forest,
                                   const core::FeatureEncoder& encoder,
                                   const std::string& path);

/// Deserializes a forest and lowers it directly into the inference-only
/// compiled form — the capture-server load path: models are trained and
/// serialized offline, then compiled at startup.
std::optional<CompiledForest> deserialize_compiled_forest(ByteView data);
std::optional<CompiledForest> load_compiled_forest(const std::string& path);

/// Same load path lowered into the int16 threshold-rank form (quantization
/// happens at load time — the wire format stays the float v1/v2 forest).
std::optional<QuantizedForest> deserialize_quantized_forest(ByteView data);
std::optional<QuantizedForest> load_quantized_forest(const std::string& path);

}  // namespace vpscope::ml
