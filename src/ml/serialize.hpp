// Model persistence: a compact self-describing binary format for trained
// random forests. A production deployment (paper §5.1) trains offline and
// ships model files to the capture servers; these routines are that
// interface. The format is versioned and endian-stable (big-endian via the
// same Writer/Reader the protocol stack uses).
#pragma once

#include <iosfwd>
#include <optional>

#include "ml/compiled_forest.hpp"
#include "ml/forest.hpp"
#include "util/bytes.hpp"

namespace vpscope::ml {

/// Serializes a trained forest (trees, thresholds, leaf distributions).
/// Training-only state (params, rng) is not preserved.
Bytes serialize_forest(const RandomForest& forest);

/// Restores a forest; nullopt on malformed/truncated/mismatched input.
std::optional<RandomForest> deserialize_forest(ByteView data);

bool save_forest(const RandomForest& forest, const std::string& path);
std::optional<RandomForest> load_forest(const std::string& path);

/// Deserializes a forest and lowers it directly into the inference-only
/// compiled form — the capture-server load path: models are trained and
/// serialized offline, then compiled at startup.
std::optional<CompiledForest> deserialize_compiled_forest(ByteView data);
std::optional<CompiledForest> load_compiled_forest(const std::string& path);

}  // namespace vpscope::ml
