#include "ml/forest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vpscope::ml {

void RandomForest::fit(const Dataset& data, const ForestParams& params) {
  if (data.size() == 0) throw std::invalid_argument("empty dataset");
  trees_.clear();
  num_classes_ = data.num_classes();

  TreeParams tree_params;
  tree_params.max_depth = params.max_depth;
  tree_params.min_samples_split = params.min_samples_split;
  tree_params.max_features =
      params.max_features > 0
          ? params.max_features
          : std::max(1, static_cast<int>(
                            std::lround(std::sqrt(static_cast<double>(
                                data.dim())))));

  Rng rng(params.seed);
  trees_.resize(static_cast<std::size_t>(params.n_trees));
  for (auto& tree : trees_) {
    std::vector<int> rows;
    if (params.bootstrap) {
      rows.resize(data.size());
      for (auto& r : rows)
        r = static_cast<int>(rng.uniform(0, data.size() - 1));
    }
    tree.fit(data, rows, tree_params, num_classes_, rng.fork());
  }
}

std::vector<double> RandomForest::predict_proba(
    const std::vector<double>& x) const {
  std::vector<double> proba(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const auto& p = tree.predict_proba(x);
    for (std::size_t c = 0; c < proba.size(); ++c) proba[c] += p[c];
  }
  if (!trees_.empty())
    for (double& v : proba) v /= static_cast<double>(trees_.size());
  return proba;
}

int RandomForest::predict(const std::vector<double>& x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::pair<int, double> RandomForest::predict_with_confidence(
    const std::vector<double>& x) const {
  const auto proba = predict_proba(x);
  const auto it = std::max_element(proba.begin(), proba.end());
  return {static_cast<int>(it - proba.begin()), *it};
}

std::vector<int> RandomForest::predict_batch(const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.size());
  for (const auto& row : data.x) out.push_back(predict(row));
  return out;
}

std::vector<double> RandomForest::feature_importances() const {
  if (trees_.empty()) return {};
  std::vector<double> sum = trees_.front().feature_importances();
  for (std::size_t t = 1; t < trees_.size(); ++t) {
    const auto imp = trees_[t].feature_importances();
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += imp[i];
  }
  for (double& v : sum) v /= static_cast<double>(trees_.size());
  return sum;
}

}  // namespace vpscope::ml
