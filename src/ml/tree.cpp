#include "ml/tree.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace vpscope::ml {

namespace {

double gini_from_counts(const std::vector<int>& counts, int total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (int c : counts) {
    const double p = static_cast<double>(c) / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

void DecisionTree::fit(const Dataset& data, const std::vector<int>& rows,
                       const TreeParams& params, int num_classes, Rng rng) {
  if (data.size() == 0) throw std::invalid_argument("empty dataset");
  nodes_.clear();
  num_features_ = static_cast<int>(data.dim());
  importances_.assign(static_cast<std::size_t>(num_features_), 0.0);

  std::vector<int> all_rows = rows;
  if (all_rows.empty()) {
    all_rows.resize(data.size());
    std::iota(all_rows.begin(), all_rows.end(), 0);
  }
  build(data, all_rows, 0, params, num_classes, rng);

  // Normalize importances.
  double total = 0.0;
  for (double v : importances_) total += v;
  if (total > 0)
    for (double& v : importances_) v /= total;
}

int DecisionTree::build(const Dataset& data, std::vector<int>& rows,
                        int depth, const TreeParams& params, int num_classes,
                        Rng& rng) {
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_.back().depth = depth;

  std::vector<int> counts(static_cast<std::size_t>(num_classes), 0);
  for (int r : rows) counts[static_cast<std::size_t>(data.y[static_cast<std::size_t>(r)])]++;
  const int n = static_cast<int>(rows.size());
  const double node_gini = gini_from_counts(counts, n);

  auto make_leaf = [&] {
    Node& node = nodes_[static_cast<std::size_t>(node_index)];
    node.proba.resize(static_cast<std::size_t>(num_classes));
    for (int c = 0; c < num_classes; ++c)
      node.proba[static_cast<std::size_t>(c)] =
          n ? static_cast<double>(counts[static_cast<std::size_t>(c)]) / n
            : 0.0;
    return node_index;
  };

  if (depth >= params.max_depth || n < params.min_samples_split ||
      node_gini == 0.0)
    return make_leaf();

  // Candidate feature sample.
  std::vector<int> features(static_cast<std::size_t>(num_features_));
  std::iota(features.begin(), features.end(), 0);
  int n_candidates = num_features_;
  if (params.max_features > 0 && params.max_features < num_features_) {
    rng.shuffle(features);
    n_candidates = params.max_features;
  }

  // Best split search.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_impurity = node_gini;
  std::vector<std::pair<double, int>> sorted;  // (value, label)
  sorted.reserve(rows.size());

  for (int fi = 0; fi < n_candidates; ++fi) {
    const int feature = features[static_cast<std::size_t>(fi)];
    sorted.clear();
    for (int r : rows)
      sorted.emplace_back(
          data.x[static_cast<std::size_t>(r)][static_cast<std::size_t>(feature)],
          data.y[static_cast<std::size_t>(r)]);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;

    std::vector<int> left_counts(static_cast<std::size_t>(num_classes), 0);
    std::vector<int> right_counts = counts;
    int n_left = 0;
    for (int i = 0; i + 1 < n; ++i) {
      const int label = sorted[static_cast<std::size_t>(i)].second;
      left_counts[static_cast<std::size_t>(label)]++;
      right_counts[static_cast<std::size_t>(label)]--;
      ++n_left;
      // Only split between distinct values.
      if (sorted[static_cast<std::size_t>(i)].first ==
          sorted[static_cast<std::size_t>(i + 1)].first)
        continue;
      const int n_right = n - n_left;
      const double impurity =
          (n_left * gini_from_counts(left_counts, n_left) +
           n_right * gini_from_counts(right_counts, n_right)) /
          n;
      if (impurity + 1e-12 < best_impurity) {
        best_impurity = impurity;
        best_feature = feature;
        best_threshold = (sorted[static_cast<std::size_t>(i)].first +
                          sorted[static_cast<std::size_t>(i + 1)].first) /
                         2.0;
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition rows.
  std::vector<int> left_rows, right_rows;
  for (int r : rows) {
    const double v = data.x[static_cast<std::size_t>(r)]
                           [static_cast<std::size_t>(best_feature)];
    (v <= best_threshold ? left_rows : right_rows).push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) return make_leaf();

  importances_[static_cast<std::size_t>(best_feature)] +=
      n * (node_gini - best_impurity);

  rows.clear();
  rows.shrink_to_fit();

  const int left = build(data, left_rows, depth + 1, params, num_classes, rng);
  const int right =
      build(data, right_rows, depth + 1, params, num_classes, rng);
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

const DecisionTree::Node& DecisionTree::descend(
    const std::vector<double>& x) const {
  const Node* node = &nodes_.front();
  while (node->feature >= 0) {
    const double v = x[static_cast<std::size_t>(node->feature)];
    node = &nodes_[static_cast<std::size_t>(v <= node->threshold
                                                ? node->left
                                                : node->right)];
  }
  return *node;
}

int DecisionTree::predict(const std::vector<double>& x) const {
  const auto& proba = descend(x).proba;
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

const std::vector<double>& DecisionTree::predict_proba(
    const std::vector<double>& x) const {
  return descend(x).proba;
}

std::vector<double> DecisionTree::feature_importances() const {
  return importances_;
}

void DecisionTree::serialize(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(num_features_));
  w.u32(static_cast<std::uint32_t>(nodes_.size()));
  for (const Node& node : nodes_) {
    w.u32(static_cast<std::uint32_t>(node.feature + 1));  // -1 -> 0
    w.u64(std::bit_cast<std::uint64_t>(node.threshold));
    w.u32(static_cast<std::uint32_t>(node.left + 1));
    w.u32(static_cast<std::uint32_t>(node.right + 1));
    w.u16(static_cast<std::uint16_t>(node.depth));
    w.u16(static_cast<std::uint16_t>(node.proba.size()));
    for (double p : node.proba) w.u64(std::bit_cast<std::uint64_t>(p));
  }
  w.u16(static_cast<std::uint16_t>(importances_.size()));
  for (double v : importances_) w.u64(std::bit_cast<std::uint64_t>(v));
}

std::optional<DecisionTree> DecisionTree::deserialize(Reader& r) {
  DecisionTree tree;
  tree.num_features_ = static_cast<int>(r.u32());
  const std::uint32_t node_count = r.u32();
  if (!r.ok() || node_count == 0 || node_count > 10'000'000)
    return std::nullopt;
  // Each serialized node occupies at least 24 bytes (feature + threshold +
  // children + depth + proba count); a declared count the input cannot
  // possibly back must not allocate node storage (fuzz: allocation bomb).
  if (node_count > r.remaining() / 24) return std::nullopt;
  tree.nodes_.resize(node_count);
  for (Node& node : tree.nodes_) {
    node.feature = static_cast<int>(r.u32()) - 1;
    node.threshold = std::bit_cast<double>(r.u64());
    node.left = static_cast<int>(r.u32()) - 1;
    node.right = static_cast<int>(r.u32()) - 1;
    node.depth = r.u16();
    const std::uint16_t proba_size = r.u16();
    if (!r.ok() || proba_size > 4096 || proba_size > r.remaining() / 8)
      return std::nullopt;
    node.proba.resize(proba_size);
    for (double& p : node.proba) p = std::bit_cast<double>(r.u64());
    // Structural validation: child indices in range, features sane.
    if (node.feature >= tree.num_features_) return std::nullopt;
    if (node.feature >= 0 &&
        (node.left < 0 || node.right < 0 ||
         node.left >= static_cast<int>(node_count) ||
         node.right >= static_cast<int>(node_count)))
      return std::nullopt;
  }
  // Shape validation: in-degree <= 1 for every node and 0 for the root.
  // Range checks alone admit a child index pointing back at an ancestor;
  // anything walking such a "tree" (descend, CompiledForest's preorder
  // flatten) would loop forever (fuzz: allocation bomb from a single
  // flipped child-index byte).
  std::vector<std::uint8_t> in_degree(node_count, 0);
  for (const Node& node : tree.nodes_) {
    if (node.feature < 0) continue;
    if (++in_degree[static_cast<std::size_t>(node.left)] > 1 ||
        ++in_degree[static_cast<std::size_t>(node.right)] > 1)
      return std::nullopt;
  }
  if (in_degree[0] != 0) return std::nullopt;
  const std::uint16_t importance_size = r.u16();
  if (!r.ok() || importance_size > r.remaining() / 8) return std::nullopt;
  tree.importances_.resize(importance_size);
  for (double& v : tree.importances_) v = std::bit_cast<double>(r.u64());
  if (!r.ok()) return std::nullopt;
  return tree;
}

int DecisionTree::depth() const {
  int max_depth = 0;
  for (const auto& node : nodes_) max_depth = std::max(max_depth, node.depth);
  return max_depth;
}

}  // namespace vpscope::ml
