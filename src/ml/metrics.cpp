#include "ml/metrics.hpp"

#include <cstdio>
#include <stdexcept>

namespace vpscope::ml {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : counts_(static_cast<std::size_t>(num_classes),
              std::vector<std::size_t>(static_cast<std::size_t>(num_classes),
                                       0)) {}

void ConfusionMatrix::add(int truth, int predicted) {
  counts_.at(static_cast<std::size_t>(truth))
      .at(static_cast<std::size_t>(predicted))++;
  ++total_;
  if (truth == predicted) ++correct_;
}

std::size_t ConfusionMatrix::count(int truth, int predicted) const {
  return counts_.at(static_cast<std::size_t>(truth))
      .at(static_cast<std::size_t>(predicted));
}

double ConfusionMatrix::accuracy() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(correct_) /
                           static_cast<double>(total_);
}

double ConfusionMatrix::recall(int cls) const {
  const auto& row = counts_.at(static_cast<std::size_t>(cls));
  std::size_t row_total = 0;
  for (auto c : row) row_total += c;
  if (row_total == 0) return 0.0;
  return static_cast<double>(row[static_cast<std::size_t>(cls)]) /
         static_cast<double>(row_total);
}

double ConfusionMatrix::precision(int cls) const {
  std::size_t col_total = 0;
  for (const auto& row : counts_)
    col_total += row[static_cast<std::size_t>(cls)];
  if (col_total == 0) return 0.0;
  return static_cast<double>(
             counts_[static_cast<std::size_t>(cls)]
                    [static_cast<std::size_t>(cls)]) /
         static_cast<double>(col_total);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  int n = 0;
  for (int c = 0; c < num_classes(); ++c) {
    const double p = precision(c);
    const double r = recall(c);
    sum += (p + r) > 0 ? 2 * p * r / (p + r) : 0.0;
    ++n;
  }
  return n ? sum / n : 0.0;
}

double ConfusionMatrix::normalized(int truth, int predicted) const {
  const auto& row = counts_.at(static_cast<std::size_t>(truth));
  std::size_t row_total = 0;
  for (auto c : row) row_total += c;
  if (row_total == 0) return 0.0;
  return static_cast<double>(row[static_cast<std::size_t>(predicted)]) /
         static_cast<double>(row_total);
}

std::string ConfusionMatrix::to_string(
    const std::vector<std::string>& class_names) const {
  std::string out;
  std::size_t width = 8;
  for (const auto& name : class_names) width = std::max(width, name.size() + 1);

  auto pad = [&](const std::string& s) {
    std::string cell = s;
    cell.resize(width, ' ');
    return cell;
  };

  out += pad("truth\\pred");
  for (int c = 0; c < num_classes(); ++c)
    out += pad(c < static_cast<int>(class_names.size())
                   ? class_names[static_cast<std::size_t>(c)]
                   : std::to_string(c));
  out += '\n';
  for (int t = 0; t < num_classes(); ++t) {
    out += pad(t < static_cast<int>(class_names.size())
                   ? class_names[static_cast<std::size_t>(t)]
                   : std::to_string(t));
    for (int p = 0; p < num_classes(); ++p) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.2f", normalized(t, p));
      out += pad(buf);
    }
    out += '\n';
  }
  return out;
}

double accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted) {
  if (truth.size() != predicted.size())
    throw std::invalid_argument("accuracy: size mismatch");
  if (truth.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    correct += truth[i] == predicted[i];
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

}  // namespace vpscope::ml
