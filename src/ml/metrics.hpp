// Classification metrics: accuracy, per-class recall/precision, and the
// confusion matrices of the paper's Fig. 6(b)-(d).
#pragma once

#include <string>
#include <vector>

namespace vpscope::ml {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void add(int truth, int predicted);

  int num_classes() const { return static_cast<int>(counts_.size()); }
  std::size_t total() const { return total_; }
  std::size_t count(int truth, int predicted) const;

  double accuracy() const;
  /// Recall of one class (the diagonal of the row-normalized matrix the
  /// paper plots). Returns 0 for empty classes.
  double recall(int cls) const;
  double precision(int cls) const;
  /// Unweighted mean of per-class F1 scores.
  double macro_f1() const;

  /// Row-normalized fraction: P(predicted | truth).
  double normalized(int truth, int predicted) const;

  /// Renders the row-normalized matrix with class names.
  std::string to_string(const std::vector<std::string>& class_names) const;

 private:
  std::vector<std::vector<std::size_t>> counts_;
  std::size_t total_ = 0;
  std::size_t correct_ = 0;
};

double accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted);

}  // namespace vpscope::ml
