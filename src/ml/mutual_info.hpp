// Discrete mutual information / information gain (paper §4.2.2): the
// importance metric behind Fig. 5 and Fig. 14. Computed over discrete
// outcome signatures: I(X;Y) = H(X) + H(Y) - H(X,Y), in bits.
#pragma once

#include <string>
#include <vector>

namespace vpscope::ml {

/// Shannon entropy (bits) of a discrete sample given as outcome ids.
double entropy(const std::vector<int>& outcomes);

/// Mutual information (bits) between two aligned discrete samples.
double mutual_information(const std::vector<int>& xs,
                          const std::vector<int>& ys);

/// Convenience for string-valued outcomes (attribute signatures).
double mutual_information(const std::vector<std::string>& xs,
                          const std::vector<int>& ys);

/// Number of distinct outcomes.
int unique_count(const std::vector<std::string>& xs);

}  // namespace vpscope::ml
