// Tabular dataset container and index utilities for the from-scratch ML
// stack (the paper used scikit-learn; re-implemented here so the entire
// Fig. 4 pipeline runs in-process).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace vpscope::ml {

struct Dataset {
  std::vector<std::vector<double>> x;  // row-major feature matrix
  std::vector<int> y;                  // class labels, 0-based but sparse ok

  std::size_t size() const { return x.size(); }
  std::size_t dim() const { return x.empty() ? 0 : x.front().size(); }

  /// Number of distinct labels present.
  int num_classes() const;

  /// Rows selected by index.
  Dataset subset(const std::vector<int>& rows) const;

  /// Columns selected by index (feature projection for attribute-subset
  /// models).
  Dataset project(const std::vector<int>& cols) const;
};

/// Stratified k-fold assignment: returns fold id per row, preserving class
/// proportions; deterministic for a seed.
std::vector<int> stratified_fold_ids(const std::vector<int>& labels, int k,
                                     std::uint64_t seed);

/// Splits rows into (train, test) index sets for one fold id.
void split_fold(const std::vector<int>& fold_ids, int test_fold,
                std::vector<int>* train_rows, std::vector<int>* test_rows);

/// Stratified train/test split with the given test fraction.
void stratified_split(const std::vector<int>& labels, double test_fraction,
                      std::uint64_t seed, std::vector<int>* train_rows,
                      std::vector<int>* test_rows);

}  // namespace vpscope::ml
