#include "ml/quantized_forest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vpscope::ml {

namespace {

/// Same flow grouping as the compiled batch kernels, so both variants
/// partition a batch identically.
constexpr std::size_t kGroupLanes = 8;

constexpr std::int16_t kMaxRank = std::numeric_limits<std::int16_t>::max();

}  // namespace

QuantizedForest QuantizedForest::quantize(const RandomForest& forest) {
  QuantizedForest out;
  out.num_classes_ = forest.num_classes();

  std::size_t total_nodes = 0;
  int max_feature = -1;
  for (const auto& tree : forest.trees()) {
    total_nodes += tree.nodes().size();
    for (const auto& node : tree.nodes())
      if (node.feature > max_feature) max_feature = node.feature;
  }
  if (total_nodes > static_cast<std::size_t>(
                        std::numeric_limits<std::int32_t>::max()))
    throw std::invalid_argument("forest too large to quantize");
  if (max_feature > static_cast<int>(kMaxRank))
    throw std::invalid_argument(
        "quantize: feature index exceeds the int16 envelope");
  out.n_features_ = max_feature + 1;

  // Pass 1: per-feature sorted distinct threshold tables ("cuts").
  std::vector<std::vector<double>> cuts(
      static_cast<std::size_t>(out.n_features_));
  for (const auto& tree : forest.trees())
    for (const auto& node : tree.nodes())
      if (node.feature >= 0)
        cuts[static_cast<std::size_t>(node.feature)].push_back(node.threshold);
  out.cut_offsets_.reserve(static_cast<std::size_t>(out.n_features_) + 1);
  out.cut_offsets_.push_back(0);
  for (auto& feature_cuts : cuts) {
    std::sort(feature_cuts.begin(), feature_cuts.end());
    feature_cuts.erase(
        std::unique(feature_cuts.begin(), feature_cuts.end()),
        feature_cuts.end());
    if (feature_cuts.size() > static_cast<std::size_t>(kMaxRank))
      throw std::invalid_argument(
          "quantize: per-feature threshold count exceeds the int16 envelope");
    out.cuts_.insert(out.cuts_.end(), feature_cuts.begin(),
                     feature_cuts.end());
    out.cut_offsets_.push_back(static_cast<std::int32_t>(out.cuts_.size()));
  }

  // Pass 2: lower the trees, mapping each split threshold to its rank.
  out.nodes_.reserve(total_nodes);
  out.roots_.reserve(forest.trees().size());
  for (const auto& tree : forest.trees()) {
    const auto base = static_cast<std::int32_t>(out.nodes_.size());
    out.roots_.push_back(base);
    for (const auto& node : tree.nodes()) {
      Node lowered;
      if (node.feature >= 0) {
        const auto& feature_cuts = cuts[static_cast<std::size_t>(node.feature)];
        const auto rank_it = std::lower_bound(
            feature_cuts.begin(), feature_cuts.end(), node.threshold);
        lowered.feature = static_cast<std::int16_t>(node.feature);
        lowered.qthreshold =
            static_cast<std::int16_t>(rank_it - feature_cuts.begin());
        lowered.left = base + static_cast<std::int32_t>(node.left);
        lowered.right = base + static_cast<std::int32_t>(node.right);
      } else {
        lowered.left = static_cast<std::int32_t>(out.leaf_proba_.size());
        // Padded to num_classes like the compiled form; scores round to
        // nearest so each contributes <= 0.5 scaled error (the margin bound
        // the fallback test relies on).
        for (int c = 0; c < out.num_classes_; ++c) {
          const double p = c < static_cast<int>(node.proba.size())
                               ? node.proba[static_cast<std::size_t>(c)]
                               : 0.0;
          out.leaf_proba_.push_back(p);
          out.leaf_score_.push_back(static_cast<std::int16_t>(
              std::lround(p * static_cast<double>(kScoreScale))));
        }
      }
      out.nodes_.push_back(lowered);
    }
  }
  return out;
}

void QuantizedForest::quantize_row(std::span<const double> x,
                                   std::int16_t* qx) const {
  const std::size_t dim = x.size();
  const auto n_features = static_cast<std::size_t>(n_features_);
  for (std::size_t f = 0; f < dim; ++f) {
    if (f >= n_features) {
      qx[f] = 0;  // the forest never splits on it
      continue;
    }
    const double* begin = cuts_.data() + cut_offsets_[f];
    const double* end = cuts_.data() + cut_offsets_[f + 1];
    if (std::isnan(x[f])) {
      // x <= t is false for NaN at every split; the +inf rank reproduces
      // that (rank(t) < end-begin <= kMaxRank).
      qx[f] = kMaxRank;
      continue;
    }
    // Q(x) = count of cuts strictly below x = lower_bound index.
    qx[f] = static_cast<std::int16_t>(std::lower_bound(begin, end, x[f]) -
                                     begin);
  }
}

void QuantizedForest::descend_group(const std::int16_t* qx, std::size_t dim,
                                    std::size_t lanes, std::int32_t* scores,
                                    std::int32_t* leaves) const {
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  const std::size_t n_trees = roots_.size();
  std::int32_t cur[kGroupLanes];
  for (std::size_t t = 0; t < n_trees; ++t) {
    for (std::size_t j = 0; j < lanes; ++j) cur[j] = roots_[t];
    for (bool active = true; active;) {
      active = false;
      for (std::size_t j = 0; j < lanes; ++j) {
        const Node& node = nodes_[static_cast<std::size_t>(cur[j])];
        if (node.feature >= 0) {
          const std::int16_t q =
              qx[j * dim + static_cast<std::size_t>(node.feature)];
          cur[j] = q <= node.qthreshold ? node.left : node.right;
          active = true;
        }
      }
    }
    for (std::size_t j = 0; j < lanes; ++j) {
      const std::int32_t leaf =
          nodes_[static_cast<std::size_t>(cur[j])].left;
      leaves[j * n_trees + t] = leaf;
      const std::int16_t* score =
          leaf_score_.data() + static_cast<std::size_t>(leaf);
      std::int32_t* row_scores = scores + j * n_classes;
      for (std::size_t c = 0; c < n_classes; ++c) row_scores[c] += score[c];
    }
  }
}

int QuantizedForest::resolve_label(const std::int32_t* scores,
                                   const std::int32_t* leaves,
                                   Scratch& scratch) const {
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  const auto n_trees = static_cast<std::int32_t>(roots_.size());
  std::size_t best = 0;
  for (std::size_t c = 1; c < n_classes; ++c)
    if (scores[c] > scores[best]) best = c;
  // Margin test: every leaf score carries <= 0.5 scaled rounding error, so
  // two classes can only have swapped (or tied) under quantization when
  // their int32 gap is within tree_count. Outside that margin the int
  // argmax provably equals the float argmax (which is then unique).
  bool certain = true;
  for (std::size_t c = 0; c < n_classes && certain; ++c)
    if (c != best && scores[best] - scores[c] <= n_trees) certain = false;
  if (certain) return static_cast<int>(best);
  // Exact fallback: re-accumulate the SAME leaves in doubles, in tree
  // order, then first-maximum argmax — precisely the float path's
  // arithmetic, so ties and near-ties resolve identically.
  scratch.proba.assign(n_classes, 0.0);
  for (std::int32_t t = 0; t < n_trees; ++t) {
    const double* proba =
        leaf_proba_.data() +
        static_cast<std::size_t>(leaves[static_cast<std::size_t>(t)]);
    for (std::size_t c = 0; c < n_classes; ++c) scratch.proba[c] += proba[c];
  }
  std::size_t exact_best = 0;
  for (std::size_t c = 1; c < n_classes; ++c)
    if (scratch.proba[c] > scratch.proba[exact_best]) exact_best = c;
  return static_cast<int>(exact_best);
}

int QuantizedForest::predict(std::span<const double> x,
                             Scratch& scratch) const {
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  const std::size_t n_trees = roots_.size();
  scratch.qx.resize(x.size());
  quantize_row(x, scratch.qx.data());
  scratch.leaves.resize(n_trees);
  std::int32_t scores[64];
  std::vector<std::int32_t> heap_scores;
  std::int32_t* row_scores = scores;
  if (n_classes > 64) {
    heap_scores.assign(n_classes, 0);
    row_scores = heap_scores.data();
  } else {
    std::fill(scores, scores + n_classes, 0);
  }
  descend_group(scratch.qx.data(), x.size(), 1, row_scores,
                scratch.leaves.data());
  return resolve_label(row_scores, scratch.leaves.data(), scratch);
}

std::pair<int, double> QuantizedForest::predict_with_confidence(
    std::span<const double> x, Scratch& scratch) const {
  const int label = predict(x, scratch);
  // Exact probability of the winning class, reconstructed from the
  // descended leaves (scratch.leaves is still valid from predict) with the
  // float path's accumulate-then-divide arithmetic.
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  const std::size_t n_trees = roots_.size();
  scratch.proba.assign(n_classes, 0.0);
  for (std::size_t t = 0; t < n_trees; ++t) {
    const double* proba =
        leaf_proba_.data() + static_cast<std::size_t>(scratch.leaves[t]);
    for (std::size_t c = 0; c < n_classes; ++c) scratch.proba[c] += proba[c];
  }
  if (n_trees > 0)
    for (std::size_t c = 0; c < n_classes; ++c)
      scratch.proba[c] /= static_cast<double>(n_trees);
  return {label, n_classes > 0
                     ? scratch.proba[static_cast<std::size_t>(label)]
                     : 0.0};
}

void QuantizedForest::predict_batch(std::span<const double> matrix,
                                    std::size_t dim, std::span<int> out,
                                    Scratch& scratch) const {
  if (dim == 0) throw std::invalid_argument("predict_batch: dim == 0");
  const std::size_t rows = std::min(matrix.size() / dim, out.size());
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  const std::size_t n_trees = roots_.size();
  if (rows == 0) return;
  scratch.qx.resize(rows * dim);
  for (std::size_t r = 0; r < rows; ++r)
    quantize_row(matrix.subspan(r * dim, dim), scratch.qx.data() + r * dim);
  scratch.leaves.resize(kGroupLanes * n_trees);
  std::vector<std::int32_t> scores(kGroupLanes * n_classes);
  for (std::size_t r0 = 0; r0 < rows; r0 += kGroupLanes) {
    const std::size_t lanes = std::min(kGroupLanes, rows - r0);
    std::fill(scores.begin(), scores.end(), 0);
    descend_group(scratch.qx.data() + r0 * dim, dim, lanes, scores.data(),
                  scratch.leaves.data());
    for (std::size_t j = 0; j < lanes; ++j)
      out[r0 + j] = resolve_label(scores.data() + j * n_classes,
                                  scratch.leaves.data() + j * n_trees,
                                  scratch);
  }
}

std::size_t QuantizedForest::memory_bytes() const {
  return nodes_.size() * sizeof(Node) +
         roots_.size() * sizeof(std::int32_t) +
         leaf_score_.size() * sizeof(std::int16_t) +
         leaf_proba_.size() * sizeof(double) +
         cuts_.size() * sizeof(double) +
         cut_offsets_.size() * sizeof(std::int32_t);
}

}  // namespace vpscope::ml
