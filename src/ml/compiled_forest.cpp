#include "ml/compiled_forest.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace vpscope::ml {

CompiledForest CompiledForest::compile(const RandomForest& forest) {
  CompiledForest out;
  out.num_classes_ = forest.num_classes();

  std::size_t total_nodes = 0;
  for (const auto& tree : forest.trees()) total_nodes += tree.nodes().size();
  if (total_nodes > static_cast<std::size_t>(
                        std::numeric_limits<std::int32_t>::max()))
    throw std::invalid_argument("forest too large to compile");
  out.nodes_.reserve(total_nodes);
  out.roots_.reserve(forest.trees().size());

  for (const auto& tree : forest.trees()) {
    const auto base = static_cast<std::int32_t>(out.nodes_.size());
    out.roots_.push_back(base);
    for (const auto& node : tree.nodes()) {
      Node compiled;
      if (node.feature >= 0) {
        compiled.feature = static_cast<std::int32_t>(node.feature);
        compiled.threshold = node.threshold;
        compiled.left = base + static_cast<std::int32_t>(node.left);
        compiled.right = base + static_cast<std::int32_t>(node.right);
      } else {
        compiled.left =
            static_cast<std::int32_t>(out.leaf_proba_.size());
        // Leaf distributions are stored padded to num_classes so every leaf
        // contributes a full-width class vector to the accumulation.
        for (int c = 0; c < out.num_classes_; ++c)
          out.leaf_proba_.push_back(
              c < static_cast<int>(node.proba.size())
                  ? node.proba[static_cast<std::size_t>(c)]
                  : 0.0);
      }
      out.nodes_.push_back(compiled);
    }
  }
  return out;
}

void CompiledForest::predict_proba_into(std::span<const double> x,
                                        std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  const std::size_t n_trees = roots_.size();
  // Interleaved descent: advance up to kLanes trees per sweep so their
  // (mutually independent) node loads overlap in the memory pipeline
  // instead of paying one serialized dependent-load chain per tree. Lanes
  // that reached a leaf re-test a cached node until the whole block is
  // done, which is cheaper than maintaining an active set.
  constexpr std::size_t kLanes = 16;
  std::int32_t cur[kLanes];
  for (std::size_t t0 = 0; t0 < n_trees; t0 += kLanes) {
    const std::size_t lanes = std::min(kLanes, n_trees - t0);
    for (std::size_t j = 0; j < lanes; ++j) cur[j] = roots_[t0 + j];
    for (bool active = true; active;) {
      active = false;
      for (std::size_t j = 0; j < lanes; ++j) {
        const Node& node = nodes_[static_cast<std::size_t>(cur[j])];
        if (node.feature >= 0) {
          cur[j] = x[static_cast<std::size_t>(node.feature)] <= node.threshold
                       ? node.left
                       : node.right;
          active = true;
        }
      }
    }
    // Leaf contributions are accumulated in tree order regardless of which
    // lane finished first — the addition order (and therefore the result)
    // stays bit-identical to RandomForest::predict_proba.
    for (std::size_t j = 0; j < lanes; ++j) {
      const double* proba =
          leaf_proba_.data() +
          static_cast<std::size_t>(
              nodes_[static_cast<std::size_t>(cur[j])].left);
      for (std::size_t c = 0; c < n_classes; ++c) out[c] += proba[c];
    }
  }
  // Division (not multiply-by-reciprocal) keeps the rounding identical to
  // RandomForest::predict_proba — the equivalence guarantee is bit-exact.
  if (!roots_.empty()) {
    const auto n_trees = static_cast<double>(roots_.size());
    for (std::size_t c = 0; c < n_classes; ++c) out[c] /= n_trees;
  }
}

int CompiledForest::predict(std::span<const double> x,
                            Scratch& scratch) const {
  return predict_with_confidence(x, scratch).first;
}

std::pair<int, double> CompiledForest::predict_with_confidence(
    std::span<const double> x, Scratch& scratch) const {
  scratch.proba.resize(static_cast<std::size_t>(num_classes_));
  predict_proba_into(x, scratch.proba);
  const auto it = std::max_element(scratch.proba.begin(), scratch.proba.end());
  return {static_cast<int>(it - scratch.proba.begin()), *it};
}

void CompiledForest::predict_batch(std::span<const double> matrix,
                                   std::size_t dim, std::span<int> out,
                                   Scratch& scratch) const {
  if (dim == 0) throw std::invalid_argument("predict_batch: dim == 0");
  const std::size_t rows = matrix.size() / dim;
  for (std::size_t r = 0; r < rows && r < out.size(); ++r)
    out[r] = predict(matrix.subspan(r * dim, dim), scratch);
}

std::vector<int> CompiledForest::predict_batch(const Dataset& data) const {
  Scratch scratch;
  std::vector<int> out;
  out.reserve(data.size());
  for (const auto& row : data.x) out.push_back(predict(row, scratch));
  return out;
}

std::size_t CompiledForest::memory_bytes() const {
  return nodes_.size() * sizeof(Node) +
         leaf_proba_.size() * sizeof(double) +
         roots_.size() * sizeof(std::int32_t);
}

}  // namespace vpscope::ml
