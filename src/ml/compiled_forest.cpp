#include "ml/compiled_forest.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define VPSCOPE_X86 1
#else
#define VPSCOPE_X86 0
#endif

namespace vpscope::ml {

namespace {

/// Flows per descent group. Matches the AVX2 gather width (8 x int32
/// cursors); the scalar and SSE2 kernels use the same grouping so all
/// levels partition rows identically.
constexpr std::size_t kGroupLanes = 8;

CompiledForest::Simd resolve_simd(CompiledForest::Simd level) {
  if (level != CompiledForest::Simd::Auto) return level;
  static const CompiledForest::Simd best = [] {
    if (CompiledForest::simd_supported(CompiledForest::Simd::Avx2))
      return CompiledForest::Simd::Avx2;
    if (CompiledForest::simd_supported(CompiledForest::Simd::Sse2))
      return CompiledForest::Simd::Sse2;
    return CompiledForest::Simd::Scalar;
  }();
  return best;
}

}  // namespace

bool CompiledForest::simd_supported(Simd level) {
  switch (level) {
    case Simd::Auto:
    case Simd::Scalar:
      return true;
    case Simd::Sse2:
#if VPSCOPE_X86
      return __builtin_cpu_supports("sse2") != 0;
#else
      return false;
#endif
    case Simd::Avx2:
#if VPSCOPE_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

CompiledForest CompiledForest::compile(const RandomForest& forest) {
  CompiledForest out;
  out.num_classes_ = forest.num_classes();

  std::size_t total_nodes = 0;
  for (const auto& tree : forest.trees()) total_nodes += tree.nodes().size();
  if (total_nodes > static_cast<std::size_t>(
                        std::numeric_limits<std::int32_t>::max()))
    throw std::invalid_argument("forest too large to compile");
  out.nodes_.reserve(total_nodes);
  out.roots_.reserve(forest.trees().size());

  // Each tree is emitted in PREORDER (left subtree immediately after its
  // parent), so an internal node's left child is always `cur + 1`. The
  // kernels then never load a left index — descent needs only (feature,
  // threshold, right), and the common left step walks sequentially through
  // memory. The traversal order of any input row is unchanged, so results
  // are bit-identical to the source-order layout.
  std::vector<std::int32_t> order;   // preorder sequence of source indices
  std::vector<std::int32_t> remap;   // source index -> compiled offset
  std::vector<std::int32_t> stack;
  for (const auto& tree : forest.trees()) {
    const auto& src = tree.nodes();
    const auto base = static_cast<std::int32_t>(out.nodes_.size());
    out.roots_.push_back(base);

    order.clear();
    remap.assign(src.size(), -1);
    stack.assign(1, 0);  // root is node 0 in DecisionTree's layout
    while (!stack.empty()) {
      const std::int32_t at = stack.back();
      stack.pop_back();
      // A node revisited during the flatten means the source has a cycle
      // (DecisionTree::deserialize rejects those; a hand-built forest could
      // still carry one) — fail loudly instead of growing `order` forever.
      if (remap[static_cast<std::size_t>(at)] != -1)
        throw std::invalid_argument("cycle in decision tree");
      remap[static_cast<std::size_t>(at)] =
          base + static_cast<std::int32_t>(order.size());
      order.push_back(at);
      const auto& node = src[static_cast<std::size_t>(at)];
      if (node.feature >= 0) {
        stack.push_back(static_cast<std::int32_t>(node.right));
        stack.push_back(static_cast<std::int32_t>(node.left));  // next out
      }
    }

    for (const std::int32_t at : order) {
      const auto& node = src[static_cast<std::size_t>(at)];
      Node compiled;
      if (node.feature >= 0) {
        compiled.feature = static_cast<std::int32_t>(node.feature);
        compiled.threshold = node.threshold;
        compiled.left = remap[static_cast<std::size_t>(node.left)];
        compiled.right = remap[static_cast<std::size_t>(node.right)];
      } else {
        compiled.left =
            static_cast<std::int32_t>(out.leaf_proba_.size());
        // Leaf distributions are stored padded to num_classes so every leaf
        // contributes a full-width class vector to the accumulation; the
        // sparse mirror records just the nonzero entries for the bitmask
        // scorer (skipping +0.0 addends is bit-exact — see the header).
        if (out.sparse_begin_.empty()) out.sparse_begin_.push_back(0);
        for (int c = 0; c < out.num_classes_; ++c) {
          const double p = c < static_cast<int>(node.proba.size())
                               ? node.proba[static_cast<std::size_t>(c)]
                               : 0.0;
          out.leaf_proba_.push_back(p);
          if (p != 0.0) {
            out.sparse_cls_.push_back(c);
            out.sparse_val_.push_back(p);
          }
        }
        out.sparse_begin_.push_back(
            static_cast<std::int32_t>(out.sparse_cls_.size()));
      }
      out.nodes_.push_back(compiled);
    }
  }

  // SoA planes for the cross-flow kernels. Leaves keep feature = -1 and
  // carry their leaf-block offset in the left plane; their threshold is 0.0
  // so a masked-out lane's gather still reads in-bounds memory. The meta
  // plane packs (feature << 32 | right-or-leaf-offset): one 64-bit gather
  // per lane fetches everything but the threshold.
  out.soa_meta_.reserve(out.nodes_.size());
  out.soa_feature_.reserve(out.nodes_.size());
  out.soa_left_.reserve(out.nodes_.size());
  out.soa_right_.reserve(out.nodes_.size());
  out.soa_threshold_.reserve(out.nodes_.size());
  for (const Node& node : out.nodes_) {
    const std::uint32_t low = static_cast<std::uint32_t>(
        node.feature >= 0 ? node.right : node.left);  // child or leaf block
    out.soa_meta_.push_back(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node.feature))
         << 32) |
        low);
    out.soa_feature_.push_back(node.feature);
    out.soa_left_.push_back(node.left);
    out.soa_right_.push_back(node.right);
    out.soa_threshold_.push_back(node.threshold);
  }
  out.build_bitmask_scorer();
  return out;
}

// Builds the QuickScorer planes (see the header). Walks each compiled tree
// recursively: leaves are numbered left-to-right (preorder with left-first
// emission makes encounter order = left-to-right), and every internal node
// records the 64-bit complement of its left subtree's leaf range together
// with its (feature, threshold, tree). The lists are then bucketed by
// feature and sorted by threshold so scoring walks a plain prefix.
void CompiledForest::build_bitmask_scorer() {
  qs_ok_ = !roots_.empty();
  if (!qs_ok_) return;

  struct Entry {
    std::int32_t feature;
    double threshold;
    std::int32_t tree;
    std::uint64_t mask;
  };
  std::vector<Entry> entries;
  entries.reserve(nodes_.size());
  qs_tree_full_.reserve(roots_.size());
  qs_leaf_base_.reserve(roots_.size());

  // (first leaf position, leaf count) of the subtree rooted at `at`.
  int n_leaves = 0;
  const auto walk = [&](auto&& self, std::int32_t at,
                        std::int32_t tree) -> std::pair<int, int> {
    const Node& node = nodes_[static_cast<std::size_t>(at)];
    if (node.feature < 0) {
      const int pos = n_leaves++;
      qs_leaf_off_.push_back(node.left);
      return {pos, 1};
    }
    const auto left = self(self, at + 1, tree);  // preorder: left is next
    const auto right = self(self, node.right, tree);
    const std::uint64_t left_mask =
        left.second >= 64 ? ~0ull
                          : ((1ull << left.second) - 1)
                                << static_cast<unsigned>(left.first);
    entries.push_back({node.feature, node.threshold, tree, ~left_mask});
    return {left.first, left.second + right.second};
  };
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    qs_leaf_base_.push_back(static_cast<std::int32_t>(qs_leaf_off_.size()));
    n_leaves = 0;
    walk(walk, roots_[t], static_cast<std::int32_t>(t));
    if (n_leaves > 64) {
      // A tree this deep cannot be represented in one 64-bit leaf mask;
      // the batch path falls back to the traversal kernels.
      qs_ok_ = false;
      qs_tree_full_.clear();
      qs_leaf_base_.clear();
      qs_leaf_off_.clear();
      return;
    }
    qs_tree_full_.push_back(n_leaves >= 64 ? ~0ull : (1ull << n_leaves) - 1);
  }

  std::int32_t max_feature = -1;
  for (const Entry& e : entries) max_feature = std::max(max_feature, e.feature);
  qs_f_begin_.assign(static_cast<std::size_t>(max_feature + 2), 0);
  for (const Entry& e : entries)
    ++qs_f_begin_[static_cast<std::size_t>(e.feature) + 1];
  for (std::size_t f = 1; f < qs_f_begin_.size(); ++f)
    qs_f_begin_[f] += qs_f_begin_[f - 1];
  std::vector<Entry> sorted(entries.size());
  {
    auto at = qs_f_begin_;
    for (const Entry& e : entries)
      sorted[static_cast<std::size_t>(at[static_cast<std::size_t>(e.feature)]++)] =
          e;
  }
  for (std::size_t f = 0; f + 1 < qs_f_begin_.size(); ++f)
    std::sort(sorted.begin() + qs_f_begin_[f],
              sorted.begin() + qs_f_begin_[f + 1],
              [](const Entry& a, const Entry& b) {
                return a.threshold < b.threshold;
              });
  qs_thresh_.reserve(sorted.size());
  qs_tree_.reserve(sorted.size());
  qs_mask_.reserve(sorted.size());
  for (const Entry& e : sorted) {
    qs_thresh_.push_back(e.threshold);
    qs_tree_.push_back(e.tree);
    qs_mask_.push_back(e.mask);
  }
}

void CompiledForest::predict_proba_into(std::span<const double> x,
                                        std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  const std::size_t n_trees = roots_.size();
  // Interleaved descent: advance up to kLanes trees per sweep so their
  // (mutually independent) node loads overlap in the memory pipeline
  // instead of paying one serialized dependent-load chain per tree. Lanes
  // that reached a leaf re-test a cached node until the whole block is
  // done, which is cheaper than maintaining an active set.
  constexpr std::size_t kLanes = 16;
  std::int32_t cur[kLanes];
  for (std::size_t t0 = 0; t0 < n_trees; t0 += kLanes) {
    const std::size_t lanes = std::min(kLanes, n_trees - t0);
    for (std::size_t j = 0; j < lanes; ++j) cur[j] = roots_[t0 + j];
    for (bool active = true; active;) {
      active = false;
      for (std::size_t j = 0; j < lanes; ++j) {
        const Node& node = nodes_[static_cast<std::size_t>(cur[j])];
        if (node.feature >= 0) {
          cur[j] = x[static_cast<std::size_t>(node.feature)] <= node.threshold
                       ? node.left
                       : node.right;
          active = true;
        }
      }
    }
    // Leaf contributions are accumulated in tree order regardless of which
    // lane finished first — the addition order (and therefore the result)
    // stays bit-identical to RandomForest::predict_proba.
    for (std::size_t j = 0; j < lanes; ++j) {
      const double* proba =
          leaf_proba_.data() +
          static_cast<std::size_t>(
              nodes_[static_cast<std::size_t>(cur[j])].left);
      for (std::size_t c = 0; c < n_classes; ++c) out[c] += proba[c];
    }
  }
  // Division (not multiply-by-reciprocal) keeps the rounding identical to
  // RandomForest::predict_proba — the equivalence guarantee is bit-exact.
  if (!roots_.empty()) {
    const auto n_trees = static_cast<double>(roots_.size());
    for (std::size_t c = 0; c < n_classes; ++c) out[c] /= n_trees;
  }
}

int CompiledForest::predict(std::span<const double> x,
                            Scratch& scratch) const {
  return predict_with_confidence(x, scratch).first;
}

std::pair<int, double> CompiledForest::predict_with_confidence(
    std::span<const double> x, Scratch& scratch) const {
  scratch.proba.resize(static_cast<std::size_t>(num_classes_));
  predict_proba_into(x, scratch.proba);
  const auto it = std::max_element(scratch.proba.begin(), scratch.proba.end());
  return {static_cast<int>(it - scratch.proba.begin()), *it};
}

// ---------------------------------------------------------------------------
// Cross-flow batch kernels. All three descend ONE tree for the whole batch,
// in groups of up to kGroupLanes flows at once: lane = flow. Iterating
// tree-outer (the driver loop in predict_proba_batch) keeps that tree's
// node planes cache-hot across every row of the batch, so the forest
// streams through the cache hierarchy once per BATCH instead of once per
// flow — that reuse, not the SIMD compare, is most of the batching win.
// Every kernel accumulates leaf distributions per row strictly in tree
// order (the driver's outer loop) and the split compare is an exact double
// <=, so the probabilities are bit-identical across levels and to the
// per-flow path.
// ---------------------------------------------------------------------------

void CompiledForest::descend_tree_scalar(std::int32_t root,
                                         const double* matrix,
                                         std::size_t dim, std::size_t rows,
                                         double* acc) const {
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  const Node* nodes = nodes_.data();
  std::int32_t cur[kGroupLanes];
  for (std::size_t r0 = 0; r0 < rows; r0 += kGroupLanes) {
    const std::size_t lanes = std::min(kGroupLanes, rows - r0);
    const double* group = matrix + r0 * dim;
    for (std::size_t j = 0; j < lanes; ++j) cur[j] = root;
    for (bool active = true; active;) {
      active = false;
      for (std::size_t j = 0; j < lanes; ++j) {
        // AoS access on purpose: one cache line per visited node beats the
        // four-plane SoA walk when the lane advances serially.
        const Node& node = nodes[static_cast<std::size_t>(cur[j])];
        if (node.feature >= 0) {
          const double x =
              group[j * dim + static_cast<std::size_t>(node.feature)];
          // Preorder layout: the left child is the next node.
          cur[j] = x <= node.threshold ? cur[j] + 1 : node.right;
          active = true;
        }
      }
    }
    for (std::size_t j = 0; j < lanes; ++j) {
      const double* proba =
          leaf_proba_.data() +
          static_cast<std::size_t>(nodes[static_cast<std::size_t>(cur[j])].left);
      double* row_acc = acc + (r0 + j) * n_classes;
      for (std::size_t c = 0; c < n_classes; ++c) row_acc[c] += proba[c];
    }
  }
}

// ---------------------------------------------------------------------------
// Bitmask scorer kernels (see the header). Per row the work is: copy the
// per-tree all-ones masks, AND away left subtrees along each feature's
// threshold-sorted prefix, then take the lowest surviving bit per tree and
// accumulate that leaf's sparse distribution — in tree order, so the result
// is bit-identical to the traversal paths. A NaN feature compares false
// against every threshold in a traversal (always goes right), which makes
// EVERY node on that feature a false node — substituting +inf reproduces
// exactly that (the whole prefix matches).
// ---------------------------------------------------------------------------

void CompiledForest::qs_score_scalar(const double* matrix, std::size_t dim,
                                     std::size_t rows, double* out) const {
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  const std::size_t n_trees = roots_.size();
  const std::size_t n_features = std::min(dim, qs_f_begin_.size() - 1);
  static thread_local std::vector<std::uint64_t> acc;
  acc.resize(n_trees);
  for (std::size_t r = 0; r < rows; ++r) {
    std::memcpy(acc.data(), qs_tree_full_.data(),
                n_trees * sizeof(std::uint64_t));
    const double* x = matrix + r * dim;
    for (std::size_t f = 0; f < n_features; ++f) {
      const std::int32_t b = qs_f_begin_[f];
      const std::int32_t e = qs_f_begin_[f + 1];
      if (b == e) continue;
      double v = x[f];
      if (std::isnan(v)) v = std::numeric_limits<double>::infinity();
      for (std::int32_t p = b;
           p < e && qs_thresh_[static_cast<std::size_t>(p)] < v; ++p)
        acc[static_cast<std::size_t>(qs_tree_[static_cast<std::size_t>(p)])] &=
            qs_mask_[static_cast<std::size_t>(p)];
    }
    double* row = out + r * n_classes;
    for (std::size_t t = 0; t < n_trees; ++t) {
      const int pos = std::countr_zero(acc[t]);
      const std::size_t leaf_id =
          static_cast<std::size_t>(
              qs_leaf_off_[static_cast<std::size_t>(qs_leaf_base_[t] + pos)]) /
          n_classes;
      const std::int32_t se = sparse_begin_[leaf_id + 1];
      for (std::int32_t q = sparse_begin_[leaf_id]; q < se; ++q)
        row[static_cast<std::size_t>(
            sparse_cls_[static_cast<std::size_t>(q)])] +=
            sparse_val_[static_cast<std::size_t>(q)];
    }
  }
}

#if VPSCOPE_X86

// Vector variants score 2 (SSE2) / 4 (AVX2) rows per 64-bit lane. Rows walk
// the same sorted prefix together: a row whose prefix already ended blends
// an all-ones (no-op) mask, and the walk stops when no row still matches —
// valid because thresholds are sorted, so `x > threshold` is monotone
// non-increasing along the list.

__attribute__((target("sse2"))) void CompiledForest::qs_score_sse2(
    const double* matrix, std::size_t dim, std::size_t rows,
    double* out) const {
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  const std::size_t n_trees = roots_.size();
  const std::size_t n_features = std::min(dim, qs_f_begin_.size() - 1);
  const __m128i all1 = _mm_set1_epi64x(-1);
  static thread_local std::vector<std::uint64_t> acc;  // n_trees x 2 lanes
  acc.resize(n_trees * 2);
  std::size_t r0 = 0;
  for (; r0 + 2 <= rows; r0 += 2) {
    for (std::size_t t = 0; t < n_trees; ++t)
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(acc.data() + 2 * t),
          _mm_set1_epi64x(static_cast<long long>(qs_tree_full_[t])));
    const double* x0 = matrix + r0 * dim;
    const double* x1 = x0 + dim;
    for (std::size_t f = 0; f < n_features; ++f) {
      const std::int32_t b = qs_f_begin_[f];
      const std::int32_t e = qs_f_begin_[f + 1];
      if (b == e) continue;
      double v0 = x0[f], v1 = x1[f];
      if (std::isnan(v0)) v0 = std::numeric_limits<double>::infinity();
      if (std::isnan(v1)) v1 = std::numeric_limits<double>::infinity();
      const __m128d v = _mm_set_pd(v1, v0);
      for (std::int32_t p = b; p < e; ++p) {
        const __m128d th =
            _mm_set1_pd(qs_thresh_[static_cast<std::size_t>(p)]);
        const __m128i gt = _mm_castpd_si128(_mm_cmpgt_pd(v, th));
        if (_mm_movemask_epi8(gt) == 0) break;
        const std::size_t t = static_cast<std::size_t>(
            qs_tree_[static_cast<std::size_t>(p)]);
        const __m128i m = _mm_set1_epi64x(
            static_cast<long long>(qs_mask_[static_cast<std::size_t>(p)]));
        // No SSE2 blendv: eff = (gt & mask) | (~gt & all-ones).
        const __m128i eff =
            _mm_or_si128(_mm_and_si128(gt, m), _mm_andnot_si128(gt, all1));
        __m128i* slot = reinterpret_cast<__m128i*>(acc.data() + 2 * t);
        _mm_storeu_si128(slot, _mm_and_si128(_mm_loadu_si128(slot), eff));
      }
    }
    for (std::size_t i = 0; i < 2; ++i) {
      double* row = out + (r0 + i) * n_classes;
      for (std::size_t t = 0; t < n_trees; ++t) {
        const int pos = std::countr_zero(acc[2 * t + i]);
        const std::size_t leaf_id =
            static_cast<std::size_t>(qs_leaf_off_[static_cast<std::size_t>(
                qs_leaf_base_[t] + pos)]) /
            n_classes;
        const std::int32_t se = sparse_begin_[leaf_id + 1];
        for (std::int32_t q = sparse_begin_[leaf_id]; q < se; ++q)
          row[static_cast<std::size_t>(
              sparse_cls_[static_cast<std::size_t>(q)])] +=
              sparse_val_[static_cast<std::size_t>(q)];
      }
    }
  }
  if (r0 < rows)
    qs_score_scalar(matrix + r0 * dim, dim, rows - r0, out + r0 * n_classes);
}

__attribute__((target("avx2"))) void CompiledForest::qs_score_avx2(
    const double* matrix, std::size_t dim, std::size_t rows,
    double* out) const {
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  const std::size_t n_trees = roots_.size();
  const std::size_t n_features = std::min(dim, qs_f_begin_.size() - 1);
  const __m256i all1 = _mm256_set1_epi64x(-1);
  static thread_local std::vector<std::uint64_t> acc;  // n_trees x 4 lanes
  acc.resize(n_trees * 4);
  std::size_t r0 = 0;
  for (; r0 + 4 <= rows; r0 += 4) {
    for (std::size_t t = 0; t < n_trees; ++t)
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(acc.data() + 4 * t),
          _mm256_set1_epi64x(static_cast<long long>(qs_tree_full_[t])));
    const double* x0 = matrix + r0 * dim;
    for (std::size_t f = 0; f < n_features; ++f) {
      const std::int32_t b = qs_f_begin_[f];
      const std::int32_t e = qs_f_begin_[f + 1];
      if (b == e) continue;
      double v0 = x0[f], v1 = x0[dim + f], v2 = x0[2 * dim + f],
             v3 = x0[3 * dim + f];
      if (std::isnan(v0)) v0 = std::numeric_limits<double>::infinity();
      if (std::isnan(v1)) v1 = std::numeric_limits<double>::infinity();
      if (std::isnan(v2)) v2 = std::numeric_limits<double>::infinity();
      if (std::isnan(v3)) v3 = std::numeric_limits<double>::infinity();
      const __m256d v = _mm256_set_pd(v3, v2, v1, v0);
      for (std::int32_t p = b; p < e; ++p) {
        const __m256d th =
            _mm256_broadcast_sd(&qs_thresh_[static_cast<std::size_t>(p)]);
        const __m256i gt =
            _mm256_castpd_si256(_mm256_cmp_pd(v, th, _CMP_GT_OQ));
        if (_mm256_testz_si256(gt, gt)) break;
        const std::size_t t = static_cast<std::size_t>(
            qs_tree_[static_cast<std::size_t>(p)]);
        const __m256i m = _mm256_set1_epi64x(
            static_cast<long long>(qs_mask_[static_cast<std::size_t>(p)]));
        const __m256i eff = _mm256_blendv_epi8(all1, m, gt);
        __m256i* slot = reinterpret_cast<__m256i*>(acc.data() + 4 * t);
        _mm256_storeu_si256(slot,
                            _mm256_and_si256(_mm256_loadu_si256(slot), eff));
      }
    }
    for (std::size_t i = 0; i < 4; ++i) {
      double* row = out + (r0 + i) * n_classes;
      for (std::size_t t = 0; t < n_trees; ++t) {
        const int pos = std::countr_zero(acc[4 * t + i]);
        const std::size_t leaf_id =
            static_cast<std::size_t>(qs_leaf_off_[static_cast<std::size_t>(
                qs_leaf_base_[t] + pos)]) /
            n_classes;
        const std::int32_t se = sparse_begin_[leaf_id + 1];
        for (std::int32_t q = sparse_begin_[leaf_id]; q < se; ++q)
          row[static_cast<std::size_t>(
              sparse_cls_[static_cast<std::size_t>(q)])] +=
              sparse_val_[static_cast<std::size_t>(q)];
      }
    }
  }
  if (r0 < rows)
    qs_score_scalar(matrix + r0 * dim, dim, rows - r0, out + r0 * n_classes);
}

__attribute__((target("sse2"))) void CompiledForest::descend_tree_sse2(
    std::int32_t root, const double* matrix, std::size_t dim,
    std::size_t rows, double* acc) const {
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  std::int32_t cur[kGroupLanes];
  for (std::size_t r0 = 0; r0 < rows; r0 += kGroupLanes) {
    const std::size_t lanes = std::min(kGroupLanes, rows - r0);
    const double* group = matrix + r0 * dim;
    for (std::size_t j = 0; j < lanes; ++j) cur[j] = root;
    for (bool active = true; active;) {
      active = false;
      // Pairs of lanes share one packed-double compare; a lone active lane
      // in a pair steps scalar. Both forms are the same exact <=.
      for (std::size_t p = 0; p < lanes; p += 2) {
        const std::size_t j0 = p;
        const std::size_t j1 = p + 1 < lanes ? p + 1 : p;
        const auto c0 = static_cast<std::size_t>(cur[j0]);
        const auto c1 = static_cast<std::size_t>(cur[j1]);
        const std::int32_t f0 = soa_feature_[c0];
        const std::int32_t f1 = soa_feature_[c1];
        if (f0 >= 0 && f1 >= 0 && j1 != j0) {
          const __m128d x = _mm_set_pd(
              group[j1 * dim + static_cast<std::size_t>(f1)],
              group[j0 * dim + static_cast<std::size_t>(f0)]);
          const __m128d t = _mm_set_pd(soa_threshold_[c1], soa_threshold_[c0]);
          const int le = _mm_movemask_pd(_mm_cmple_pd(x, t));
          cur[j0] = (le & 1) ? soa_left_[c0] : soa_right_[c0];
          cur[j1] = (le & 2) ? soa_left_[c1] : soa_right_[c1];
          active = true;
          continue;
        }
        if (f0 >= 0) {
          const double x = group[j0 * dim + static_cast<std::size_t>(f0)];
          cur[j0] = x <= soa_threshold_[c0] ? soa_left_[c0] : soa_right_[c0];
          active = true;
        }
        if (j1 != j0 && f1 >= 0) {
          const double x = group[j1 * dim + static_cast<std::size_t>(f1)];
          cur[j1] = x <= soa_threshold_[c1] ? soa_left_[c1] : soa_right_[c1];
          active = true;
        }
      }
    }
    for (std::size_t j = 0; j < lanes; ++j) {
      const double* proba =
          leaf_proba_.data() +
          static_cast<std::size_t>(soa_left_[static_cast<std::size_t>(cur[j])]);
      double* row_acc = acc + (r0 + j) * n_classes;
      for (std::size_t c = 0; c < n_classes; ++c) row_acc[c] += proba[c];
    }
  }
}

__attribute__((target("avx2"))) void CompiledForest::descend_tree_avx2(
    std::int32_t root, const double* matrix, std::size_t dim,
    std::size_t rows, double* acc) const {
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  const __m256i vminus1 = _mm256_set1_epi32(-1);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vone = _mm256_set1_epi32(1);
  // Lane extractors for the packed meta plane: 64-bit lanes are
  // (feature << 32 | right), so the odd dwords are features and the even
  // dwords are right children. The upper four indices are don't-care
  // (permute2x128 keeps only the low half of each permute).
  const __m256i vodd = _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0);
  const __m256i veven = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const auto* meta =
      reinterpret_cast<const long long*>(soa_meta_.data());

  alignas(32) std::int32_t lane_base[kGroupLanes];
  alignas(32) std::int32_t curbuf[kGroupLanes];
  for (std::size_t r0 = 0; r0 < rows; r0 += kGroupLanes) {
    const std::size_t lanes = std::min(kGroupLanes, rows - r0);
    const double* group = matrix + r0 * dim;
    // Lane j reads row r0+j; surplus lanes of a partial group alias the
    // group's row 0 (their descent is discarded), so every gather stays
    // in-bounds.
    for (std::size_t j = 0; j < kGroupLanes; ++j)
      lane_base[j] = static_cast<std::int32_t>((j < lanes ? j : 0) * dim);
    const __m256i vlane_base =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(lane_base));
    __m256i cur = _mm256_set1_epi32(root);
    for (;;) {
      // One 64-bit gather per lane half fetches feature AND right child.
      const __m128i cur_lo = _mm256_castsi256_si128(cur);
      const __m128i cur_hi = _mm256_extracti128_si256(cur, 1);
      const __m256i meta_lo = _mm256_i32gather_epi64(meta, cur_lo, 8);
      const __m256i meta_hi = _mm256_i32gather_epi64(meta, cur_hi, 8);
      const __m256i feat = _mm256_permute2x128_si256(
          _mm256_permutevar8x32_epi32(meta_lo, vodd),
          _mm256_permutevar8x32_epi32(meta_hi, vodd), 0x20);
      const __m256i lane_active = _mm256_cmpgt_epi32(feat, vminus1);
      if (_mm256_testz_si256(lane_active, lane_active)) break;
      const __m256i right = _mm256_permute2x128_si256(
          _mm256_permutevar8x32_epi32(meta_lo, veven),
          _mm256_permutevar8x32_epi32(meta_hi, veven), 0x20);
      // Leaf lanes gather feature -1 -> clamp to 0 so the x gather stays
      // in-bounds; the blend below discards their result anyway.
      const __m256i feat_safe = _mm256_max_epi32(feat, vzero);
      const __m256i xidx = _mm256_add_epi32(vlane_base, feat_safe);
      const __m128i xidx_lo = _mm256_castsi256_si128(xidx);
      const __m128i xidx_hi = _mm256_extracti128_si256(xidx, 1);
      const __m256d x_lo = _mm256_i32gather_pd(group, xidx_lo, 8);
      const __m256d x_hi = _mm256_i32gather_pd(group, xidx_hi, 8);
      const __m256d t_lo =
          _mm256_i32gather_pd(soa_threshold_.data(), cur_lo, 8);
      const __m256d t_hi =
          _mm256_i32gather_pd(soa_threshold_.data(), cur_hi, 8);
      // Exact ordered <=: NaN features take the right child, matching the
      // scalar `x <= threshold` (false on NaN).
      const __m256d le_lo = _mm256_cmp_pd(x_lo, t_lo, _CMP_LE_OQ);
      const __m256d le_hi = _mm256_cmp_pd(x_hi, t_hi, _CMP_LE_OQ);
      // Narrow the two 4x64-bit masks into one 8x32-bit mask.
      const __m256i le32 = _mm256_permute2x128_si256(
          _mm256_permutevar8x32_epi32(_mm256_castpd_si256(le_lo), veven),
          _mm256_permutevar8x32_epi32(_mm256_castpd_si256(le_hi), veven),
          0x20);
      // Preorder layout: the left child is cur + 1 — no gather needed.
      const __m256i left = _mm256_add_epi32(cur, vone);
      const __m256i next = _mm256_blendv_epi8(right, left, le32);
      cur = _mm256_blendv_epi8(cur, next, lane_active);
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(curbuf), cur);
    for (std::size_t j = 0; j < lanes; ++j) {
      const double* proba =
          leaf_proba_.data() +
          static_cast<std::size_t>(
              soa_left_[static_cast<std::size_t>(curbuf[j])]);
      double* row_acc = acc + (r0 + j) * n_classes;
      for (std::size_t c = 0; c < n_classes; ++c) row_acc[c] += proba[c];
    }
  }
}

#else  // !VPSCOPE_X86

void CompiledForest::descend_tree_sse2(std::int32_t root, const double* matrix,
                                       std::size_t dim, std::size_t rows,
                                       double* acc) const {
  descend_tree_scalar(root, matrix, dim, rows, acc);
}

void CompiledForest::descend_tree_avx2(std::int32_t root, const double* matrix,
                                       std::size_t dim, std::size_t rows,
                                       double* acc) const {
  descend_tree_scalar(root, matrix, dim, rows, acc);
}

void CompiledForest::qs_score_sse2(const double* matrix, std::size_t dim,
                                   std::size_t rows, double* out) const {
  qs_score_scalar(matrix, dim, rows, out);
}

void CompiledForest::qs_score_avx2(const double* matrix, std::size_t dim,
                                   std::size_t rows, double* out) const {
  qs_score_scalar(matrix, dim, rows, out);
}

#endif  // VPSCOPE_X86

void CompiledForest::predict_proba_batch(std::span<const double> matrix,
                                         std::size_t dim,
                                         std::span<double> out,
                                         Simd level) const {
  if (dim == 0) throw std::invalid_argument("predict_proba_batch: dim == 0");
  const std::size_t rows = matrix.size() / dim;
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  if (out.size() < rows * n_classes)
    throw std::invalid_argument("predict_proba_batch: out too small");
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(
                                           rows * n_classes), 0.0);
  if (rows == 0 || roots_.empty()) return;
  const Simd resolved = resolve_simd(level);
  if (!simd_supported(resolved))
    throw std::invalid_argument(
        "predict_proba_batch: forced SIMD level unsupported on this CPU");
  if (qs_ok_) {
    // Bitmask scorer: no traversal at all (see the header).
    switch (resolved) {
      case Simd::Avx2:
        qs_score_avx2(matrix.data(), dim, rows, out.data());
        break;
      case Simd::Sse2:
        qs_score_sse2(matrix.data(), dim, rows, out.data());
        break;
      default:
        qs_score_scalar(matrix.data(), dim, rows, out.data());
        break;
    }
  } else {
    // Fallback for forests with a tree too deep for one 64-bit leaf mask.
    // Tree-outer: each tree's node planes are walked for the whole batch
    // while still hot. Per row the accumulation order is exactly tree
    // order, as in the per-flow path.
    for (const std::int32_t root : roots_) {
      switch (resolved) {
        case Simd::Avx2:
          descend_tree_avx2(root, matrix.data(), dim, rows, out.data());
          break;
        case Simd::Sse2:
          descend_tree_sse2(root, matrix.data(), dim, rows, out.data());
          break;
        default:
          descend_tree_scalar(root, matrix.data(), dim, rows, out.data());
          break;
      }
    }
  }
  // Same final division as predict_proba_into: bit-identical rounding.
  const auto n_trees = static_cast<double>(roots_.size());
  for (std::size_t i = 0; i < rows * n_classes; ++i) out[i] /= n_trees;
}

void CompiledForest::predict_with_confidence_batch(
    std::span<const double> matrix, std::size_t dim, std::span<int> labels,
    std::span<double> confidences, BatchScratch& scratch, Simd level) const {
  if (dim == 0)
    throw std::invalid_argument("predict_with_confidence_batch: dim == 0");
  const std::size_t rows = matrix.size() / dim;
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  scratch.proba.resize(rows * n_classes);
  predict_proba_batch(matrix, dim, scratch.proba, level);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* proba = scratch.proba.data() + r * n_classes;
    // First-maximum argmax: the exact tie-breaking of std::max_element in
    // predict_with_confidence.
    std::size_t best = 0;
    for (std::size_t c = 1; c < n_classes; ++c)
      if (proba[c] > proba[best]) best = c;
    if (r < labels.size()) labels[r] = static_cast<int>(best);
    if (r < confidences.size()) confidences[r] = proba[best];
  }
}

void CompiledForest::predict_batch(std::span<const double> matrix,
                                   std::size_t dim, std::span<int> out,
                                   BatchScratch& scratch, Simd level) const {
  if (dim == 0) throw std::invalid_argument("predict_batch: dim == 0");
  const std::size_t rows = std::min(matrix.size() / dim, out.size());
  const std::size_t n_classes = static_cast<std::size_t>(num_classes_);
  scratch.proba.resize(rows * n_classes);
  predict_proba_batch(matrix.first(rows * dim), dim, scratch.proba, level);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* proba = scratch.proba.data() + r * n_classes;
    std::size_t best = 0;
    for (std::size_t c = 1; c < n_classes; ++c)
      if (proba[c] > proba[best]) best = c;
    out[r] = static_cast<int>(best);
  }
}

std::vector<int> CompiledForest::predict_batch(const Dataset& data) const {
  std::vector<int> out(data.size(), 0);
  if (data.x.empty()) return out;
  const std::size_t dim = data.x.front().size();
  if (dim == 0) {
    Scratch scratch;
    for (std::size_t r = 0; r < data.x.size(); ++r)
      out[r] = predict(data.x[r], scratch);
    return out;
  }
  // Flatten into the contiguous row-major layout the batch kernel wants;
  // the copy is trivially amortized by the descent work.
  std::vector<double> matrix;
  matrix.reserve(data.size() * dim);
  for (const auto& row : data.x)
    matrix.insert(matrix.end(), row.begin(), row.end());
  BatchScratch scratch;
  predict_batch(matrix, dim, out, scratch);
  return out;
}

std::size_t CompiledForest::memory_bytes() const {
  return nodes_.size() * sizeof(Node) +
         leaf_proba_.size() * sizeof(double) +
         roots_.size() * sizeof(std::int32_t) +
         soa_meta_.size() * sizeof(std::uint64_t) +
         soa_feature_.size() * sizeof(std::int32_t) +
         soa_left_.size() * sizeof(std::int32_t) +
         soa_right_.size() * sizeof(std::int32_t) +
         soa_threshold_.size() * sizeof(double) +
         qs_f_begin_.size() * sizeof(std::int32_t) +
         qs_thresh_.size() * sizeof(double) +
         qs_tree_.size() * sizeof(std::int32_t) +
         qs_mask_.size() * sizeof(std::uint64_t) +
         qs_tree_full_.size() * sizeof(std::uint64_t) +
         qs_leaf_base_.size() * sizeof(std::int32_t) +
         qs_leaf_off_.size() * sizeof(std::int32_t) +
         sparse_begin_.size() * sizeof(std::int32_t) +
         sparse_cls_.size() * sizeof(std::int32_t) +
         sparse_val_.size() * sizeof(double);
}

}  // namespace vpscope::ml
