// Multi-layer perceptron (softmax output, cross-entropy loss, minibatch
// SGD with momentum) — the neural alternative the paper evaluates (§4.3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"

namespace vpscope::ml {

enum class Activation { Relu, Tanh, Logistic };

enum class Solver { Sgd, Adam };

struct MlpParams {
  std::vector<int> hidden_layers = {64, 32};
  Activation activation = Activation::Relu;
  /// Adam mirrors scikit-learn's default solver; per-parameter step
  /// normalization makes it usable on the raw (unscaled) handshake
  /// attributes the paper feeds its models.
  Solver solver = Solver::Adam;
  int epochs = 60;
  int batch_size = 32;
  double learning_rate = 0.001;
  double momentum = 0.9;  // SGD only
  /// Per-feature max-abs scaling fitted on the training data. Off by
  /// default: the paper feeds raw attribute values (flow-control values in
  /// the millions next to presence bits), which saturates every activation
  /// and is why its MLP loses to the forest by ~30 points. Turning this on
  /// is the ablation that rescues the MLP (see bench_model_selection).
  bool scale_inputs = false;
  std::uint64_t seed = 1;
};

class MlpClassifier {
 public:
  void fit(const Dataset& data, const MlpParams& params);
  int predict(const std::vector<double>& x) const;
  std::vector<double> predict_proba(const std::vector<double>& x) const;
  std::vector<int> predict_batch(const Dataset& data) const;

 private:
  struct Layer {
    std::vector<std::vector<double>> w;  // [out][in]
    std::vector<double> b;
    std::vector<std::vector<double>> vw;  // momentum / Adam-m buffers
    std::vector<double> vb;
    std::vector<std::vector<double>> sw;  // Adam second-moment buffers
    std::vector<double> sb;
  };

  std::vector<double> forward(const std::vector<double>& x,
                              std::vector<std::vector<double>>* activations)
      const;

  std::vector<double> scaled(const std::vector<double>& x) const;

  std::vector<Layer> layers_;
  MlpParams params_;
  long adam_step_ = 0;
  std::vector<double> feature_scale_;
  int num_classes_ = 0;
  int input_dim_ = 0;
};

}  // namespace vpscope::ml
