// K-nearest-neighbours classifier (brute-force Euclidean), one of the two
// alternatives the paper evaluates and rejects (§4.3.1). Deliberately
// consumes the same unscaled attribute vectors the forest gets — the
// scale-sensitivity of distance-based methods on raw handshake attributes
// is part of what the paper's model comparison shows.
#pragma once

#include <vector>

#include "ml/dataset.hpp"

namespace vpscope::ml {

struct KnnParams {
  int k = 5;
  /// false: majority vote; true: 1/distance-weighted vote.
  bool distance_weighted = false;
};

class KnnClassifier {
 public:
  void fit(const Dataset& data, const KnnParams& params);
  int predict(const std::vector<double>& x) const;
  std::vector<double> predict_proba(const std::vector<double>& x) const;
  std::vector<int> predict_batch(const Dataset& data) const;

 private:
  Dataset train_;
  KnnParams params_;
  int num_classes_ = 0;
};

}  // namespace vpscope::ml
