#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vpscope::ml {

void KnnClassifier::fit(const Dataset& data, const KnnParams& params) {
  if (data.size() == 0) throw std::invalid_argument("empty dataset");
  train_ = data;
  params_ = params;
  num_classes_ = data.num_classes();
}

std::vector<double> KnnClassifier::predict_proba(
    const std::vector<double>& x) const {
  std::vector<std::pair<double, int>> dists;  // (squared distance, label)
  dists.reserve(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i) {
    const auto& row = train_.x[i];
    double d2 = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) {
      const double diff = row[j] - x[j];
      d2 += diff * diff;
    }
    dists.emplace_back(d2, train_.y[i]);
  }
  const auto k = static_cast<std::size_t>(
      std::min<int>(params_.k, static_cast<int>(dists.size())));
  std::partial_sort(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(k),
                    dists.end());

  std::vector<double> votes(static_cast<std::size_t>(num_classes_), 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    const double w = params_.distance_weighted
                         ? 1.0 / (std::sqrt(dists[i].first) + 1e-9)
                         : 1.0;
    votes[static_cast<std::size_t>(dists[i].second)] += w;
  }
  double total = 0.0;
  for (double v : votes) total += v;
  if (total > 0)
    for (double& v : votes) v /= total;
  return votes;
}

int KnnClassifier::predict(const std::vector<double>& x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::vector<int> KnnClassifier::predict_batch(const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.size());
  for (const auto& row : data.x) out.push_back(predict(row));
  return out;
}

}  // namespace vpscope::ml
