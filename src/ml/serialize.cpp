#include "ml/serialize.hpp"

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

namespace vpscope::ml {

namespace {
constexpr std::uint32_t kMagic = 0x56505346;  // "VPSF"
constexpr std::uint16_t kVersionForestOnly = 1;
constexpr std::uint16_t kVersionWithEncoder = 2;
}  // namespace

namespace detail {

void write_forest_body(Writer& w, const RandomForest& forest) {
  w.u32(static_cast<std::uint32_t>(forest.num_classes_));
  w.u32(static_cast<std::uint32_t>(forest.trees_.size()));
  for (const auto& tree : forest.trees_) tree.serialize(w);
}

std::optional<RandomForest> read_forest_body(Reader& r) {
  RandomForest forest;
  forest.num_classes_ = static_cast<int>(r.u32());
  const std::uint32_t tree_count = r.u32();
  if (!r.ok() || forest.num_classes_ <= 0 || tree_count == 0 ||
      tree_count > 100'000)
    return std::nullopt;
  // A serialized tree is >= 8 header bytes; don't reserve storage a
  // truncated input cannot back (fuzz: allocation bomb).
  if (tree_count > r.remaining() / 8) return std::nullopt;
  forest.trees_.reserve(tree_count);
  for (std::uint32_t i = 0; i < tree_count; ++i) {
    auto tree = DecisionTree::deserialize(r);
    if (!tree) return std::nullopt;
    forest.trees_.push_back(std::move(*tree));
  }
  if (!r.ok()) return std::nullopt;
  return forest;
}

}  // namespace detail

namespace {

using detail::read_forest_body;
using detail::write_forest_body;

void write_encoder_block(Writer& w, const core::FeatureEncoder& encoder) {
  w.u8(static_cast<std::uint8_t>(encoder.transport()));
  w.u32(static_cast<std::uint32_t>(core::kNumAttributes));
  for (int a = 0; a < core::kNumAttributes; ++a) {
    const auto dict = encoder.dictionary(a);  // (token, id) in id order 1..n
    w.u32(static_cast<std::uint32_t>(dict.size()));
    for (const auto& [token, id] : dict) {
      w.u16(static_cast<std::uint16_t>(token.size()));
      w.raw(ByteView{reinterpret_cast<const std::uint8_t*>(token.data()),
                     token.size()});
    }
  }
}

std::optional<core::FeatureEncoder> read_encoder_block(Reader& r) {
  const std::uint8_t transport = r.u8();
  const std::uint32_t attr_count = r.u32();
  if (!r.ok() || transport > 1 ||
      attr_count != static_cast<std::uint32_t>(core::kNumAttributes))
    return std::nullopt;
  std::vector<std::vector<std::pair<std::string, int>>> dicts(
      core::kNumAttributes);
  for (std::uint32_t a = 0; a < attr_count; ++a) {
    const std::uint32_t n = r.u32();
    // Each dictionary entry occupies at least its 2-byte length prefix; a
    // count the remaining bytes cannot back must not reserve (fuzz:
    // allocation bomb on truncated bundles).
    if (!r.ok() || n > 1'000'000 || n > r.remaining() / 2) return std::nullopt;
    dicts[a].reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint16_t len = r.u16();
      const ByteView bytes = r.view(len);
      if (!r.ok()) return std::nullopt;
      dicts[a].emplace_back(
          std::string(reinterpret_cast<const char*>(bytes.data()),
                      bytes.size()),
          static_cast<int>(i) + 1);
    }
  }
  return core::FeatureEncoder::from_dictionaries(
      static_cast<fingerprint::Transport>(transport), dicts);
}

}  // namespace

Bytes serialize_forest(const RandomForest& forest) {
  Writer w;
  w.u32(kMagic);
  w.u16(kVersionForestOnly);
  write_forest_body(w, forest);
  return std::move(w).take();
}

Bytes serialize_bundle(const RandomForest& forest,
                       const core::FeatureEncoder& encoder) {
  Writer w;
  w.u32(kMagic);
  w.u16(kVersionWithEncoder);
  write_forest_body(w, forest);
  write_encoder_block(w, encoder);
  return std::move(w).take();
}

std::optional<ForestBundle> deserialize_bundle(ByteView data) {
  Reader r(data);
  if (r.u32() != kMagic) return std::nullopt;
  const std::uint16_t version = r.u16();
  if (version != kVersionForestOnly && version != kVersionWithEncoder)
    return std::nullopt;
  auto forest = read_forest_body(r);
  if (!forest) return std::nullopt;
  ForestBundle bundle;
  bundle.forest = std::move(*forest);
  if (version == kVersionWithEncoder) {
    auto encoder = read_encoder_block(r);
    if (!encoder) return std::nullopt;
    bundle.encoder = std::move(*encoder);
  }
  if (!r.ok() || !r.empty()) return std::nullopt;
  return bundle;
}

std::optional<RandomForest> deserialize_forest(ByteView data) {
  auto bundle = deserialize_bundle(data);
  if (!bundle) return std::nullopt;
  return std::move(bundle->forest);
}

namespace {

std::error_code last_errno() {
  return std::error_code(errno ? errno : EIO, std::generic_category());
}

/// open/write-loop/close with every return value checked. The previous
/// ofstream writer could buffer a short write and only learn about it (or
/// not) at destruction — a truncated model file that loads as "corrupt"
/// much later, far from the cause.
std::error_code write_fd_all(int fd, ByteView data) {
  const std::uint8_t* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return last_errno();
    }
    if (n == 0) return std::make_error_code(std::errc::io_error);
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return {};
}

std::error_code write_file_checked_impl(const std::string& path,
                                        ByteView data, bool sync) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return last_errno();
  std::error_code ec = write_fd_all(fd, data);
  if (!ec && sync && ::fsync(fd) != 0) ec = last_errno();
  if (::close(fd) != 0 && !ec) ec = last_errno();
  return ec;
}

/// fsync the directory containing `path`, so the rename itself is durable.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;  // best effort: some filesystems refuse dir fsync
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::error_code write_file_checked(const std::string& path, ByteView data) {
  return write_file_checked_impl(path, data, /*sync=*/false);
}

std::error_code write_file_atomic_sync(const std::string& path,
                                       ByteView data) {
  const std::string tmp = path + ".tmp";
  if (const std::error_code ec =
          write_file_checked_impl(tmp, data, /*sync=*/true)) {
    ::unlink(tmp.c_str());
    return ec;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::error_code ec = last_errno();
    ::unlink(tmp.c_str());
    return ec;
  }
  sync_parent_dir(path);
  return {};
}

std::error_code save_forest_atomic(const RandomForest& forest,
                                   const std::string& path) {
  return write_file_atomic_sync(path, serialize_forest(forest));
}

std::error_code save_bundle_atomic(const RandomForest& forest,
                                   const core::FeatureEncoder& encoder,
                                   const std::string& path) {
  return write_file_atomic_sync(path, serialize_bundle(forest, encoder));
}

bool save_forest(const RandomForest& forest, const std::string& path) {
  return !write_file_checked(path, serialize_forest(forest));
}

std::optional<RandomForest> load_forest(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  Bytes data{std::istreambuf_iterator<char>(file),
             std::istreambuf_iterator<char>()};
  return deserialize_forest(data);
}

bool save_bundle(const RandomForest& forest,
                 const core::FeatureEncoder& encoder,
                 const std::string& path) {
  return !write_file_checked(path, serialize_bundle(forest, encoder));
}

std::optional<ForestBundle> load_bundle(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  Bytes data{std::istreambuf_iterator<char>(file),
             std::istreambuf_iterator<char>()};
  return deserialize_bundle(data);
}

std::optional<CompiledForest> deserialize_compiled_forest(ByteView data) {
  const auto forest = deserialize_forest(data);
  if (!forest) return std::nullopt;
  return CompiledForest::compile(*forest);
}

std::optional<CompiledForest> load_compiled_forest(const std::string& path) {
  const auto forest = load_forest(path);
  if (!forest) return std::nullopt;
  return CompiledForest::compile(*forest);
}

std::optional<QuantizedForest> deserialize_quantized_forest(ByteView data) {
  const auto forest = deserialize_forest(data);
  if (!forest) return std::nullopt;
  return QuantizedForest::quantize(*forest);
}

std::optional<QuantizedForest> load_quantized_forest(const std::string& path) {
  const auto forest = load_forest(path);
  if (!forest) return std::nullopt;
  return QuantizedForest::quantize(*forest);
}

}  // namespace vpscope::ml
