#include "ml/serialize.hpp"

#include <fstream>

namespace vpscope::ml {

namespace {
constexpr std::uint32_t kMagic = 0x56505346;  // "VPSF"
constexpr std::uint16_t kVersion = 1;
}  // namespace

Bytes serialize_forest(const RandomForest& forest) {
  Writer w;
  w.u32(kMagic);
  w.u16(kVersion);
  w.u32(static_cast<std::uint32_t>(forest.num_classes_));
  w.u32(static_cast<std::uint32_t>(forest.trees_.size()));
  for (const auto& tree : forest.trees_) tree.serialize(w);
  return std::move(w).take();
}

std::optional<RandomForest> deserialize_forest(ByteView data) {
  Reader r(data);
  if (r.u32() != kMagic || r.u16() != kVersion) return std::nullopt;
  RandomForest forest;
  forest.num_classes_ = static_cast<int>(r.u32());
  const std::uint32_t tree_count = r.u32();
  if (!r.ok() || forest.num_classes_ <= 0 || tree_count == 0 ||
      tree_count > 100'000)
    return std::nullopt;
  forest.trees_.reserve(tree_count);
  for (std::uint32_t i = 0; i < tree_count; ++i) {
    auto tree = DecisionTree::deserialize(r);
    if (!tree) return std::nullopt;
    forest.trees_.push_back(std::move(*tree));
  }
  if (!r.ok() || !r.empty()) return std::nullopt;
  return forest;
}

bool save_forest(const RandomForest& forest, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  const Bytes data = serialize_forest(forest);
  file.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(file);
}

std::optional<RandomForest> load_forest(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  Bytes data{std::istreambuf_iterator<char>(file),
             std::istreambuf_iterator<char>()};
  return deserialize_forest(data);
}

std::optional<CompiledForest> deserialize_compiled_forest(ByteView data) {
  const auto forest = deserialize_forest(data);
  if (!forest) return std::nullopt;
  return CompiledForest::compile(*forest);
}

std::optional<CompiledForest> load_compiled_forest(const std::string& path) {
  const auto forest = load_forest(path);
  if (!forest) return std::nullopt;
  return CompiledForest::compile(*forest);
}

}  // namespace vpscope::ml
