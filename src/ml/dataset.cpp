#include "ml/dataset.hpp"

#include <algorithm>
#include <map>

namespace vpscope::ml {

int Dataset::num_classes() const {
  int max_label = -1;
  for (int label : y) max_label = std::max(max_label, label);
  return max_label + 1;
}

Dataset Dataset::subset(const std::vector<int>& rows) const {
  Dataset out;
  out.x.reserve(rows.size());
  out.y.reserve(rows.size());
  for (int r : rows) {
    out.x.push_back(x[static_cast<std::size_t>(r)]);
    out.y.push_back(y[static_cast<std::size_t>(r)]);
  }
  return out;
}

Dataset Dataset::project(const std::vector<int>& cols) const {
  Dataset out;
  out.y = y;
  out.x.reserve(x.size());
  for (const auto& row : x) {
    std::vector<double> projected;
    projected.reserve(cols.size());
    for (int c : cols) projected.push_back(row[static_cast<std::size_t>(c)]);
    out.x.push_back(std::move(projected));
  }
  return out;
}

std::vector<int> stratified_fold_ids(const std::vector<int>& labels, int k,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::map<int, std::vector<int>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i)
    by_class[labels[i]].push_back(static_cast<int>(i));

  std::vector<int> fold_ids(labels.size(), 0);
  for (auto& [label, rows] : by_class) {
    rng.shuffle(rows);
    for (std::size_t i = 0; i < rows.size(); ++i)
      fold_ids[static_cast<std::size_t>(rows[i])] =
          static_cast<int>(i % static_cast<std::size_t>(k));
  }
  return fold_ids;
}

void split_fold(const std::vector<int>& fold_ids, int test_fold,
                std::vector<int>* train_rows, std::vector<int>* test_rows) {
  train_rows->clear();
  test_rows->clear();
  for (std::size_t i = 0; i < fold_ids.size(); ++i) {
    if (fold_ids[i] == test_fold)
      test_rows->push_back(static_cast<int>(i));
    else
      train_rows->push_back(static_cast<int>(i));
  }
}

void stratified_split(const std::vector<int>& labels, double test_fraction,
                      std::uint64_t seed, std::vector<int>* train_rows,
                      std::vector<int>* test_rows) {
  Rng rng(seed);
  std::map<int, std::vector<int>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i)
    by_class[labels[i]].push_back(static_cast<int>(i));

  train_rows->clear();
  test_rows->clear();
  for (auto& [label, rows] : by_class) {
    rng.shuffle(rows);
    const auto n_test = static_cast<std::size_t>(
        static_cast<double>(rows.size()) * test_fraction);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i < n_test)
        test_rows->push_back(rows[i]);
      else
        train_rows->push_back(rows[i]);
    }
  }
}

}  // namespace vpscope::ml
