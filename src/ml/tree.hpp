// CART decision tree (Gini impurity, axis-aligned threshold splits) — the
// base learner of the random forest the paper selects for deployment.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ml/dataset.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace vpscope::ml {

struct TreeParams {
  int max_depth = 20;
  int min_samples_split = 2;
  /// Features evaluated per split: <= 0 means "all features";
  /// the forest passes ~sqrt(dim).
  int max_features = 0;
};

class DecisionTree {
 public:
  /// Trains on `data` restricted to `rows` (empty rows = all). Class count
  /// is taken from `num_classes` so probability vectors are consistent
  /// across trees trained on bootstrap samples.
  void fit(const Dataset& data, const std::vector<int>& rows,
           const TreeParams& params, int num_classes, Rng rng);

  int predict(const std::vector<double>& x) const;
  /// Leaf class distribution (training-sample fractions). Returns a
  /// reference to the leaf's stored distribution — no per-call copy; the
  /// reference is valid while the tree lives and is not refit.
  const std::vector<double>& predict_proba(const std::vector<double>& x) const;

  /// Gini importance per feature (impurity decrease weighted by samples),
  /// normalized to sum to 1 (or all-zero for a stump).
  std::vector<double> feature_importances() const;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int depth() const;

  /// Appends this tree's structure to `w` (used by ml::serialize_forest).
  void serialize(Writer& w) const;
  /// Reads a tree previously written by serialize(); fails the reader on
  /// malformed input.
  static std::optional<DecisionTree> deserialize(Reader& r);

  struct Node {
    int feature = -1;       // -1 => leaf
    double threshold = 0;   // go left if x[feature] <= threshold
    int left = -1, right = -1;
    int depth = 0;
    std::vector<double> proba;  // filled for leaves
  };

  /// Read-only view of the trained structure (CompiledForest compilation).
  const std::vector<Node>& nodes() const { return nodes_; }

 private:
  int build(const Dataset& data, std::vector<int>& rows, int depth,
            const TreeParams& params, int num_classes, Rng& rng);
  const Node& descend(const std::vector<double>& x) const;

  std::vector<Node> nodes_;
  int num_features_ = 0;
  std::vector<double> importances_;
};

}  // namespace vpscope::ml
