// Random forest (bagging + per-split feature subsampling over CART trees) —
// the classifier the paper deploys, with predict_proba providing the
// confidence scores its 80%-threshold pipeline logic needs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ml/tree.hpp"
#include "util/bytes.hpp"

namespace vpscope::ml {

class RandomForest;

/// Serialization internals (ml/serialize.cpp): the shared v1 forest body
/// encoding that both the forest-only and bundle formats embed.
namespace detail {
void write_forest_body(Writer& w, const RandomForest& forest);
std::optional<RandomForest> read_forest_body(Reader& r);
}  // namespace detail

struct ForestParams {
  int n_trees = 60;
  int max_depth = 20;
  int min_samples_split = 2;
  /// Features per split; <= 0 selects round(sqrt(dim)).
  int max_features = 0;
  bool bootstrap = true;
  std::uint64_t seed = 1;
};

class RandomForest {
 public:
  void fit(const Dataset& data, const ForestParams& params);

  int predict(const std::vector<double>& x) const;
  /// Mean leaf distribution across trees; its max is the classifier
  /// confidence used by the pipeline.
  std::vector<double> predict_proba(const std::vector<double>& x) const;
  /// Convenience: (argmax, max probability).
  std::pair<int, double> predict_with_confidence(
      const std::vector<double>& x) const;

  std::vector<int> predict_batch(const Dataset& data) const;

  /// Mean normalized Gini importance across trees.
  std::vector<double> feature_importances() const;

  int num_classes() const { return num_classes_; }
  bool trained() const { return !trees_.empty(); }
  int tree_count() const { return static_cast<int>(trees_.size()); }

  /// Read-only tree access (CompiledForest compilation, diagnostics).
  const std::vector<DecisionTree>& trees() const { return trees_; }

 private:
  friend Bytes serialize_forest(const RandomForest&);
  friend std::optional<RandomForest> deserialize_forest(ByteView);
  friend void detail::write_forest_body(Writer&, const RandomForest&);
  friend std::optional<RandomForest> detail::read_forest_body(Reader&);

  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
};

/// See ml/serialize.hpp.
Bytes serialize_forest(const RandomForest& forest);
std::optional<RandomForest> deserialize_forest(ByteView data);

}  // namespace vpscope::ml
