#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace vpscope::ml {

namespace {

double activate(double v, Activation a) {
  switch (a) {
    case Activation::Relu: return v > 0 ? v : 0.0;
    case Activation::Tanh: return std::tanh(v);
    case Activation::Logistic: return 1.0 / (1.0 + std::exp(-v));
  }
  return v;
}

double activate_grad(double out, Activation a) {
  switch (a) {
    case Activation::Relu: return out > 0 ? 1.0 : 0.0;
    case Activation::Tanh: return 1.0 - out * out;
    case Activation::Logistic: return out * (1.0 - out);
  }
  return 1.0;
}

void softmax_inplace(std::vector<double>& z) {
  const double max_z = *std::max_element(z.begin(), z.end());
  double sum = 0.0;
  for (double& v : z) {
    v = std::exp(v - max_z);
    sum += v;
  }
  for (double& v : z) v /= sum;
}

}  // namespace

void MlpClassifier::fit(const Dataset& data, const MlpParams& params) {
  if (data.size() == 0) throw std::invalid_argument("empty dataset");
  params_ = params;
  adam_step_ = 0;
  num_classes_ = data.num_classes();
  input_dim_ = static_cast<int>(data.dim());

  feature_scale_.assign(static_cast<std::size_t>(input_dim_), 1.0);
  if (params.scale_inputs) {
    for (const auto& row : data.x)
      for (std::size_t j = 0; j < row.size(); ++j)
        feature_scale_[j] = std::max(feature_scale_[j], std::abs(row[j]));
  }

  // Layer sizes: input -> hidden... -> classes.
  std::vector<int> sizes;
  sizes.push_back(input_dim_);
  for (int h : params.hidden_layers) sizes.push_back(h);
  sizes.push_back(num_classes_);

  Rng rng(params.seed);
  layers_.clear();
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    const int n_in = sizes[l];
    const int n_out = sizes[l + 1];
    const double scale = std::sqrt(2.0 / n_in);  // He initialization
    layer.w.assign(static_cast<std::size_t>(n_out),
                   std::vector<double>(static_cast<std::size_t>(n_in)));
    layer.vw = layer.w;
    layer.sw = layer.w;
    for (auto& row : layer.w)
      for (double& v : row) v = rng.normal(0.0, scale);
    for (auto& row : layer.vw) std::fill(row.begin(), row.end(), 0.0);
    for (auto& row : layer.sw) std::fill(row.begin(), row.end(), 0.0);
    layer.b.assign(static_cast<std::size_t>(n_out), 0.0);
    layer.vb = layer.b;
    layer.sb = layer.b;
    layers_.push_back(std::move(layer));
  }

  std::vector<int> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < params.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(params.batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(params.batch_size));

      // Accumulate gradients over the minibatch.
      std::vector<Layer> grads;
      grads.reserve(layers_.size());
      for (const auto& layer : layers_) {
        Layer g;
        g.w.assign(layer.w.size(),
                   std::vector<double>(layer.w.front().size(), 0.0));
        g.b.assign(layer.b.size(), 0.0);
        grads.push_back(std::move(g));
      }

      for (std::size_t oi = start; oi < end; ++oi) {
        const std::vector<double> x =
            scaled(data.x[static_cast<std::size_t>(order[oi])]);
        const int label = data.y[static_cast<std::size_t>(order[oi])];

        std::vector<std::vector<double>> acts;
        std::vector<double> out = forward(x, &acts);

        // delta at the output: softmax + cross entropy.
        std::vector<double> delta = out;
        delta[static_cast<std::size_t>(label)] -= 1.0;

        for (int l = static_cast<int>(layers_.size()) - 1; l >= 0; --l) {
          const auto& input = acts[static_cast<std::size_t>(l)];
          auto& g = grads[static_cast<std::size_t>(l)];
          for (std::size_t o = 0; o < delta.size(); ++o) {
            g.b[o] += delta[o];
            for (std::size_t i = 0; i < input.size(); ++i)
              g.w[o][i] += delta[o] * input[i];
          }
          if (l == 0) break;
          // Propagate delta to the previous layer.
          const auto& layer = layers_[static_cast<std::size_t>(l)];
          std::vector<double> prev_delta(input.size(), 0.0);
          for (std::size_t i = 0; i < input.size(); ++i) {
            double sum = 0.0;
            for (std::size_t o = 0; o < delta.size(); ++o)
              sum += layer.w[o][i] * delta[o];
            prev_delta[i] =
                sum * activate_grad(input[i], params_.activation);
          }
          delta = std::move(prev_delta);
        }
      }

      // Parameter update.
      const double batch_n = static_cast<double>(end - start);
      if (params.solver == Solver::Sgd) {
        const double lr = params.learning_rate / batch_n;
        for (std::size_t l = 0; l < layers_.size(); ++l) {
          auto& layer = layers_[l];
          auto& g = grads[l];
          for (std::size_t o = 0; o < layer.w.size(); ++o) {
            for (std::size_t i = 0; i < layer.w[o].size(); ++i) {
              layer.vw[o][i] =
                  params.momentum * layer.vw[o][i] - lr * g.w[o][i];
              layer.w[o][i] += layer.vw[o][i];
            }
            layer.vb[o] = params.momentum * layer.vb[o] - lr * g.b[o];
            layer.b[o] += layer.vb[o];
          }
        }
      } else {
        // Adam (beta1=0.9, beta2=0.999), bias-corrected.
        ++adam_step_;
        constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
        const double bc1 = 1.0 - std::pow(kBeta1, adam_step_);
        const double bc2 = 1.0 - std::pow(kBeta2, adam_step_);
        const double lr = params.learning_rate;
        for (std::size_t l = 0; l < layers_.size(); ++l) {
          auto& layer = layers_[l];
          auto& g = grads[l];
          auto update = [&](double& w, double& m, double& s, double grad) {
            grad /= batch_n;
            m = kBeta1 * m + (1.0 - kBeta1) * grad;
            s = kBeta2 * s + (1.0 - kBeta2) * grad * grad;
            w -= lr * (m / bc1) / (std::sqrt(s / bc2) + kEps);
          };
          for (std::size_t o = 0; o < layer.w.size(); ++o) {
            for (std::size_t i = 0; i < layer.w[o].size(); ++i)
              update(layer.w[o][i], layer.vw[o][i], layer.sw[o][i],
                     g.w[o][i]);
            update(layer.b[o], layer.vb[o], layer.sb[o], g.b[o]);
          }
        }
      }
    }
  }
}

std::vector<double> MlpClassifier::forward(
    const std::vector<double>& x,
    std::vector<std::vector<double>>* activations) const {
  std::vector<double> current = x;
  if (activations) activations->push_back(current);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(layer.b.size());
    for (std::size_t o = 0; o < next.size(); ++o) {
      double sum = layer.b[o];
      for (std::size_t i = 0; i < current.size(); ++i)
        sum += layer.w[o][i] * current[i];
      next[o] = sum;
    }
    const bool is_output = l + 1 == layers_.size();
    if (is_output) {
      softmax_inplace(next);
    } else {
      for (double& v : next) v = activate(v, params_.activation);
    }
    current = std::move(next);
    if (activations && !is_output) activations->push_back(current);
  }
  return current;
}

std::vector<double> MlpClassifier::scaled(
    const std::vector<double>& x) const {
  if (!params_.scale_inputs) return x;
  std::vector<double> out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) out[j] = x[j] / feature_scale_[j];
  return out;
}

std::vector<double> MlpClassifier::predict_proba(
    const std::vector<double>& x) const {
  return forward(scaled(x), nullptr);
}

int MlpClassifier::predict(const std::vector<double>& x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::vector<int> MlpClassifier::predict_batch(const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.size());
  for (const auto& row : data.x) out.push_back(predict(row));
  return out;
}

}  // namespace vpscope::ml
