// Post-training compilation of a RandomForest into a flat, cache-friendly
// layout for the pipeline's hot path: every tree of the forest is lowered
// into one contiguous node array (feature index, left/right offsets as
// int32, split threshold) plus one contiguous leaf-probability block, so a
// classification touches a handful of cache lines instead of chasing
// per-node heap vectors.
//
// The compiled form is inference-only and probability-equivalent to the
// source forest: predict_proba_into accumulates the same leaf distributions
// in the same tree order and divides by the same tree count, so the output
// is bit-identical to RandomForest::predict_proba. It performs zero heap
// allocations per call, which is what lets ClassifierBank::classify run on
// many shard workers without contending on the allocator.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/forest.hpp"

namespace vpscope::ml {

class CompiledForest {
 public:
  /// One lowered tree node. Internal nodes (`feature >= 0`) hold absolute
  /// offsets of both children in the shared node array; leaves
  /// (`feature < 0`) hold in `left` the offset of their class distribution
  /// inside the shared leaf-probability block.
  struct Node {
    double threshold = 0.0;        // go left if x[feature] <= threshold
    std::int32_t feature = -1;     // -1 => leaf
    std::int32_t left = -1;        // child offset, or leaf-block offset
    std::int32_t right = -1;
  };

  /// Reusable per-caller state so predict/predict_batch stay allocation-free
  /// in steady state; one Scratch per thread, never shared.
  struct Scratch {
    std::vector<double> proba;
  };

  CompiledForest() = default;

  /// Lowers a trained forest. The source forest is not referenced after
  /// compile returns.
  static CompiledForest compile(const RandomForest& forest);

  /// Mean leaf distribution across trees, written into `out`
  /// (`out.size() == num_classes()`). Bit-identical to
  /// RandomForest::predict_proba and allocation-free.
  void predict_proba_into(std::span<const double> x,
                          std::span<double> out) const;

  int predict(std::span<const double> x, Scratch& scratch) const;
  /// (argmax, max probability) — the pipeline's confidence pair.
  std::pair<int, double> predict_with_confidence(std::span<const double> x,
                                                 Scratch& scratch) const;

  /// Batch prediction over a contiguous row-major feature matrix of
  /// `matrix.size() / dim` rows; `out` receives one label per row.
  void predict_batch(std::span<const double> matrix, std::size_t dim,
                     std::span<int> out, Scratch& scratch) const;
  /// Convenience over the (non-contiguous) Dataset container.
  std::vector<int> predict_batch(const Dataset& data) const;

  bool trained() const { return !roots_.empty(); }
  int num_classes() const { return num_classes_; }
  int tree_count() const { return static_cast<int>(roots_.size()); }
  std::size_t node_count() const { return nodes_.size(); }
  /// Bytes of the compiled representation (nodes + leaf block + roots).
  std::size_t memory_bytes() const;

 private:
  std::vector<Node> nodes_;        // all trees, concatenated
  std::vector<double> leaf_proba_; // all leaf distributions, concatenated
  std::vector<std::int32_t> roots_;  // per-tree root offset into nodes_
  int num_classes_ = 0;
};

}  // namespace vpscope::ml
