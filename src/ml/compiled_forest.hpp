// Post-training compilation of a RandomForest into a flat, cache-friendly
// layout for the pipeline's hot path: every tree of the forest is lowered
// into one contiguous node array (feature index, left/right offsets as
// int32, split threshold) plus one contiguous leaf-probability block, so a
// classification touches a handful of cache lines instead of chasing
// per-node heap vectors.
//
// The compiled form is inference-only and probability-equivalent to the
// source forest: predict_proba_into accumulates the same leaf distributions
// in the same tree order and divides by the same tree count, so the output
// is bit-identical to RandomForest::predict_proba. It performs zero heap
// allocations per call, which is what lets ClassifierBank::classify run on
// many shard workers without contending on the allocator.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/forest.hpp"

namespace vpscope::ml {

class CompiledForest {
 public:
  /// One lowered tree node. Internal nodes (`feature >= 0`) hold absolute
  /// offsets of both children in the shared node array; leaves
  /// (`feature < 0`) hold in `left` the offset of their class distribution
  /// inside the shared leaf-probability block.
  struct Node {
    double threshold = 0.0;        // go left if x[feature] <= threshold
    std::int32_t feature = -1;     // -1 => leaf
    std::int32_t left = -1;        // child offset, or leaf-block offset
    std::int32_t right = -1;
  };

  /// Reusable per-caller state so predict/predict_batch stay allocation-free
  /// in steady state; one Scratch per thread, never shared.
  struct Scratch {
    std::vector<double> proba;
  };

  /// Reusable state for the cross-flow batch kernels (rows x num_classes
  /// probability staging); one per thread, never shared.
  struct BatchScratch {
    std::vector<double> proba;
  };

  /// Instruction-set level for the cross-flow batch descent. `Auto` probes
  /// the CPU at call time (one cached check); the explicit levels exist so
  /// equivalence tests can force every code path on one machine. All levels
  /// are bit-identical — the descent only compares doubles (exact in any
  /// width) and the accumulation order never changes.
  enum class Simd : std::uint8_t { Auto, Scalar, Sse2, Avx2 };
  /// Whether `level` can run on this CPU (Scalar/Auto: always).
  static bool simd_supported(Simd level);

  CompiledForest() = default;

  /// Lowers a trained forest. The source forest is not referenced after
  /// compile returns.
  static CompiledForest compile(const RandomForest& forest);

  /// Mean leaf distribution across trees, written into `out`
  /// (`out.size() == num_classes()`). Bit-identical to
  /// RandomForest::predict_proba and allocation-free.
  void predict_proba_into(std::span<const double> x,
                          std::span<double> out) const;

  int predict(std::span<const double> x, Scratch& scratch) const;
  /// (argmax, max probability) — the pipeline's confidence pair.
  std::pair<int, double> predict_with_confidence(std::span<const double> x,
                                                 Scratch& scratch) const;

  /// Cross-flow batch inference over a contiguous row-major feature matrix
  /// of `rows = matrix.size() / dim` flows: every tree is descended for a
  /// group of flows at once (SoA node arrays, lane = flow), so the tree's
  /// upper levels stay cache-hot across the group and the compare/select
  /// step vectorizes. `out` receives rows x num_classes probabilities,
  /// bit-identical per row to predict_proba_into on that row, at every Simd
  /// level.
  void predict_proba_batch(std::span<const double> matrix, std::size_t dim,
                           std::span<double> out,
                           Simd level = Simd::Auto) const;

  /// (argmax, max probability) per row — the batched confidence pair; same
  /// tie-breaking (first maximum) as predict_with_confidence.
  void predict_with_confidence_batch(std::span<const double> matrix,
                                     std::size_t dim, std::span<int> labels,
                                     std::span<double> confidences,
                                     BatchScratch& scratch,
                                     Simd level = Simd::Auto) const;

  /// Batch prediction over a contiguous row-major feature matrix of
  /// `matrix.size() / dim` rows; `out` receives one label per row.
  void predict_batch(std::span<const double> matrix, std::size_t dim,
                     std::span<int> out, BatchScratch& scratch,
                     Simd level = Simd::Auto) const;
  /// Convenience over the (non-contiguous) Dataset container.
  std::vector<int> predict_batch(const Dataset& data) const;

  bool trained() const { return !roots_.empty(); }
  /// Whether the batch path scores via leaf bitmasks (every tree has <= 64
  /// leaves) or falls back to the traversal kernels. Exposed so tests can
  /// pin coverage of both paths.
  bool uses_bitmask_scorer() const { return qs_ok_; }
  int num_classes() const { return num_classes_; }
  int tree_count() const { return static_cast<int>(roots_.size()); }
  std::size_t node_count() const { return nodes_.size(); }
  /// Bytes of the compiled representation (nodes + leaf block + roots).
  std::size_t memory_bytes() const;

 private:
  /// ONE tree for every row (in groups of up to 8 lanes), at one ISA level
  /// each. Tree-outer iteration keeps the tree's node planes cache-hot
  /// across the whole batch — the inversion that makes batching pay: the
  /// forest streams through cache once per BATCH, not once per group.
  /// These are the batch fallback for forests the bitmask scorer below
  /// cannot represent (a tree with more than 64 leaves).
  void descend_tree_scalar(std::int32_t root, const double* matrix,
                           std::size_t dim, std::size_t rows,
                           double* acc) const;
  void descend_tree_sse2(std::int32_t root, const double* matrix,
                         std::size_t dim, std::size_t rows,
                         double* acc) const;
  void descend_tree_avx2(std::int32_t root, const double* matrix,
                         std::size_t dim, std::size_t rows,
                         double* acc) const;

  /// Bitmask batch scorer (the QuickScorer scheme of Lucchese et al.,
  /// SIGIR'15), used whenever every tree has <= 64 leaves: per tree a
  /// 64-bit mask of surviving leaves starts all-ones, every FALSE node
  /// (x[feature] > threshold) ANDs away its left subtree, and the reached
  /// leaf is the lowest surviving bit. Because a feature's false nodes are
  /// exactly a prefix of its threshold-sorted node list, scoring is a
  /// branch-predictable streaming walk with no dependent-load chain at
  /// all — the structural win over any traversal. The SSE2/AVX2 variants
  /// score 2/4 rows per vector lane; all three accumulate the same leaf
  /// distributions in tree order, so results stay bit-identical across
  /// levels and to the per-flow path. Kernels write UN-divided sums.
  void build_bitmask_scorer();
  void qs_score_scalar(const double* matrix, std::size_t dim,
                       std::size_t rows, double* out) const;
  void qs_score_sse2(const double* matrix, std::size_t dim, std::size_t rows,
                     double* out) const;
  void qs_score_avx2(const double* matrix, std::size_t dim, std::size_t rows,
                     double* out) const;

  // Nodes are emitted in PREORDER per tree: an internal node's left child
  // is always at `cur + 1`, so the kernels never load a left index.
  std::vector<Node> nodes_;        // all trees, concatenated
  std::vector<double> leaf_proba_; // all leaf distributions, concatenated
  std::vector<std::int32_t> roots_;  // per-tree root offset into nodes_
  // SoA mirrors of nodes_ for the cross-flow kernels. `soa_meta_` packs
  // (feature << 32 | right-or-leaf-offset) so one 64-bit gather fetches a
  // node's whole topology; the threshold plane gathers as doubles.
  std::vector<std::uint64_t> soa_meta_;
  std::vector<std::int32_t> soa_feature_;
  std::vector<std::int32_t> soa_left_;
  std::vector<std::int32_t> soa_right_;
  std::vector<double> soa_threshold_;

  // Bitmask-scorer planes (valid when qs_ok_). Internal nodes are bucketed
  // by feature and sorted by threshold, so a row's false nodes per feature
  // are the prefix with threshold < x.
  bool qs_ok_ = false;
  std::vector<std::int32_t> qs_f_begin_;  // per feature, +1 sentinel
  std::vector<double> qs_thresh_;         // sorted within each feature
  std::vector<std::int32_t> qs_tree_;
  std::vector<std::uint64_t> qs_mask_;    // ~(left-subtree leaves)
  std::vector<std::uint64_t> qs_tree_full_;  // per tree: low n_leaves bits
  std::vector<std::int32_t> qs_leaf_base_;   // per tree, into qs_leaf_off_
  std::vector<std::int32_t> qs_leaf_off_;    // leaf position -> leaf block
  // Sparse mirror of leaf_proba_: leaves are near-pure (about 1.1 nonzero
  // classes each), and skipping a +0.0 addend is bit-exact because the
  // accumulators are never -0.0 (they start at +0.0 and only ever add
  // non-negative probabilities).
  std::vector<std::int32_t> sparse_begin_;  // per leaf id, +1 sentinel
  std::vector<std::int32_t> sparse_cls_;
  std::vector<double> sparse_val_;
  int num_classes_ = 0;
};

}  // namespace vpscope::ml
