#include "ml/mutual_info.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace vpscope::ml {

namespace {

double entropy_from_counts(const std::map<int, int>& counts, int total) {
  double h = 0.0;
  for (const auto& [outcome, count] : counts) {
    const double p = static_cast<double>(count) / total;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double entropy(const std::vector<int>& outcomes) {
  if (outcomes.empty()) return 0.0;
  std::map<int, int> counts;
  for (int o : outcomes) counts[o]++;
  return entropy_from_counts(counts, static_cast<int>(outcomes.size()));
}

double mutual_information(const std::vector<int>& xs,
                          const std::vector<int>& ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("mutual_information: size mismatch");
  if (xs.empty()) return 0.0;

  std::map<int, int> cx, cy;
  std::map<std::pair<int, int>, int> cxy;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cx[xs[i]]++;
    cy[ys[i]]++;
    cxy[{xs[i], ys[i]}]++;
  }
  const int n = static_cast<int>(xs.size());
  const double hx = entropy_from_counts(cx, n);
  const double hy = entropy_from_counts(cy, n);
  double hxy = 0.0;
  for (const auto& [outcome, count] : cxy) {
    const double p = static_cast<double>(count) / n;
    hxy -= p * std::log2(p);
  }
  // Clamp tiny negative values from floating point noise.
  return std::max(0.0, hx + hy - hxy);
}

double mutual_information(const std::vector<std::string>& xs,
                          const std::vector<int>& ys) {
  std::unordered_map<std::string, int> ids;
  std::vector<int> xi;
  xi.reserve(xs.size());
  for (const auto& s : xs) {
    const auto [it, inserted] = ids.try_emplace(s, static_cast<int>(ids.size()));
    xi.push_back(it->second);
  }
  return mutual_information(xi, ys);
}

int unique_count(const std::vector<std::string>& xs) {
  std::unordered_set<std::string> set(xs.begin(), xs.end());
  return static_cast<int>(set.size());
}

}  // namespace vpscope::ml
