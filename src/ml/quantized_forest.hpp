// Quantized int16 lowering of a trained RandomForest — the memory-bound
// variant of the compiled forest for deployment boxes where the forest
// working set, not arithmetic, is the classify-stage bottleneck (nodes
// shrink 24 -> 12 bytes, thresholds and leaf scores become int16).
//
// The quantization is THRESHOLD-RANK, not value rounding, so the descent is
// provably identical to the float path rather than merely close: per
// feature f, let cuts(f) be the sorted distinct split thresholds the forest
// uses on f. A node splitting at threshold t stores rank(t) = index of t in
// cuts(f); an input x stores Q(x) = |{c in cuts(f) : c < x}|. Then
//
//   x <= t  <=>  Q(x) <= rank(t)
//
// (if x <= t every cut below x is below t, so Q(x) <= rank(t); if x > t
// then t itself and every cut below it are < x, so Q(x) > rank(t)) — every
// comparison, hence every leaf, matches the double descent exactly. NaN
// inputs quantize to the +inf rank, matching `x <= t == false`.
//
// Leaf class scores are rounded to int16 at scale 2^14 and accumulated in
// int32. Rounding can only move the argmax when the accumulated gap between
// two classes is at most tree_count (each leaf contributes <= 0.5 error at
// scale); predictions inside that margin fall back to the exact double
// accumulation over the SAME leaves, making predict() argmax-identical to
// CompiledForest::predict by construction — the corpus + mutant equivalence
// suite then verifies the construction, not luck.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ml/forest.hpp"

namespace vpscope::ml {

class QuantizedForest {
 public:
  /// One lowered node: 12 bytes (vs the compiled form's 24). Internal nodes
  /// (`feature >= 0`) compare int16 ranks; leaves (`feature < 0`) hold in
  /// `left` the offset of their score/probability block.
  struct Node {
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int16_t feature = -1;     // -1 => leaf
    std::int16_t qthreshold = 0;   // rank of the split threshold on feature
  };

  /// Per-thread reusable state; predict/predict_batch are allocation-free in
  /// steady state.
  struct Scratch {
    std::vector<std::int16_t> qx;      // quantized feature rows
    std::vector<std::int32_t> leaves;  // per-lane, per-tree leaf offsets
    std::vector<double> proba;         // exact-fallback accumulator
  };

  /// Scale of the int16 leaf scores (probabilities in [0,1] -> [0, 2^14]).
  static constexpr std::int32_t kScoreScale = 1 << 14;

  QuantizedForest() = default;

  /// Lowers a trained forest. Throws std::invalid_argument when the forest
  /// exceeds the int16 envelope (feature index or per-feature distinct
  /// threshold count above 32767) — deployment forests are orders of
  /// magnitude below it.
  static QuantizedForest quantize(const RandomForest& forest);

  /// Argmax-identical to CompiledForest::predict on the same input (see the
  /// header comment for why that is a theorem, not a measurement).
  int predict(std::span<const double> x, Scratch& scratch) const;
  /// (argmax, max probability). The probability is reconstructed exactly
  /// (double accumulation over the descended leaves), so the pair matches
  /// CompiledForest::predict_with_confidence bit-for-bit.
  std::pair<int, double> predict_with_confidence(std::span<const double> x,
                                                 Scratch& scratch) const;

  /// Cross-flow batch over a contiguous row-major matrix (lane = flow, same
  /// grouping as CompiledForest::predict_proba_batch); one label per row.
  void predict_batch(std::span<const double> matrix, std::size_t dim,
                     std::span<int> out, Scratch& scratch) const;

  bool trained() const { return !roots_.empty(); }
  int num_classes() const { return num_classes_; }
  int tree_count() const { return static_cast<int>(roots_.size()); }
  std::size_t node_count() const { return nodes_.size(); }
  int num_features() const { return n_features_; }
  /// Bytes of the quantized representation (nodes + scores + cut tables +
  /// the double leaf block kept for the exact fallback).
  std::size_t memory_bytes() const;

 private:
  /// Quantizes one row into `qx[0..dim)` (ranks; features the forest never
  /// splits on get rank 0 — they are never compared).
  void quantize_row(std::span<const double> x, std::int16_t* qx) const;
  /// Descends every tree for up to 8 rows of `qx`, recording per-lane leaf
  /// offsets (lane-major: leaves[j * tree_count + t]) and int32 scores.
  void descend_group(const std::int16_t* qx, std::size_t dim,
                     std::size_t lanes, std::int32_t* scores,
                     std::int32_t* leaves) const;
  /// Resolves one row's label from its int32 scores, falling back to exact
  /// double accumulation over `leaves` when the margin test is inconclusive.
  int resolve_label(const std::int32_t* scores, const std::int32_t* leaves,
                    Scratch& scratch) const;

  std::vector<Node> nodes_;               // all trees, concatenated
  std::vector<std::int32_t> roots_;       // per-tree root offset
  std::vector<std::int16_t> leaf_score_;  // int16 leaf blocks, scale 2^14
  std::vector<double> leaf_proba_;        // exact leaf blocks (fallback path)
  std::vector<double> cuts_;              // concatenated per-feature thresholds
  std::vector<std::int32_t> cut_offsets_; // per-feature [begin, end) in cuts_
  int num_classes_ = 0;
  int n_features_ = 0;
};

}  // namespace vpscope::ml
