#include "synth/flow_synthesizer.hpp"

#include <algorithm>

#include "quic/initial.hpp"
#include "tls/constants.hpp"

namespace vpscope::synth {

using fingerprint::Provider;
using fingerprint::StackProfile;
using fingerprint::Transport;

namespace {

/// Extension emit order template. Stacks include different subsets; the
/// resulting per-stack order (and Chrome's per-flow shuffle) is part of the
/// fingerprint surface (attribute o1).
enum class Slot {
  GreaseFirst,
  ServerName,
  ExtendedMasterSecret,
  RenegotiationInfo,
  SupportedGroups,
  EcPointFormats,
  SessionTicket,
  Alpn,
  StatusRequest,
  SignatureAlgorithms,
  Sct,
  EncryptThenMac,
  KeyShare,
  PskModes,
  SupportedVersions,
  CompressCertificate,
  ApplicationSettings,
  RecordSizeLimit,
  DelegatedCredentials,
  PostHandshakeAuth,
  EarlyData,
  QuicTransportParams,
  GreaseLast,
};

}  // namespace

tls::ClientHello FlowSynthesizer::build_client_hello(
    const StackProfile& profile, std::string_view sni) {
  const fingerprint::TlsProfile& t = profile.tls;
  tls::ClientHello chlo;
  chlo.legacy_version = t.legacy_version;
  for (auto& b : chlo.random) b = static_cast<std::uint8_t>(rng_.next_u32());
  if (t.session_id_len > 0) {
    chlo.session_id.resize(t.session_id_len);
    for (auto& b : chlo.session_id)
      b = static_cast<std::uint8_t>(rng_.next_u32());
  }

  // Cipher suites, with a leading GREASE draw when the stack greases.
  if (t.grease)
    chlo.cipher_suites.push_back(
        tls::grease_value(rng_.uniform_int(0, 15)));
  chlo.cipher_suites.insert(chlo.cipher_suites.end(), t.cipher_suites.begin(),
                            t.cipher_suites.end());

  // Assemble the slot list this stack emits.
  std::vector<Slot> slots;
  if (t.grease) slots.push_back(Slot::GreaseFirst);
  slots.push_back(Slot::ServerName);
  if (t.extended_master_secret) slots.push_back(Slot::ExtendedMasterSecret);
  if (t.renegotiation_info) slots.push_back(Slot::RenegotiationInfo);
  slots.push_back(Slot::SupportedGroups);
  if (t.ec_point_formats) slots.push_back(Slot::EcPointFormats);
  if (t.session_ticket) slots.push_back(Slot::SessionTicket);
  if (!t.alpn.empty()) slots.push_back(Slot::Alpn);
  if (t.status_request) slots.push_back(Slot::StatusRequest);
  slots.push_back(Slot::SignatureAlgorithms);
  if (t.sct) slots.push_back(Slot::Sct);
  if (t.encrypt_then_mac) slots.push_back(Slot::EncryptThenMac);
  if (!t.key_share_groups.empty()) slots.push_back(Slot::KeyShare);
  if (!t.psk_modes.empty()) slots.push_back(Slot::PskModes);
  if (!t.supported_versions.empty()) slots.push_back(Slot::SupportedVersions);
  if (!t.compress_certificate.empty())
    slots.push_back(Slot::CompressCertificate);
  if (t.application_settings) slots.push_back(Slot::ApplicationSettings);
  if (t.record_size_limit) slots.push_back(Slot::RecordSizeLimit);
  if (!t.delegated_credentials.empty())
    slots.push_back(Slot::DelegatedCredentials);
  if (t.post_handshake_auth) slots.push_back(Slot::PostHandshakeAuth);
  if (t.early_data || (t.early_data_prob > 0 && rng_.bernoulli(t.early_data_prob)))
    slots.push_back(Slot::EarlyData);
  if (profile.transport == Transport::Quic)
    slots.push_back(Slot::QuicTransportParams);
  if (t.grease) slots.push_back(Slot::GreaseLast);

  if (t.randomize_extension_order) rng_.shuffle(slots);

  const bool ticket_nonempty = rng_.bernoulli(t.session_ticket_nonempty_prob);

  for (Slot slot : slots) {
    switch (slot) {
      case Slot::GreaseFirst:
        chlo.add_raw(tls::grease_value(rng_.uniform_int(0, 15)), {});
        break;
      case Slot::ServerName:
        chlo.add_server_name(sni);
        break;
      case Slot::ExtendedMasterSecret:
        chlo.add_extended_master_secret();
        break;
      case Slot::RenegotiationInfo:
        chlo.add_renegotiation_info();
        break;
      case Slot::SupportedGroups: {
        std::vector<std::uint16_t> groups;
        if (t.grease)
          groups.push_back(tls::grease_value(rng_.uniform_int(0, 15)));
        groups.insert(groups.end(), t.groups.begin(), t.groups.end());
        chlo.add_supported_groups(groups);
        break;
      }
      case Slot::EcPointFormats:
        chlo.add_ec_point_formats({0});
        break;
      case Slot::SessionTicket:
        chlo.add_session_ticket(ticket_nonempty ? 192 : 0);
        break;
      case Slot::Alpn:
        chlo.add_alpn(t.alpn);
        break;
      case Slot::StatusRequest:
        chlo.add_status_request(t.status_request_type);
        break;
      case Slot::SignatureAlgorithms:
        chlo.add_signature_algorithms(t.sigalgs);
        break;
      case Slot::Sct:
        chlo.add_sct();
        break;
      case Slot::EncryptThenMac:
        chlo.add_encrypt_then_mac();
        break;
      case Slot::KeyShare: {
        std::vector<std::uint16_t> shares;
        if (t.grease)
          shares.push_back(tls::grease_value(rng_.uniform_int(0, 15)));
        shares.insert(shares.end(), t.key_share_groups.begin(),
                      t.key_share_groups.end());
        chlo.add_key_shares(shares,
                            static_cast<std::uint8_t>(rng_.next_u32()));
        break;
      }
      case Slot::PskModes:
        chlo.add_psk_key_exchange_modes(t.psk_modes);
        break;
      case Slot::SupportedVersions: {
        std::vector<std::uint16_t> versions;
        if (t.grease)
          versions.push_back(tls::grease_value(rng_.uniform_int(0, 15)));
        versions.insert(versions.end(), t.supported_versions.begin(),
                        t.supported_versions.end());
        chlo.add_supported_versions(versions);
        break;
      }
      case Slot::CompressCertificate:
        chlo.add_compress_certificate(t.compress_certificate);
        break;
      case Slot::ApplicationSettings:
        chlo.add_application_settings({"h2"}, t.application_settings_code);
        break;
      case Slot::RecordSizeLimit:
        chlo.add_record_size_limit(*t.record_size_limit);
        break;
      case Slot::DelegatedCredentials:
        chlo.add_delegated_credentials(t.delegated_credentials);
        break;
      case Slot::PostHandshakeAuth:
        chlo.add_post_handshake_auth();
        break;
      case Slot::EarlyData:
        chlo.add_early_data();
        break;
      case Slot::QuicTransportParams: {
        quic::TransportParameters tp = profile.quic.transport_params;
        if (tp.has_initial_source_connection_id) {
          tp.initial_source_connection_id.resize(profile.quic.scid_len);
          for (auto& b : tp.initial_source_connection_id)
            b = static_cast<std::uint8_t>(rng_.next_u32());
        }
        chlo.add_quic_transport_parameters(tp.serialize());
        break;
      }
      case Slot::GreaseLast:
        chlo.add_raw(tls::grease_value(rng_.uniform_int(0, 15)), Bytes{0});
        break;
    }
  }

  // Padding goes last regardless of shuffling, as in real stacks.
  if (t.padding_to) chlo.add_padding_to(*t.padding_to);
  return chlo;
}

net::IpAddr FlowSynthesizer::random_client_ip() {
  return net::IpAddr::v4(
      10, static_cast<std::uint8_t>(rng_.uniform(0, 255)),
      static_cast<std::uint8_t>(rng_.uniform(0, 255)),
      static_cast<std::uint8_t>(rng_.uniform(1, 254)));
}

net::IpAddr FlowSynthesizer::server_ip_for(Provider provider) {
  // One stable /16 per provider, host drawn per flow.
  const std::uint8_t base = [&] {
    switch (provider) {
      case Provider::YouTube: return std::uint8_t{142};
      case Provider::Netflix: return std::uint8_t{45};
      case Provider::Disney: return std::uint8_t{13};
      case Provider::Amazon: return std::uint8_t{52};
    }
    return std::uint8_t{99};
  }();
  return net::IpAddr::v4(base, 250,
                         static_cast<std::uint8_t>(rng_.uniform(0, 255)),
                         static_cast<std::uint8_t>(rng_.uniform(1, 254)));
}

LabeledFlow FlowSynthesizer::synthesize(const StackProfile& base_profile,
                                        const FlowOptions& options) {
  // Per-flow stack-variant mixture: the ground-truth label always comes
  // from the requested platform, but the flow may be emitted from a variant
  // build (see StackProfile::variants).
  const StackProfile* selected = &base_profile;
  if (!base_profile.variants.empty()) {
    double u = rng_.uniform01();
    for (const auto& variant : base_profile.variants) {
      if (u < variant.prob) {
        selected = variant.profile.get();
        break;
      }
      u -= variant.prob;
    }
  }
  const StackProfile& profile = *selected;

  LabeledFlow flow;
  flow.platform = base_profile.platform;
  flow.provider = profile.provider;
  flow.transport = profile.transport;
  flow.client_ip = random_client_ip();
  flow.server_ip = server_ip_for(profile.provider);
  if (options.ipv6) {
    // Map the drawn v4 addresses into a ULA-style v6 space.
    auto to_v6 = [](net::IpAddr v4) {
      net::IpAddr v6;
      v6.is_v6 = true;
      v6.bytes[0] = 0xfd;
      v6.bytes[1] = 0x00;
      for (int i = 0; i < 4; ++i) v6.bytes[static_cast<std::size_t>(12 + i)] = v4.bytes[static_cast<std::size_t>(i)];
      return v6;
    };
    flow.client_ip = to_v6(flow.client_ip);
    flow.server_ip = to_v6(flow.server_ip);
  }
  flow.client_port = static_cast<std::uint16_t>(rng_.uniform(32768, 60999));
  flow.server_port = 443;
  flow.sni = rng_.pick(profile.sni_candidates);

  const std::uint8_t ttl = static_cast<std::uint8_t>(
      profile.tcp.initial_ttl - std::min<int>(options.capture_hops, 32));
  std::uint64_t now = options.start_time_us;

  auto push = [&](Bytes ip_payload, std::uint8_t proto, bool from_client) {
    const net::IpAddr& src = from_client ? flow.client_ip : flow.server_ip;
    const net::IpAddr& dst = from_client ? flow.server_ip : flow.client_ip;
    const std::uint8_t hops = from_client ? ttl : 57;  // server side: never
                                                       // an attribute
    if (options.ipv6) {
      net::Ipv6Header ip;
      ip.hop_limit = hops;
      ip.next_header = proto;
      ip.src = src;
      ip.dst = dst;
      flow.packets.push_back({now, ip.serialize(ip_payload)});
    } else {
      net::Ipv4Header ip;
      ip.ttl = hops;
      ip.protocol = proto;
      ip.src = src;
      ip.dst = dst;
      ip.identification = static_cast<std::uint16_t>(rng_.next_u32());
      flow.packets.push_back({now, ip.serialize(ip_payload)});
    }
  };
  auto push_client = [&](Bytes ip_payload, std::uint8_t proto) {
    push(std::move(ip_payload), proto, true);
  };
  auto push_server = [&](Bytes ip_payload, std::uint8_t proto) {
    push(std::move(ip_payload), proto, false);
  };

  const tls::ClientHello chlo = build_client_hello(profile, flow.sni);

  if (profile.transport == Transport::Tcp) {
    const fingerprint::TcpProfile& tp = profile.tcp;
    const std::uint32_t client_isn = rng_.next_u32();
    const std::uint32_t server_isn = rng_.next_u32();

    // SYN
    net::TcpHeader syn;
    syn.src_port = flow.client_port;
    syn.dst_port = flow.server_port;
    syn.seq = client_isn;
    syn.flags.syn = true;
    syn.flags.cwr = tp.ecn_setup;
    syn.flags.ece = tp.ecn_setup;
    syn.window = tp.window;
    syn.options.mss = tp.mss;
    syn.options.window_scale = tp.window_scale;
    syn.options.sack_permitted = tp.sack_permitted;
    syn.options.timestamps = tp.timestamps;
    syn.options.ts_value = rng_.next_u32();
    syn.options.kind_order = tp.option_kind_order;
    push_client(syn.serialize({}), net::kProtoTcp);

    // SYN-ACK (generic server stack — carries no client fingerprint).
    now += static_cast<std::uint64_t>(rng_.uniform(3000, 30000));
    net::TcpHeader synack;
    synack.src_port = flow.server_port;
    synack.dst_port = flow.client_port;
    synack.seq = server_isn;
    synack.ack = client_isn + 1;
    synack.flags.syn = true;
    synack.flags.ack = true;
    synack.flags.ece = tp.ecn_setup;
    synack.window = 65535;
    synack.options.mss = 1460;
    synack.options.sack_permitted = true;
    synack.options.window_scale = 7;
    synack.options.timestamps = tp.timestamps;
    synack.options.ts_value = rng_.next_u32();
    push_server(synack.serialize({}), net::kProtoTcp);

    // ACK
    now += static_cast<std::uint64_t>(rng_.uniform(50, 500));
    net::TcpHeader ack;
    ack.src_port = flow.client_port;
    ack.dst_port = flow.server_port;
    ack.seq = client_isn + 1;
    ack.ack = server_isn + 1;
    ack.flags.ack = true;
    ack.window = tp.window;
    push_client(ack.serialize({}), net::kProtoTcp);

    // ClientHello record
    now += static_cast<std::uint64_t>(rng_.uniform(100, 2000));
    net::TcpHeader hello = ack;
    hello.flags.psh = true;
    push_client(hello.serialize(chlo.serialize_record()), net::kProtoTcp);

    // ServerHello stub (realism only; the pipeline ignores server records).
    now += static_cast<std::uint64_t>(rng_.uniform(3000, 30000));
    net::TcpHeader sh;
    sh.src_port = flow.server_port;
    sh.dst_port = flow.client_port;
    sh.seq = server_isn + 1;
    sh.ack = ack.seq + static_cast<std::uint32_t>(chlo.serialize_record().size());
    sh.flags.ack = true;
    sh.flags.psh = true;
    sh.window = 65535;
    Writer server_record;
    server_record.u8(22);
    server_record.u16(0x0303);
    server_record.u16(96);
    for (int i = 0; i < 96; ++i)
      server_record.u8(static_cast<std::uint8_t>(rng_.next_u32()));
    push_server(sh.serialize(std::move(server_record).take()), net::kProtoTcp);
  } else {
    // QUIC: client Initial flight (possibly several datagrams).
    Bytes dcid(profile.quic.dcid_len, 0);
    for (auto& b : dcid) b = static_cast<std::uint8_t>(rng_.next_u32());
    // The on-wire SCID must match initial_source_connection_id in the TP;
    // build_client_hello randomized it, so recover it from the CHLO we built.
    Bytes scid;
    if (const auto tp_body = chlo.quic_transport_parameters()) {
      if (const auto tp = quic::TransportParameters::parse(*tp_body))
        scid = tp->initial_source_connection_id;
    }

    const auto datagrams = quic::build_client_initial_flight(
        dcid, scid, chlo.serialize_handshake(), 0,
        profile.quic.initial_datagram_size);
    for (const auto& dg : datagrams) {
      net::UdpHeader udp;
      udp.src_port = flow.client_port;
      udp.dst_port = flow.server_port;
      push_client(udp.serialize(dg), net::kProtoUdp);
      now += static_cast<std::uint64_t>(rng_.uniform(20, 200));
    }

    // Server Initial stub (random long-header-looking datagram).
    now += static_cast<std::uint64_t>(rng_.uniform(3000, 30000));
    net::UdpHeader udp;
    udp.src_port = flow.server_port;
    udp.dst_port = flow.client_port;
    Bytes server_dg(1200, 0);
    for (auto& b : server_dg) b = static_cast<std::uint8_t>(rng_.next_u32());
    server_dg[0] = 0xc1;  // long header, Initial-ish, but not client-keyed
    push_server(udp.serialize(server_dg), net::kProtoUdp);
  }

  // Optional downstream payload, emitted as snap-length-truncated packets:
  // headers carry the true total_length while the capture keeps only the
  // headers — exactly what a telemetry tap does.
  if (options.payload_bytes > 0 && options.payload_duration_us > 0) {
    const std::uint64_t mtu_payload = 1400;
    const std::uint64_t n_packets =
        std::max<std::uint64_t>(1, options.payload_bytes / mtu_payload);
    // Cap the number of synthesized packets; scale per-packet size via the
    // IP total_length field instead (snaplen semantics). The cap is raised
    // when needed so no emitted packet has to report more than the IPv4
    // maximum and the aggregate volume stays exact.
    const std::uint64_t emit =
        std::max(std::min<std::uint64_t>(n_packets, 64),
                 (options.payload_bytes + 65534) / 65535);
    const std::uint64_t bytes_per_emit = options.payload_bytes / emit;
    const std::uint64_t dt = options.payload_duration_us / emit;
    for (std::uint64_t i = 0; i < emit; ++i) {
      now += dt;
      net::TcpHeader data;
      data.src_port = flow.server_port;
      data.dst_port = flow.client_port;
      data.flags.ack = true;
      data.window = 65535;
      net::UdpHeader udata;
      udata.src_port = flow.server_port;
      udata.dst_port = flow.client_port;

      net::Ipv4Header ip;
      ip.ttl = 57;
      ip.src = flow.server_ip;
      ip.dst = flow.client_ip;
      ip.protocol = profile.transport == Transport::Tcp ? net::kProtoTcp
                                                        : net::kProtoUdp;
      // total_length reports the full (untruncated) datagram size, capped at
      // the IPv4 maximum; bytes beyond one MTU per packet are accumulated by
      // the telemetry layer across the emitted packets.
      ip.total_length = static_cast<std::uint16_t>(
          std::min<std::uint64_t>(bytes_per_emit, 65535));
      const Bytes transport_hdr = profile.transport == Transport::Tcp
                                      ? data.serialize({})
                                      : udata.serialize({});
      flow.packets.push_back({now, ip.serialize(transport_hdr)});
    }
  }

  return flow;
}

}  // namespace vpscope::synth
