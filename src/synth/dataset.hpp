// Labeled dataset generation reproducing the composition of the paper's
// Table 1 (lab ground truth, ~10k flows over 17 platforms × 4 providers)
// and the §4.3.2 home/open-set capture (~2000 flows, drifted software
// versions).
#pragma once

#include <cstdint>
#include <vector>

#include "synth/flow_synthesizer.hpp"

namespace vpscope::synth {

struct Dataset {
  std::vector<LabeledFlow> flows;
  fingerprint::Environment environment = fingerprint::Environment::Lab;
};

/// Flow counts per (platform, provider) from the paper's Table 1.
/// Returns 0 for unsupported combinations.
int table1_flow_count(const fingerprint::PlatformId& platform,
                      fingerprint::Provider provider);

/// Fraction of a platform's YouTube flows carried over QUIC when the
/// platform is QUIC-capable (browsers let users toggle; the dataset covers
/// both). The Android native app is QUIC-only (fraction 1).
double quic_fraction(const fingerprint::PlatformId& platform);

/// Generates the lab dataset with Table 1's per-cell flow counts,
/// deterministically for a seed. `scale` multiplies every cell (scale=1
/// reproduces the paper's ~10k flows).
Dataset generate_lab_dataset(std::uint64_t seed, double scale = 1.0);

/// Generates the home/open-set dataset: ~2000 flows spread evenly across
/// all supported (platform, provider, transport) combinations, synthesized
/// from version-drifted profiles.
Dataset generate_home_dataset(std::uint64_t seed, int total_flows = 2000);

/// Merges the flows into one capture-order packet stream: all packets
/// sorted by timestamp, ties broken by flow order (stable) — what a tap at
/// the aggregation point would have recorded. The shared front-end for the
/// pcap exporter, the replay benches and the equivalence tests.
std::vector<net::Packet> packet_stream(const std::vector<LabeledFlow>& flows);

}  // namespace vpscope::synth
