// Flow synthesis: turns a StackProfile into the actual packet exchange of a
// video-streaming connection establishment — TCP three-way handshake plus a
// TLS ClientHello record, or an AEAD-protected QUIC Initial flight — with
// per-flow stochastic noise (GREASE draws, Chrome extension-order
// randomization, resumption tickets, TTL hop decrements, SNI draws).
//
// This replaces the paper's gated lab/home PCAP collection. The packets are
// real wire format: they survive a PCAP round trip and are consumed by the
// same parser/extractor stack the classification pipeline uses.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fingerprint/profiles.hpp"
#include "net/packet.hpp"
#include "tls/client_hello.hpp"
#include "util/rng.hpp"

namespace vpscope::synth {

/// A synthesized, labeled flow: the ground truth record of the dataset.
struct LabeledFlow {
  fingerprint::PlatformId platform;
  fingerprint::Provider provider = fingerprint::Provider::YouTube;
  fingerprint::Transport transport = fingerprint::Transport::Tcp;
  fingerprint::Environment environment = fingerprint::Environment::Lab;

  net::IpAddr client_ip;
  net::IpAddr server_ip;
  std::uint16_t client_port = 0;
  std::uint16_t server_port = 443;
  std::string sni;

  /// Handshake packets in time order (client and server directions).
  std::vector<net::Packet> packets;
};

/// Options controlling one synthesis call.
struct FlowOptions {
  std::uint64_t start_time_us = 0;
  /// Extra network hops between the client and the capture point
  /// (decrements TTL). The lab gateway captures at 0 hops; campus/home
  /// captures sit a few hops away.
  int capture_hops = 0;
  /// When > 0, appends this many bytes of downstream payload as additional
  /// (possibly snap-length-truncated) packets spread over `payload_duration_us`.
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_duration_us = 0;
  /// Emit the flow over IPv6 (hop limit plays the TTL role). The paper's
  /// campus is IPv4/NAT-dominated, but the pipeline is address-family
  /// agnostic.
  bool ipv6 = false;
};

class FlowSynthesizer {
 public:
  explicit FlowSynthesizer(Rng rng) : rng_(rng) {}

  /// Builds the ClientHello a flow from this profile would send (exposed
  /// separately for tests and for fingerprint inspection tools).
  tls::ClientHello build_client_hello(const fingerprint::StackProfile& profile,
                                      std::string_view sni);

  /// Synthesizes one labeled flow from the profile.
  LabeledFlow synthesize(const fingerprint::StackProfile& profile,
                         const FlowOptions& options = {});

 private:
  net::IpAddr random_client_ip();
  net::IpAddr server_ip_for(fingerprint::Provider provider);

  Rng rng_;
};

}  // namespace vpscope::synth
