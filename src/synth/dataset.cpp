#include "synth/dataset.hpp"

#include <algorithm>
#include <cmath>

namespace vpscope::synth {

using fingerprint::Agent;
using fingerprint::Environment;
using fingerprint::Os;
using fingerprint::PlatformId;
using fingerprint::Provider;
using fingerprint::Transport;

int table1_flow_count(const PlatformId& p, Provider provider) {
  struct Row {
    Os os;
    Agent agent;
    int counts[4];  // YT, NF, DN, AP
  };
  // Verbatim from the paper's Table 1 ("-" encoded as 0).
  static const Row rows[] = {
      {Os::Windows, Agent::Chrome, {411, 202, 199, 215}},
      {Os::Windows, Agent::Edge, {406, 208, 200, 200}},
      {Os::Windows, Agent::Firefox, {466, 207, 204, 195}},
      {Os::Windows, Agent::NativeApp, {0, 204, 211, 186}},
      {Os::MacOS, Agent::Safari, {200, 204, 200, 201}},
      {Os::MacOS, Agent::Chrome, {407, 213, 202, 208}},
      {Os::MacOS, Agent::Edge, {402, 204, 202, 210}},
      {Os::MacOS, Agent::Firefox, {467, 212, 202, 199}},
      {Os::MacOS, Agent::NativeApp, {0, 0, 0, 200}},
      {Os::Android, Agent::Chrome, {107, 0, 0, 0}},
      {Os::Android, Agent::SamsungInternet, {103, 0, 0, 0}},
      {Os::Android, Agent::NativeApp, {100, 102, 106, 111}},
      {Os::IOS, Agent::Safari, {203, 0, 0, 0}},
      {Os::IOS, Agent::Chrome, {213, 0, 0, 0}},
      {Os::IOS, Agent::NativeApp, {203, 215, 306, 372}},
      {Os::AndroidTV, Agent::NativeApp, {200, 116, 107, 113}},
      {Os::PlayStation, Agent::NativeApp, {105, 100, 100, 103}},
  };
  for (const Row& row : rows) {
    if (row.os == p.os && row.agent == p.agent)
      return row.counts[static_cast<int>(provider)];
  }
  return 0;
}

double quic_fraction(const PlatformId& p) {
  if (!fingerprint::supports_quic(p, Provider::YouTube)) return 0.0;
  if (p.os == Os::Android && p.agent == Agent::NativeApp) return 1.0;
  return 0.5;  // browsers and the iOS app cover both configurations
}

namespace {

Dataset generate(std::uint64_t seed, Environment env,
                 const std::vector<std::tuple<PlatformId, Provider,
                                              Transport, int>>& plan) {
  Dataset ds;
  ds.environment = env;
  Rng rng(seed);
  FlowSynthesizer synth(rng.fork());
  std::uint64_t t = 0;
  for (const auto& [platform, provider, transport, count] : plan) {
    const auto profile =
        fingerprint::make_profile(platform, provider, transport, env);
    for (int i = 0; i < count; ++i) {
      FlowOptions opt;
      opt.start_time_us = t;
      // Lab: captured at the access gateway (no hops). Home: behind a
      // residential gateway + ISP aggregation (1-3 hops to the vantage).
      opt.capture_hops = env == Environment::Lab
                             ? 0
                             : static_cast<int>(rng.uniform(1, 3));
      LabeledFlow flow = synth.synthesize(profile, opt);
      flow.environment = env;
      ds.flows.push_back(std::move(flow));
      t += 1000;
    }
  }
  return ds;
}

}  // namespace

Dataset generate_lab_dataset(std::uint64_t seed, double scale) {
  std::vector<std::tuple<PlatformId, Provider, Transport, int>> plan;
  for (const auto& platform : fingerprint::all_platforms()) {
    for (Provider provider : fingerprint::all_providers()) {
      const int total = static_cast<int>(
          std::lround(table1_flow_count(platform, provider) * scale));
      if (total == 0) continue;
      const double qf =
          provider == Provider::YouTube ? quic_fraction(platform) : 0.0;
      const int quic_count = static_cast<int>(std::lround(total * qf));
      const int tcp_count = total - quic_count;
      if (tcp_count > 0)
        plan.emplace_back(platform, provider, Transport::Tcp, tcp_count);
      if (quic_count > 0)
        plan.emplace_back(platform, provider, Transport::Quic, quic_count);
    }
  }
  return generate(seed, Environment::Lab, plan);
}

Dataset generate_home_dataset(std::uint64_t seed, int total_flows) {
  // Count supported combinations first, then spread flows evenly ("over
  // 2000 video flows spread evenly across all user platforms").
  std::vector<std::tuple<PlatformId, Provider, Transport, int>> combos;
  for (const auto& platform : fingerprint::all_platforms()) {
    for (Provider provider : fingerprint::all_providers()) {
      if (fingerprint::supports_tcp(platform, provider))
        combos.emplace_back(platform, provider, Transport::Tcp, 0);
      if (fingerprint::supports_quic(platform, provider))
        combos.emplace_back(platform, provider, Transport::Quic, 0);
    }
  }
  const int per_combo =
      std::max(1, total_flows / static_cast<int>(combos.size()));
  for (auto& combo : combos) std::get<3>(combo) = per_combo;
  return generate(seed, Environment::Home, combos);
}

std::vector<net::Packet> packet_stream(const std::vector<LabeledFlow>& flows) {
  std::vector<net::Packet> stream;
  std::size_t total = 0;
  for (const auto& flow : flows) total += flow.packets.size();
  stream.reserve(total);
  for (const auto& flow : flows)
    stream.insert(stream.end(), flow.packets.begin(), flow.packets.end());
  std::stable_sort(stream.begin(), stream.end(),
                   [](const net::Packet& a, const net::Packet& b) {
                     return a.timestamp_us < b.timestamp_us;
                   });
  return stream;
}

}  // namespace vpscope::synth
