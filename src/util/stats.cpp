#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace vpscope {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

BoxSummary box_summary(std::vector<double> values) {
  BoxSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.q1 = percentile(values, 25.0);
  s.median = percentile(values, 50.0);
  s.q3 = percentile(values, 75.0);
  return s;
}

}  // namespace vpscope
