// Byte-buffer primitives shared by every protocol module: a growable Bytes
// alias, big-endian cursor Reader/Writer, and hex helpers.
//
// Network protocol encodings in this codebase are always explicit about
// endianness; these cursors are the only place byte order is handled.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace vpscope {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Renders a byte view as lowercase hex, e.g. {0xde, 0xad} -> "dead".
std::string to_hex(ByteView data);

/// Parses lowercase/uppercase hex into bytes. Ignores nothing: the input must
/// be an even number of hex digits. Returns empty on malformed input only if
/// the input itself is empty; otherwise throws std::invalid_argument.
Bytes from_hex(std::string_view hex);

/// Big-endian, bounds-checked read cursor over a borrowed byte view.
///
/// All reads are total: on underflow they set a sticky failure flag and
/// return zero values instead of touching out-of-bounds memory. Parsers
/// check `ok()` (or `remaining()`) at their convenience; once failed, every
/// subsequent read also fails. This mirrors how robust packet parsers avoid
/// error-checking every 2-byte field individually.
class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t offset() const { return off_; }
  std::size_t remaining() const { return ok_ ? data_.size() - off_ : 0; }
  bool empty() const { return remaining() == 0; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u24();  // 3-byte big-endian, used by TLS length fields
  std::uint32_t u32();
  std::uint64_t u64();

  /// Copies `n` bytes out; on underflow returns an empty vector and fails.
  Bytes bytes(std::size_t n);

  /// Borrows `n` bytes without copying; the view is valid while the
  /// underlying buffer lives. On underflow returns an empty view and fails.
  ByteView view(std::size_t n);

  /// Skips `n` bytes.
  void skip(std::size_t n);

  /// Marks the reader failed (used when a parsed length field is
  /// inconsistent with the surrounding structure).
  void fail() { ok_ = false; }

 private:
  bool take(std::size_t n);

  ByteView data_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

/// Big-endian append-only write cursor producing a Bytes value.
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u24(std::uint32_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(ByteView data) { out_.insert(out_.end(), data.begin(), data.end()); }
  void raw(const Bytes& data) { raw(ByteView{data}); }

  std::size_t size() const { return out_.size(); }

  /// Overwrites a previously written big-endian u16 at `at` — the standard
  /// backpatch for length-prefixed TLS structures.
  void patch_u16(std::size_t at, std::uint16_t v);
  void patch_u24(std::size_t at, std::uint32_t v);

  const Bytes& data() const& { return out_; }
  Bytes take() && { return std::move(out_); }

 private:
  Bytes out_;
};

}  // namespace vpscope
