#include "util/crc32.hpp"

#include <array>

namespace vpscope {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, ByteView data) {
  const auto& t = table();
  for (const std::uint8_t byte : data)
    state = t[(state ^ byte) & 0xFFu] ^ (state >> 8);
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(ByteView data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace vpscope
