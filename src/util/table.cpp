#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace vpscope {

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      const std::string& cell = row[i];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char c : cell) {
          if (c == '"') os << '"';
          os << c;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n==== " << title << " ====\n";
}

}  // namespace vpscope
