// Deterministic pseudo-randomness for trace synthesis and ML.
//
// Every stochastic component in the repository draws from an explicitly
// seeded Rng so that datasets, model training and benchmark tables are
// bit-reproducible run to run. The generator is xoshiro256** seeded via
// SplitMix64 (the initialization recommended by its authors).
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace vpscope {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next_u64();  // full 64-bit range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
    std::uint64_t v;
    do {
      v = next_u64();
    } while (v >= limit);
    return lo + v % span;
  }

  int uniform_int(int lo, int hi) {
    return static_cast<int>(
        static_cast<std::int64_t>(uniform(0, static_cast<std::uint64_t>(hi - lo))) + lo);
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  bool bernoulli(double p) { return uniform01() < p; }

  /// Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0) {
    if (!have_spare_) {
      const double u1 = 1.0 - uniform01();  // avoid log(0)
      const double u2 = uniform01();
      const double mag = std::sqrt(-2.0 * std::log(u1));
      spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
      have_spare_ = true;
      return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
    }
    have_spare_ = false;
    return mean + stddev * spare_;
  }

  /// Exponential with the given mean. Used for inter-arrival times.
  double exponential(double mean) {
    return -mean * std::log(1.0 - uniform01());
  }

  /// Log-normal parameterized by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Poisson with the given mean — the per-(hour, class) session counts of
  /// the event-driven campus model. Knuth's product method for small means;
  /// above that a rounded normal approximation (the exact inversion's error
  /// is far below the stochastic noise of the populations simulated here,
  /// and the approximation stays O(1) for the 1M-user draws).
  std::uint64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean < 30.0) {
      const double limit = std::exp(-mean);
      std::uint64_t count = 0;
      double product = uniform01();
      while (product > limit) {
        ++count;
        product *= uniform01();
      }
      return count;
    }
    const double draw = normal(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
  }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) throw std::invalid_argument("weighted_index: no mass");
    double r = uniform01() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0.0) return i;
    }
    return weights.size() - 1;
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty");
    return items[static_cast<std::size_t>(uniform(0, items.size() - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(0, i - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; used to give each synthesized
  /// flow / tree / fold its own stream without coupling draw order.
  Rng fork() { return Rng(next_u64() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace vpscope
