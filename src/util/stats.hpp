// Small descriptive-statistics helpers used by the evaluation harness
// (median/quartile box summaries for Fig. 9/10, hourly aggregates for
// Fig. 11, etc.).
#pragma once

#include <cstddef>
#include <vector>

namespace vpscope {

/// Five-number box-plot summary matching the paper's bandwidth figures.
struct BoxSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Linear-interpolated percentile of an unsorted sample, p in [0, 100].
/// Returns 0 for an empty sample.
double percentile(std::vector<double> values, double p);

double median(std::vector<double> values);
double mean(const std::vector<double>& values);
double stddev(const std::vector<double>& values);

BoxSummary box_summary(std::vector<double> values);

}  // namespace vpscope
