#include "util/bytes.hpp"

#include <stdexcept>

namespace vpscope {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("odd hex length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) throw std::invalid_argument("bad hex digit");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool Reader::take(std::size_t n) {
  if (!ok_ || data_.size() - off_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!take(1)) return 0;
  return data_[off_++];
}

std::uint16_t Reader::u16() {
  if (!take(2)) return 0;
  const std::uint16_t v =
      static_cast<std::uint16_t>(data_[off_] << 8 | data_[off_ + 1]);
  off_ += 2;
  return v;
}

std::uint32_t Reader::u24() {
  if (!take(3)) return 0;
  const std::uint32_t v = static_cast<std::uint32_t>(data_[off_]) << 16 |
                          static_cast<std::uint32_t>(data_[off_ + 1]) << 8 |
                          data_[off_ + 2];
  off_ += 3;
  return v;
}

std::uint32_t Reader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[off_ + i];
  off_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | data_[off_ + i];
  off_ += 8;
  return v;
}

Bytes Reader::bytes(std::size_t n) {
  if (!take(n)) return {};
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(off_),
            data_.begin() + static_cast<std::ptrdiff_t>(off_ + n));
  off_ += n;
  return out;
}

ByteView Reader::view(std::size_t n) {
  if (!take(n)) return {};
  ByteView out = data_.subspan(off_, n);
  off_ += n;
  return out;
}

void Reader::skip(std::size_t n) {
  if (take(n)) off_ += n;
}

void Writer::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u24(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 16));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void Writer::patch_u16(std::size_t at, std::uint16_t v) {
  out_.at(at) = static_cast<std::uint8_t>(v >> 8);
  out_.at(at + 1) = static_cast<std::uint8_t>(v);
}

void Writer::patch_u24(std::size_t at, std::uint32_t v) {
  out_.at(at) = static_cast<std::uint8_t>(v >> 16);
  out_.at(at + 1) = static_cast<std::uint8_t>(v >> 8);
  out_.at(at + 2) = static_cast<std::uint8_t>(v);
}

}  // namespace vpscope
