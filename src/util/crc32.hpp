// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check on telemetry segment files. Table-driven, byte-at-a-time; fast
// enough for the spill path (the cost is dominated by the disk write) and
// dependency-free.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace vpscope {

/// One-shot CRC-32 of a byte view.
std::uint32_t crc32(ByteView data);

/// Streaming form: feed `crc32_update` with the running value (start from
/// crc32_init()) and finish with crc32_final().
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, ByteView data);
std::uint32_t crc32_final(std::uint32_t state);

}  // namespace vpscope
