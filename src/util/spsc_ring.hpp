// Bounded single-producer/single-consumer ring queue — the shard ingress
// queue of the sharded pipeline. Lock-free with one atomic store per
// operation; producer and consumer each keep a cached copy of the other
// side's cursor so the common case touches no shared cache line beyond its
// own index (the classic Lamport queue with cursor caching).
//
// Contract: exactly one producer thread calls try_push/try_push_bulk and
// exactly one consumer thread calls try_pop/try_pop_bulk (bulk and single
// ops mix freely on their own side). Capacity is rounded up to a power of
// two. The bulk forms accept/return partial batches and pay one
// acquire/release cursor exchange for the whole batch — the amortization
// the batched dispatcher is built on.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace vpscope {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Moves `v` into the ring if there is room. On failure `v` is untouched,
  /// so the producer can retry (spin-then-yield backpressure lives in the
  /// caller, which knows how to wait).
  bool try_push(T& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;  // genuinely full
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Bulk push: moves as many of `items[0..n)` as fit, in order, and
  /// publishes them with ONE release store — the acquire/release pair and
  /// the cursor cache refresh are amortized over the whole batch. Returns
  /// the count accepted (0 when full); accepted items are moved-from, the
  /// rest untouched, so the caller can retry the tail.
  std::size_t try_push_bulk(T* items, std::size_t n) {
    if (n == 0) return 0;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = mask_ + 1 - (tail - head_cache_);
    if (free < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = mask_ + 1 - (tail - head_cache_);
      if (free == 0) return 0;  // genuinely full
    }
    const std::size_t k = n < free ? n : free;
    for (std::size_t i = 0; i < k; ++i)
      slots_[(tail + i) & mask_] = std::move(items[i]);
    tail_.store(tail + k, std::memory_order_release);
    return k;
  }

  /// Moves the oldest element into `out`; false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;  // genuinely empty
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Bulk pop: moves up to `max_n` oldest elements into `out[0..k)` and
  /// retires them with ONE release store. Returns the count popped (0 when
  /// empty).
  std::size_t try_pop_bulk(T* out, std::size_t max_n) {
    if (max_n == 0) return 0;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = tail_cache_ - head;
    if (avail < max_n) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
      if (avail == 0) return 0;  // genuinely empty
    }
    const std::size_t k = max_n < avail ? max_n : avail;
    for (std::size_t i = 0; i < k; ++i)
      out[i] = std::move(slots_[(head + i) & mask_]);
    head_.store(head + k, std::memory_order_release);
    return k;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Occupancy estimate for telemetry/backlog inspection. Exact when called
  /// from the producer or consumer thread while the other side is idle;
  /// otherwise a snapshot that may lag either cursor by in-flight
  /// operations (never negative, never above capacity).
  std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t diff = tail - head;
    // A torn snapshot (consumer advanced past the tail we read) wraps the
    // subtraction; report empty rather than a nonsense huge value.
    return diff <= mask_ + 1 ? diff : 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
  alignas(64) std::size_t head_cache_ = 0;        // producer's view of head_
  alignas(64) std::size_t tail_cache_ = 0;        // consumer's view of tail_
};

}  // namespace vpscope
