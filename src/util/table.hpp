// Plain-text table rendering for the reproduction reports printed by the
// bench binaries. Deliberately dependency-free: rows of strings in, aligned
// ASCII out, plus a CSV emitter for downstream plotting.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace vpscope {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Formats a double with fixed precision; convenience for row building.
  static std::string num(double v, int precision = 1);
  static std::string pct(double fraction, int precision = 1);

  /// Renders with column alignment and a header separator.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (quotes fields containing commas/quotes).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used to delimit reproduced tables/figures in
/// bench output, e.g. `==== Table 3: open-set evaluation ====`.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace vpscope
