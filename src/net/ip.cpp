#include "net/ip.hpp"

#include <cstdio>

namespace vpscope::net {

IpAddr IpAddr::v4_from_u32(std::uint32_t host_order) {
  return v4(static_cast<std::uint8_t>(host_order >> 24),
            static_cast<std::uint8_t>(host_order >> 16),
            static_cast<std::uint8_t>(host_order >> 8),
            static_cast<std::uint8_t>(host_order));
}

std::uint32_t IpAddr::as_v4_u32() const {
  return static_cast<std::uint32_t>(bytes[0]) << 24 |
         static_cast<std::uint32_t>(bytes[1]) << 16 |
         static_cast<std::uint32_t>(bytes[2]) << 8 | bytes[3];
}

std::string IpAddr::to_string() const {
  char buf[64];
  if (!is_v6) {
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bytes[0], bytes[1],
                  bytes[2], bytes[3]);
    return buf;
  }
  std::string out;
  for (int i = 0; i < 16; i += 2) {
    if (i) out += ':';
    std::snprintf(buf, sizeof(buf), "%02x%02x", bytes[static_cast<std::size_t>(i)],
                  bytes[static_cast<std::size_t>(i + 1)]);
    out += buf;
  }
  return out;
}

std::uint16_t internet_checksum(ByteView data, std::uint32_t seed) {
  std::uint32_t sum = seed;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

Bytes Ipv4Header::serialize(ByteView payload) const {
  Writer w;
  w.u8(0x45);  // version 4, IHL 5 (no IP options)
  w.u8(dscp_ecn);
  const std::uint16_t len =
      total_length ? total_length
                   : static_cast<std::uint16_t>(kMinSize + payload.size());
  w.u16(len);
  w.u16(identification);
  w.u16(dont_fragment ? 0x4000 : 0x0000);
  w.u8(ttl);
  w.u8(protocol);
  w.u16(0);  // checksum placeholder
  w.raw(ByteView{src.bytes.data(), 4});
  w.raw(ByteView{dst.bytes.data(), 4});

  Bytes out = std::move(w).take();
  const std::uint16_t csum = internet_checksum(ByteView{out});
  out[10] = static_cast<std::uint8_t>(csum >> 8);
  out[11] = static_cast<std::uint8_t>(csum);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<Ipv4Header> Ipv4Header::parse(ByteView datagram,
                                            std::size_t* header_len) {
  if (datagram.size() < kMinSize) return std::nullopt;
  const std::uint8_t version_ihl = datagram[0];
  if (version_ihl >> 4 != 4) return std::nullopt;
  const std::size_t ihl = (version_ihl & 0x0f) * std::size_t{4};
  if (ihl < kMinSize || datagram.size() < ihl) return std::nullopt;

  Ipv4Header h;
  h.dscp_ecn = datagram[1];
  h.total_length = static_cast<std::uint16_t>(datagram[2] << 8 | datagram[3]);
  h.identification = static_cast<std::uint16_t>(datagram[4] << 8 | datagram[5]);
  h.dont_fragment = (datagram[6] & 0x40) != 0;
  h.ttl = datagram[8];
  h.protocol = datagram[9];
  for (int i = 0; i < 4; ++i) {
    h.src.bytes[static_cast<std::size_t>(i)] = datagram[static_cast<std::size_t>(12 + i)];
    h.dst.bytes[static_cast<std::size_t>(i)] = datagram[static_cast<std::size_t>(16 + i)];
  }
  if (header_len) *header_len = ihl;
  return h;
}

Bytes Ipv6Header::serialize(ByteView payload) const {
  Writer w;
  w.u32(std::uint32_t{6} << 28 |
        static_cast<std::uint32_t>(traffic_class) << 20 |
        (flow_label & 0xfffff));
  w.u16(static_cast<std::uint16_t>(payload.size()));
  w.u8(next_header);
  w.u8(hop_limit);
  w.raw(ByteView{src.bytes.data(), 16});
  w.raw(ByteView{dst.bytes.data(), 16});
  Bytes out = std::move(w).take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<Ipv6Header> Ipv6Header::parse(ByteView datagram,
                                            std::size_t* header_len) {
  if (datagram.size() < kSize) return std::nullopt;
  if (datagram[0] >> 4 != 6) return std::nullopt;
  Ipv6Header h;
  h.traffic_class =
      static_cast<std::uint8_t>((datagram[0] & 0x0f) << 4 | datagram[1] >> 4);
  h.flow_label = static_cast<std::uint32_t>(datagram[1] & 0x0f) << 16 |
                 static_cast<std::uint32_t>(datagram[2]) << 8 | datagram[3];
  h.next_header = datagram[6];
  h.hop_limit = datagram[7];
  h.src.is_v6 = h.dst.is_v6 = true;
  for (int i = 0; i < 16; ++i) {
    h.src.bytes[static_cast<std::size_t>(i)] = datagram[static_cast<std::size_t>(8 + i)];
    h.dst.bytes[static_cast<std::size_t>(i)] = datagram[static_cast<std::size_t>(24 + i)];
  }
  if (header_len) *header_len = kSize;
  return h;
}

}  // namespace vpscope::net
