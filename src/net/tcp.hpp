// TCP segment header with full option parsing. The SYN of the three-way
// handshake carries the transport-layer fingerprint surface the paper's
// attributes t3..t14 are extracted from (flags, window, MSS, window scale,
// SACK-permitted).
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace vpscope::net {

struct TcpFlags {
  bool cwr = false;
  bool ece = false;
  bool urg = false;
  bool ack = false;
  bool psh = false;
  bool rst = false;
  bool syn = false;
  bool fin = false;

  std::uint8_t to_byte() const;
  static TcpFlags from_byte(std::uint8_t b);
};

/// Parsed TCP options relevant to platform fingerprinting. `kind_order`
/// preserves the raw on-wire option kind sequence (another stack signature,
/// kept for completeness and used by the Fan-2019 baseline).
struct TcpOptions {
  std::optional<std::uint16_t> mss;
  std::optional<std::uint8_t> window_scale;
  bool sack_permitted = false;
  bool timestamps = false;
  std::uint32_t ts_value = 0;
  std::vector<std::uint8_t> kind_order;
};

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 0;
  TcpOptions options;

  /// Serializes header (with options, padded to a 4-byte boundary) followed
  /// by payload. The checksum field is left zero: the synthesizer operates
  /// above a capture point where TCP checksum offload makes zero checksums
  /// the norm, and the parser never validates them.
  Bytes serialize(ByteView payload) const;

  static std::optional<TcpHeader> parse(ByteView segment,
                                        std::size_t* header_len);
};

}  // namespace vpscope::net
