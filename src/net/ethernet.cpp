#include "net/ethernet.hpp"

#include <cstring>

namespace vpscope::net {

Bytes EthernetHeader::serialize(ByteView payload) const {
  Bytes out;
  out.reserve(kSize + payload.size());
  out.insert(out.end(), dst.begin(), dst.end());
  out.insert(out.end(), src.begin(), src.end());
  out.push_back(static_cast<std::uint8_t>(ethertype >> 8));
  out.push_back(static_cast<std::uint8_t>(ethertype));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<EthernetHeader> EthernetHeader::parse(ByteView frame,
                                                    std::size_t* header_len) {
  if (frame.size() < kSize) return std::nullopt;
  EthernetHeader out;
  std::memcpy(out.dst.data(), frame.data(), 6);
  std::memcpy(out.src.data(), frame.data() + 6, 6);
  std::size_t off = 12;
  auto u16_at = [&frame](std::size_t at) {
    return static_cast<std::uint16_t>(frame[at] << 8 | frame[at + 1]);
  };
  std::uint16_t type = u16_at(off);
  off += 2;
  while (type == kEtherTypeVlan || type == kEtherTypeQinQ) {
    if (out.vlan_tags >= kMaxVlanTags) return std::nullopt;
    // Tag: 2 bytes TCI we don't model, then the next EtherType.
    if (off + 4 > frame.size()) return std::nullopt;
    type = u16_at(off + 2);
    off += 4;
    ++out.vlan_tags;
  }
  out.ethertype = type;
  if (header_len) *header_len = off;
  return out;
}

MacAddr synthetic_mac(ByteView seed_bytes) {
  // SplitMix64 over the byte content gives stable, well-spread MACs.
  std::uint64_t z = 0x9e3779b97f4a7c15ULL;
  for (const std::uint8_t b : seed_bytes) {
    z ^= b;
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
  }
  MacAddr mac;
  for (int i = 0; i < 6; ++i)
    mac[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(z >> (8 * i));
  // Locally administered (bit 1), unicast (bit 0 clear) — a valid MAC that
  // can never collide with a real vendor OUI.
  mac[0] = static_cast<std::uint8_t>((mac[0] & 0xfc) | 0x02);
  return mac;
}

}  // namespace vpscope::net
