// Whole-file pcap convenience API over vpscope::net::Packet: each record is
// a bare IP datagram (LINKTYPE_RAW written; RAW and Ethernet both read, the
// latter through the L2 shim). This makes synthesized datasets inspectable
// with Wireshark/tcpdump — the same tooling the paper's lab collection used.
//
// Implemented by vpscope_capture (capture/pcap.cpp), which owns the single
// pcap parser in the tree — the streaming capture::PcapReader/PcapWriter
// engine is the one to use for replay-scale work. Targets using these
// functions link vpscope_capture.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace vpscope::net {

/// Writes packets to a pcap stream/file. Returns false on I/O failure.
bool write_pcap(std::ostream& os, const std::vector<Packet>& packets);
bool write_pcap_file(const std::string& path,
                     const std::vector<Packet>& packets);

/// Reads a whole pcap stream/file. Returns nullopt on malformed input.
/// Handles both endiannesses of the classic format; nanosecond-precision
/// magic (0xa1b23c4d) is accepted and truncated to microseconds.
std::optional<std::vector<Packet>> read_pcap(std::istream& is);
std::optional<std::vector<Packet>> read_pcap_file(const std::string& path);

}  // namespace vpscope::net
