// Classic libpcap file format (magic 0xa1b2c3d4) reader/writer with
// LINKTYPE_RAW (101): each record is a bare IPv4/IPv6 datagram, matching
// vpscope::net::Packet exactly. This makes synthesized datasets inspectable
// with Wireshark/tcpdump — the same tooling the paper's lab collection used.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace vpscope::net {

/// Writes packets to a pcap stream/file. Returns false on I/O failure.
bool write_pcap(std::ostream& os, const std::vector<Packet>& packets);
bool write_pcap_file(const std::string& path,
                     const std::vector<Packet>& packets);

/// Reads a whole pcap stream/file. Returns nullopt on malformed input.
/// Handles both endiannesses of the classic format; nanosecond-precision
/// magic (0xa1b23c4d) is accepted and truncated to microseconds.
std::optional<std::vector<Packet>> read_pcap(std::istream& is);
std::optional<std::vector<Packet>> read_pcap_file(const std::string& path);

}  // namespace vpscope::net
