#include "net/pcap.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace vpscope::net {

namespace {

constexpr std::uint32_t kMagicUs = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNs = 0xa1b23c4d;
constexpr std::uint32_t kLinkTypeRaw = 101;

void put_u32le(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u16le(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

struct LeReader {
  const std::uint8_t* p;
  bool swap;

  std::uint32_t u32() {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    p += 4;
    if (swap) v = __builtin_bswap32(v);
    return v;
  }
  std::uint16_t u16() {
    std::uint16_t v;
    std::memcpy(&v, p, 2);
    p += 2;
    if (swap) v = __builtin_bswap16(v);
    return v;
  }
};

bool host_is_little_endian() {
  const std::uint16_t probe = 1;
  std::uint8_t first;
  std::memcpy(&first, &probe, 1);
  return first == 1;
}

}  // namespace

bool write_pcap(std::ostream& os, const std::vector<Packet>& packets) {
  Bytes header;
  put_u32le(header, kMagicUs);
  put_u16le(header, 2);   // version major
  put_u16le(header, 4);   // version minor
  put_u32le(header, 0);   // thiszone
  put_u32le(header, 0);   // sigfigs
  put_u32le(header, 65535);  // snaplen
  put_u32le(header, kLinkTypeRaw);
  os.write(reinterpret_cast<const char*>(header.data()),
           static_cast<std::streamsize>(header.size()));

  for (const Packet& p : packets) {
    Bytes rec;
    put_u32le(rec, static_cast<std::uint32_t>(p.timestamp_us / 1000000));
    put_u32le(rec, static_cast<std::uint32_t>(p.timestamp_us % 1000000));
    put_u32le(rec, static_cast<std::uint32_t>(p.data.size()));
    put_u32le(rec, static_cast<std::uint32_t>(p.data.size()));
    os.write(reinterpret_cast<const char*>(rec.data()),
             static_cast<std::streamsize>(rec.size()));
    os.write(reinterpret_cast<const char*>(p.data.data()),
             static_cast<std::streamsize>(p.data.size()));
  }
  return static_cast<bool>(os);
}

bool write_pcap_file(const std::string& path,
                     const std::vector<Packet>& packets) {
  std::ofstream f(path, std::ios::binary);
  return f && write_pcap(f, packets);
}

std::optional<std::vector<Packet>> read_pcap(std::istream& is) {
  std::vector<char> all{std::istreambuf_iterator<char>(is),
                        std::istreambuf_iterator<char>()};
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(all.data());
  const std::size_t size = all.size();
  if (size < 24) return std::nullopt;

  std::uint32_t magic;
  std::memcpy(&magic, bytes, 4);
  bool swap = false;
  bool nanos = false;
  const bool little = host_is_little_endian();
  if (magic == kMagicUs) {
    swap = !little;
  } else if (magic == __builtin_bswap32(kMagicUs)) {
    swap = little;
  } else if (magic == kMagicNs) {
    swap = !little;
    nanos = true;
  } else if (magic == __builtin_bswap32(kMagicNs)) {
    swap = little;
    nanos = true;
  } else {
    return std::nullopt;
  }
  // Re-interpret swap relative to host: the stored file is little-endian iff
  // magic read as-is on a little-endian host without swapping.
  LeReader hdr{bytes + 4, swap};
  hdr.u16();  // version major
  hdr.u16();  // version minor
  hdr.u32();  // thiszone
  hdr.u32();  // sigfigs
  hdr.u32();  // snaplen
  const std::uint32_t linktype = hdr.u32();
  if (linktype != kLinkTypeRaw) return std::nullopt;

  std::vector<Packet> packets;
  std::size_t off = 24;
  while (off + 16 <= size) {
    LeReader rec{bytes + off, swap};
    const std::uint32_t ts_sec = rec.u32();
    std::uint32_t ts_frac = rec.u32();
    const std::uint32_t incl_len = rec.u32();
    rec.u32();  // orig_len
    off += 16;
    if (off + incl_len > size) return std::nullopt;
    if (nanos) ts_frac /= 1000;
    Packet p;
    p.timestamp_us = static_cast<std::uint64_t>(ts_sec) * 1000000 + ts_frac;
    p.data.assign(bytes + off, bytes + off + incl_len);
    packets.push_back(std::move(p));
    off += incl_len;
  }
  if (off != size) return std::nullopt;
  return packets;
}

std::optional<std::vector<Packet>> read_pcap_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  return read_pcap(f);
}

}  // namespace vpscope::net
