#include "net/udp.hpp"

namespace vpscope::net {

Bytes UdpHeader::serialize(ByteView payload) const {
  Writer w;
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(static_cast<std::uint16_t>(kSize + payload.size()));
  w.u16(0);  // checksum
  w.raw(payload);
  return std::move(w).take();
}

std::optional<UdpHeader> UdpHeader::parse(ByteView datagram,
                                          std::size_t* header_len) {
  if (datagram.size() < kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = static_cast<std::uint16_t>(datagram[0] << 8 | datagram[1]);
  h.dst_port = static_cast<std::uint16_t>(datagram[2] << 8 | datagram[3]);
  const std::uint16_t len =
      static_cast<std::uint16_t>(datagram[4] << 8 | datagram[5]);
  if (len < kSize || datagram.size() < len) return std::nullopt;
  if (header_len) *header_len = kSize;
  return h;
}

}  // namespace vpscope::net
