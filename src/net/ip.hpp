// IPv4 / IPv6 header structures with parse/serialize and the internet
// checksum. Only the fields the classification pipeline and synthesizer care
// about are modeled as first-class members; everything else is carried with
// correct wire encoding.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace vpscope::net {

/// IP protocol numbers used in this codebase.
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

/// An IPv4 or IPv6 address. IPv4 addresses occupy the first 4 bytes.
struct IpAddr {
  std::array<std::uint8_t, 16> bytes{};
  bool is_v6 = false;

  static IpAddr v4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                   std::uint8_t d) {
    IpAddr addr;
    addr.bytes[0] = a;
    addr.bytes[1] = b;
    addr.bytes[2] = c;
    addr.bytes[3] = d;
    return addr;
  }

  static IpAddr v4_from_u32(std::uint32_t host_order);

  std::uint32_t as_v4_u32() const;
  std::string to_string() const;

  auto operator<=>(const IpAddr&) const = default;
};

/// RFC 1071 internet checksum over a byte view (with optional seed for
/// pseudo-header folding).
std::uint16_t internet_checksum(ByteView data, std::uint32_t seed = 0);

struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;  // filled by serialize when 0
  std::uint16_t identification = 0;
  bool dont_fragment = true;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kProtoTcp;
  IpAddr src;
  IpAddr dst;

  /// Serializes header + payload with computed checksum and total length.
  Bytes serialize(ByteView payload) const;

  /// Parses the header; returns nullopt on truncation/garbage. On success
  /// `header_len` reports where the payload begins.
  static std::optional<Ipv4Header> parse(ByteView datagram,
                                         std::size_t* header_len);
};

struct Ipv6Header {
  static constexpr std::size_t kSize = 40;

  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;
  std::uint8_t next_header = kProtoTcp;
  std::uint8_t hop_limit = 64;  // plays the TTL role for the t2 attribute
  IpAddr src;
  IpAddr dst;

  Bytes serialize(ByteView payload) const;
  static std::optional<Ipv6Header> parse(ByteView datagram,
                                         std::size_t* header_len);
};

}  // namespace vpscope::net
