// Ethernet II (DIX) framing: the L2 layer a real capture tap delivers.
// The synthesizer and pipeline work on raw IP datagrams (linktype RAW), but
// an AF_PACKET ring or an Ethernet pcap hands us full frames — this module
// parses the 14-byte header, skips 802.1Q/802.1ad VLAN tags, and builds
// deterministic synthetic frames for the synth->pcap exporter.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace vpscope::net {

using MacAddr = std::array<std::uint8_t, 6>;

/// EtherTypes this codebase understands. Anything else is "not IP traffic"
/// (ARP, LLDP, spanning tree...) — well-formed but uninteresting.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeIpv6 = 0x86dd;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;   // 802.1Q
inline constexpr std::uint16_t kEtherTypeQinQ = 0x88a8;   // 802.1ad outer tag

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;
  /// A frame may carry at most this many stacked VLAN tags before the
  /// parser rejects it (QinQ is two; more is corruption or an attack on the
  /// tag-skipping loop).
  static constexpr int kMaxVlanTags = 2;

  MacAddr dst{};
  MacAddr src{};
  /// The *inner* EtherType after any VLAN tags were skipped.
  std::uint16_t ethertype = kEtherTypeIpv4;
  /// Number of 802.1Q/802.1ad tags the parser skipped (0..kMaxVlanTags).
  int vlan_tags = 0;

  /// Serializes header + payload (tags are not re-emitted; the exporter
  /// writes untagged frames).
  Bytes serialize(ByteView payload) const;

  /// Parses the header, skipping VLAN tags; returns nullopt on truncation
  /// or more than kMaxVlanTags stacked tags. On success `header_len`
  /// reports where the L3 payload begins.
  static std::optional<EthernetHeader> parse(ByteView frame,
                                             std::size_t* header_len);
};

/// Deterministic locally-administered unicast MAC derived from an address's
/// bytes — the exporter frames synthesized IP datagrams with these so the
/// same flow always gets the same (fake but valid) L2 endpoints.
MacAddr synthetic_mac(ByteView seed_bytes);

}  // namespace vpscope::net
