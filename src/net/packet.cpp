#include "net/packet.hpp"

#include <algorithm>

namespace vpscope::net {

namespace {

/// SplitMix64 finalizer: a full-avalanche 64-bit mix, so every output bit
/// depends on every input bit. The flow table only needs a decent hash, but
/// the sharded pipeline assigns workers by `hash % n_shards` — low bits must
/// be as mixed as high bits or low-entropy keys (sequential client
/// addresses, fixed server port) skew the shards.
std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FlowKey FlowKey::canonical(const IpAddr& src, std::uint16_t sport,
                           const IpAddr& dst, std::uint16_t dport,
                           std::uint8_t protocol, bool* from_a_to_b) {
  FlowKey k;
  k.protocol = protocol;
  const bool src_first =
      std::tie(src.bytes, sport) <= std::tie(dst.bytes, dport);
  if (src_first) {
    k.addr_a = src;
    k.port_a = sport;
    k.addr_b = dst;
    k.port_b = dport;
  } else {
    k.addr_a = dst;
    k.port_a = dport;
    k.addr_b = src;
    k.port_b = sport;
  }
  if (from_a_to_b) *from_a_to_b = src_first;
  return k;
}

std::size_t FlowKeyHash::operator()(const FlowKey& k) const {
  std::uint64_t h = splitmix64(k.protocol);
  for (int i = 0; i < 16; i += 8) {
    std::uint64_t a = 0, b = 0;
    for (int j = 0; j < 8; ++j) {
      a = a << 8 | k.addr_a.bytes[static_cast<std::size_t>(i + j)];
      b = b << 8 | k.addr_b.bytes[static_cast<std::size_t>(i + j)];
    }
    h = splitmix64(h ^ a);
    h = splitmix64(h ^ b);
  }
  h = splitmix64(h ^ (static_cast<std::uint64_t>(k.port_a) << 16 | k.port_b));
  return static_cast<std::size_t>(h);
}

std::uint16_t DecodedPacket::src_port() const {
  if (tcp) return tcp->src_port;
  if (udp) return udp->src_port;
  return 0;
}

std::uint16_t DecodedPacket::dst_port() const {
  if (tcp) return tcp->dst_port;
  if (udp) return udp->dst_port;
  return 0;
}

FlowKey DecodedPacket::flow_key(bool* from_a_to_b) const {
  return FlowKey::canonical(src, src_port(), dst, dst_port(), protocol,
                            from_a_to_b);
}

std::optional<DecodedPacket> decode(const Packet& packet) {
  const ByteView raw{packet.data};
  if (raw.empty()) return std::nullopt;

  DecodedPacket out;
  out.timestamp_us = packet.timestamp_us;
  out.ip_packet_size = raw.size();

  std::size_t ip_hlen = 0;
  const int version = raw[0] >> 4;
  if (version == 4) {
    const auto v4 = Ipv4Header::parse(raw, &ip_hlen);
    if (!v4) return std::nullopt;
    out.ttl = v4->ttl;
    out.src = v4->src;
    out.dst = v4->dst;
    out.protocol = v4->protocol;
    // Snap-length semantics: a capture may truncate the packet while the IP
    // header still reports the original datagram length — volumetric
    // telemetry must use the header value.
    out.ip_packet_size = std::max<std::size_t>(raw.size(), v4->total_length);
  } else if (version == 6) {
    const auto v6 = Ipv6Header::parse(raw, &ip_hlen);
    if (!v6) return std::nullopt;
    out.is_v6 = true;
    out.ttl = v6->hop_limit;
    out.src = v6->src;
    out.dst = v6->dst;
    out.protocol = v6->next_header;
  } else {
    return std::nullopt;
  }

  const ByteView transport = raw.subspan(ip_hlen);
  std::size_t t_hlen = 0;
  if (out.protocol == kProtoTcp) {
    out.tcp = TcpHeader::parse(transport, &t_hlen);
    if (!out.tcp) return std::nullopt;
  } else if (out.protocol == kProtoUdp) {
    out.udp = UdpHeader::parse(transport, &t_hlen);
    if (!out.udp) return std::nullopt;
  } else {
    return std::nullopt;
  }
  out.payload = transport.subspan(t_hlen);
  return out;
}

}  // namespace vpscope::net
