#include "net/tcp.hpp"

namespace vpscope::net {

std::uint8_t TcpFlags::to_byte() const {
  return static_cast<std::uint8_t>(
      (cwr << 7) | (ece << 6) | (urg << 5) | (ack << 4) | (psh << 3) |
      (rst << 2) | (syn << 1) | static_cast<int>(fin));
}

TcpFlags TcpFlags::from_byte(std::uint8_t b) {
  TcpFlags f;
  f.cwr = b & 0x80;
  f.ece = b & 0x40;
  f.urg = b & 0x20;
  f.ack = b & 0x10;
  f.psh = b & 0x08;
  f.rst = b & 0x04;
  f.syn = b & 0x02;
  f.fin = b & 0x01;
  return f;
}

namespace {
constexpr std::uint8_t kOptEol = 0;
constexpr std::uint8_t kOptNop = 1;
constexpr std::uint8_t kOptMss = 2;
constexpr std::uint8_t kOptWScale = 3;
constexpr std::uint8_t kOptSackPerm = 4;
constexpr std::uint8_t kOptTimestamps = 8;
}  // namespace

Bytes TcpHeader::serialize(ByteView payload) const {
  Writer opt;
  // Emit options in the order recorded in kind_order when present, so a
  // fingerprint's option sequence round-trips exactly. Fall back to a
  // conventional order otherwise.
  std::vector<std::uint8_t> order = options.kind_order;
  if (order.empty()) {
    if (options.mss) order.push_back(kOptMss);
    if (options.window_scale) order.push_back(kOptWScale);
    if (options.sack_permitted) order.push_back(kOptSackPerm);
    if (options.timestamps) order.push_back(kOptTimestamps);
  }
  for (std::uint8_t kind : order) {
    switch (kind) {
      case kOptNop:
        opt.u8(kOptNop);
        break;
      case kOptMss:
        if (options.mss) {
          opt.u8(kOptMss);
          opt.u8(4);
          opt.u16(*options.mss);
        }
        break;
      case kOptWScale:
        if (options.window_scale) {
          opt.u8(kOptWScale);
          opt.u8(3);
          opt.u8(*options.window_scale);
        }
        break;
      case kOptSackPerm:
        if (options.sack_permitted) {
          opt.u8(kOptSackPerm);
          opt.u8(2);
        }
        break;
      case kOptTimestamps:
        if (options.timestamps) {
          opt.u8(kOptTimestamps);
          opt.u8(10);
          opt.u32(options.ts_value);
          opt.u32(0);  // echo reply, zero in SYN
        }
        break;
      default:
        break;  // unknown kinds are not synthesized
    }
  }
  while (opt.size() % 4 != 0) opt.u8(kOptEol);

  const std::size_t header_len = kMinSize + opt.size();
  Writer w;
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(static_cast<std::uint8_t>((header_len / 4) << 4));
  w.u8(flags.to_byte());
  w.u16(window);
  w.u16(0);  // checksum (see header comment)
  w.u16(0);  // urgent pointer
  w.raw(opt.data());
  w.raw(payload);
  return std::move(w).take();
}

std::optional<TcpHeader> TcpHeader::parse(ByteView segment,
                                          std::size_t* header_len) {
  if (segment.size() < kMinSize) return std::nullopt;
  Reader r(segment);
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  const std::uint8_t data_offset = r.u8() >> 4;
  h.flags = TcpFlags::from_byte(r.u8());
  h.window = r.u16();
  r.skip(4);  // checksum + urgent pointer

  const std::size_t hlen = data_offset * std::size_t{4};
  if (hlen < kMinSize || segment.size() < hlen) return std::nullopt;

  Reader opts(segment.subspan(kMinSize, hlen - kMinSize));
  while (opts.remaining() > 0) {
    const std::uint8_t kind = opts.u8();
    if (kind == kOptEol) break;
    h.options.kind_order.push_back(kind);
    if (kind == kOptNop) continue;
    const std::uint8_t len = opts.u8();
    if (len < 2 || !opts.ok()) return std::nullopt;
    const std::size_t body_len = len - std::size_t{2};
    ByteView body = opts.view(body_len);
    if (!opts.ok()) return std::nullopt;
    switch (kind) {
      case kOptMss:
        if (body.size() == 2)
          h.options.mss = static_cast<std::uint16_t>(body[0] << 8 | body[1]);
        break;
      case kOptWScale:
        if (body.size() == 1) h.options.window_scale = body[0];
        break;
      case kOptSackPerm:
        h.options.sack_permitted = true;
        break;
      case kOptTimestamps:
        if (body.size() == 8) {
          h.options.timestamps = true;
          h.options.ts_value = static_cast<std::uint32_t>(body[0]) << 24 |
                               static_cast<std::uint32_t>(body[1]) << 16 |
                               static_cast<std::uint32_t>(body[2]) << 8 |
                               body[3];
        }
        break;
      default:
        break;
    }
  }

  if (header_len) *header_len = hlen;
  return h;
}

}  // namespace vpscope::net
