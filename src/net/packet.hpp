// The packet abstraction shared by the synthesizer, PCAP I/O and the
// classification pipeline: a timestamped raw IP datagram, plus a decoded
// view giving typed access to the IP/TCP/UDP layers.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "net/ip.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"

namespace vpscope::net {

/// A raw IP datagram as captured/synthesized. Timestamps are microseconds
/// since an arbitrary epoch (the campus simulator uses simulated time).
struct Packet {
  std::uint64_t timestamp_us = 0;
  Bytes data;  // starts at the IP header (linktype RAW)
};

/// Canonical bidirectional 5-tuple key: (addr, port) pairs are ordered so
/// both directions of a connection map to the same key — exactly what a
/// middlebox flow table needs.
struct FlowKey {
  IpAddr addr_a, addr_b;
  std::uint16_t port_a = 0, port_b = 0;
  std::uint8_t protocol = 0;

  /// Builds the canonical key; `from_a_to_b` reports whether (src, sport)
  /// ended up as the (addr_a, port_a) side.
  static FlowKey canonical(const IpAddr& src, std::uint16_t sport,
                           const IpAddr& dst, std::uint16_t dport,
                           std::uint8_t protocol, bool* from_a_to_b = nullptr);

  bool operator==(const FlowKey&) const = default;
};

/// Full-avalanche hash of the canonical key (SplitMix64-finalized), so both
/// `unordered_map` bucketing and `hash % n_shards` shard dispatch distribute
/// evenly even over low-entropy key populations.
struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const;
};

/// A decoded packet: typed headers + a payload view into the original bytes.
/// The view borrows from the Packet that produced it.
struct DecodedPacket {
  std::uint64_t timestamp_us = 0;
  bool is_v6 = false;
  std::uint8_t ttl = 0;  // hop_limit for v6
  IpAddr src, dst;
  std::uint8_t protocol = 0;
  std::size_t ip_packet_size = 0;  // full datagram length (attribute t1)

  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  ByteView payload;  // transport payload

  std::uint16_t src_port() const;
  std::uint16_t dst_port() const;
  FlowKey flow_key(bool* from_a_to_b = nullptr) const;
};

/// Decodes a raw IP packet. Returns nullopt for non-IP, truncated, or
/// non-TCP/UDP datagrams (the pipeline ignores those anyway).
std::optional<DecodedPacket> decode(const Packet& packet);

}  // namespace vpscope::net
