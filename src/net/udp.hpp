// UDP datagram header (QUIC's carrier).
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace vpscope::net {

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  /// Serializes header + payload. Checksum left zero (legal for IPv4 UDP and
  /// conventional at capture points with checksum offload).
  Bytes serialize(ByteView payload) const;

  static std::optional<UdpHeader> parse(ByteView datagram,
                                        std::size_t* header_len);
};

}  // namespace vpscope::net
