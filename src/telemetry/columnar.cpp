#include "telemetry/columnar.hpp"

#include <atomic>
#include <filesystem>

namespace vpscope::telemetry {

namespace {

constexpr std::uint8_t kUnknownCode =
    static_cast<std::uint8_t>(Outcome::Unknown);

/// Column bytes per row: 7 u8 + f64 + u32 (sni) + 6 u64.
constexpr std::size_t kBytesPerRow = 7 + 8 + 4 + 6 * 8;

/// Process-wide spill file counter so store copies sharing a spill_dir
/// never collide on a name.
std::string next_spill_path(const std::string& dir) {
  static std::atomic<std::uint64_t> counter{0};
  return dir + "/segment-" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed)) +
         ".vpsg";
}

FlowCounters counters_of(const ColumnsView& v, std::size_t i) {
  FlowCounters c;
  c.first_us = v.first_us[i];
  c.last_us = v.last_us[i];
  c.bytes_down = v.bytes_down[i];
  c.bytes_up = v.bytes_up[i];
  c.packets_down = v.packets_down[i];
  c.packets_up = v.packets_up[i];
  return c;
}

}  // namespace

void SessionStore::insert(SessionRecord record) {
  if (record.outcome == Outcome::Unknown) ++unknown_;
  active_.append(record, interner_.intern(record.sni));
  ++rows_;
  if (active_.rows() >= options_.segment_rows) seal_active();
}

void SessionStore::seal_active() {
  if (active_.rows() == 0) return;
  Sealed sealed;
  sealed.zone = ZoneMap::build(active_);
  sealed.columns = std::make_shared<const SegmentColumns>(std::move(active_));
  active_ = SegmentColumns{};
  sealed_.push_back(std::move(sealed));
  maybe_spill();
}

void SessionStore::adopt(SegmentColumns segment) {
  if (segment.rows() == 0) return;
  rows_ += segment.rows();
  for (const std::uint8_t outcome : segment.outcome)
    if (outcome == kUnknownCode) ++unknown_;
  Sealed sealed;
  sealed.zone = ZoneMap::build(segment);
  sealed.columns = std::make_shared<const SegmentColumns>(std::move(segment));
  sealed_.push_back(std::move(sealed));
  maybe_spill();
}

void SessionStore::maybe_spill() {
  if (options_.max_resident_segments == 0) return;
  std::size_t resident = 0;
  for (const Sealed& s : sealed_)
    if (s.columns) ++resident;
  if (resident <= options_.max_resident_segments) return;

  std::error_code ec;
  std::filesystem::create_directories(options_.spill_dir, ec);
  if (ec) return;  // keep resident rather than lose data

  for (Sealed& s : sealed_) {
    if (resident <= options_.max_resident_segments) break;
    if (!s.columns) continue;
    const std::string path = next_spill_path(options_.spill_dir);
    if (!write_segment_file(path, *s.columns, interner_)) return;
    s.spilled = std::make_shared<const SpilledSegment>(
        path, static_cast<std::uint32_t>(s.columns->rows()));
    s.columns.reset();
    --resident;
  }
}

void SessionStore::for_each_segment(
    const CompiledQuery& q,
    const std::function<void(const ColumnsView&)>& fn) const {
  for (const Sealed& s : sealed_) {
    if (!s.zone.may_match(q)) {
      ++segments_skipped_;
      continue;
    }
    ++segments_scanned_;
    if (s.columns) {
      fn(s.columns->view());
    } else if (!s.spilled->with_mapping(
                   [&fn](const MappedSegment& m) { fn(m.view()); })) {
      ++spill_read_failures_;
    }
  }
  if (active_.rows() > 0) {
    ++segments_scanned_;
    fn(active_.view());
  }
}

std::vector<SessionRecord> SessionStore::records() const {
  std::vector<SessionRecord> out;
  out.reserve(rows_);
  for_each_segment(CompiledQuery(Query{}), [this, &out](const ColumnsView& v) {
    for (std::size_t i = 0; i < v.rows; ++i)
      out.push_back(materialize_row(v, i, sni_of(v.sni[i])));
  });
  return out;
}

double SessionStore::watch_hours(const Query& query) const {
  const CompiledQuery q(query);
  double seconds = 0.0;
  for_each_segment(q, [&q, &seconds](const ColumnsView& v) {
    for (std::size_t i = 0; i < v.rows; ++i)
      if (q.matches(v, i)) seconds += counters_of(v, i).duration_s();
  });
  return seconds / 3600.0;
}

double SessionStore::watch_hours(
    const std::function<bool(const SessionRecord&)>& filter) const {
  double seconds = 0.0;
  for_each_segment(
      CompiledQuery(Query{}),
      [this, &filter, &seconds](const ColumnsView& v) {
        for (std::size_t i = 0; i < v.rows; ++i) {
          const SessionRecord r = materialize_row(v, i, sni_of(v.sni[i]));
          if (filter(r)) seconds += r.counters.duration_s();
        }
      });
  return seconds / 3600.0;
}

std::vector<double> SessionStore::bandwidth_mbps(const Query& query) const {
  const CompiledQuery q(query);
  std::vector<double> out;
  for_each_segment(q, [&q, &out](const ColumnsView& v) {
    for (std::size_t i = 0; i < v.rows; ++i) {
      if (!q.matches(v, i)) continue;
      const double mbps = counters_of(v, i).mean_downstream_mbps();
      if (mbps > 0) out.push_back(mbps);
    }
  });
  return out;
}

std::vector<double> SessionStore::bandwidth_mbps(
    const std::function<bool(const SessionRecord&)>& filter) const {
  std::vector<double> out;
  for_each_segment(
      CompiledQuery(Query{}), [this, &filter, &out](const ColumnsView& v) {
        for (std::size_t i = 0; i < v.rows; ++i) {
          const SessionRecord r = materialize_row(v, i, sni_of(v.sni[i]));
          if (!filter(r)) continue;
          const double mbps = r.counters.mean_downstream_mbps();
          if (mbps > 0) out.push_back(mbps);
        }
      });
  return out;
}

std::array<double, 24> SessionStore::hourly_volume_gb(
    const Query& query) const {
  const CompiledQuery q(query);
  std::array<double, 24> out{};
  for_each_segment(q, [&q, &out](const ColumnsView& v) {
    for (std::size_t i = 0; i < v.rows; ++i)
      if (q.matches(v, i))
        accumulate_hourly_volume_gb(out, v.first_us[i], v.last_us[i],
                                    v.bytes_down[i]);
  });
  return out;
}

std::array<double, 24> SessionStore::hourly_volume_gb(
    const std::function<bool(const SessionRecord&)>& filter) const {
  std::array<double, 24> out{};
  for_each_segment(
      CompiledQuery(Query{}), [this, &filter, &out](const ColumnsView& v) {
        for (std::size_t i = 0; i < v.rows; ++i) {
          const SessionRecord r = materialize_row(v, i, sni_of(v.sni[i]));
          if (filter(r))
            accumulate_hourly_volume_gb(out, r.counters.first_us,
                                        r.counters.last_us,
                                        r.counters.bytes_down);
        }
      });
  return out;
}

double SessionStore::unknown_fraction() const {
  return rows_ == 0 ? 0.0
                    : static_cast<double>(unknown_) /
                          static_cast<double>(rows_);
}

StoreStats SessionStore::stats() const {
  StoreStats stats;
  stats.rows = rows_;
  stats.active_rows = active_.rows();
  for (const Sealed& s : sealed_) {
    if (s.columns) {
      ++stats.resident_segments;
      stats.resident_bytes += s.columns->rows() * kBytesPerRow;
    } else {
      ++stats.spilled_segments;
      stats.spilled_rows += s.spilled->rows();
    }
  }
  stats.resident_bytes += active_.rows() * kBytesPerRow;
  stats.segments_scanned = segments_scanned_;
  stats.segments_skipped = segments_skipped_;
  stats.spill_read_failures = spill_read_failures_;
  return stats;
}

void SynchronizedSessionStore::insert(SessionRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_.insert(std::move(record));
}

std::size_t SynchronizedSessionStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_.size();
}

SessionStore SynchronizedSessionStore::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_;
}

std::function<void(SessionRecord)> SynchronizedSessionStore::sink() {
  return [this](SessionRecord record) { insert(std::move(record)); };
}

}  // namespace vpscope::telemetry
