#include "telemetry/sharded_store.hpp"

namespace vpscope::telemetry {

namespace {
constexpr std::size_t kSniCacheCap = 256;
}  // namespace

ShardedSessionStore::ShardedSessionStore(std::size_t writers,
                                         StoreOptions options)
    : segment_rows_(options.segment_rows), store_(std::move(options)) {
  for (std::size_t i = 0; i < writers; ++i)
    writers_.emplace_back(Writer(this));
}

void ShardedSessionStore::Writer::insert(SessionRecord record) {
  staging_.append(record, intern(record.sni));
  if (staging_.rows() >= parent_->segment_rows_) flush();
}

void ShardedSessionStore::Writer::flush() {
  if (staging_.rows() == 0) return;
  parent_->adopt(std::move(staging_));
  staging_ = SegmentColumns{};
}

core::TokenId ShardedSessionStore::Writer::intern(std::string_view sni) {
  for (const auto& [token, id] : sni_cache_)
    if (token == sni) return id;
  const core::TokenId id = parent_->intern_shared(sni);
  if (sni_cache_.size() < kSniCacheCap) sni_cache_.emplace_back(sni, id);
  return id;
}

std::function<void(SessionRecord)> ShardedSessionStore::sink(std::size_t i) {
  Writer* writer = &writers_[i];
  return [writer](SessionRecord record) { writer->insert(std::move(record)); };
}

void ShardedSessionStore::flush_all() {
  for (Writer& w : writers_) w.flush();
}

std::size_t ShardedSessionStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_.size();
}

SessionStore ShardedSessionStore::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_;
}

StoreStats ShardedSessionStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_.stats();
}

core::TokenId ShardedSessionStore::intern_shared(std::string_view sni) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_.interner().intern(sni);
}

void ShardedSessionStore::adopt(SegmentColumns segment) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_.adopt(std::move(segment));
}

}  // namespace vpscope::telemetry
