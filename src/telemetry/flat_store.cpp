#include "telemetry/flat_store.hpp"

namespace vpscope::telemetry {

void FlatSessionStore::insert(SessionRecord record) {
  if (record.outcome == Outcome::Unknown) ++unknown_;
  records_.push_back(std::move(record));
}

double FlatSessionStore::watch_hours(const Query& query) const {
  double seconds = 0.0;
  for (const auto& r : records_)
    if (query.matches(r)) seconds += r.counters.duration_s();
  return seconds / 3600.0;
}

double FlatSessionStore::watch_hours(
    const std::function<bool(const SessionRecord&)>& filter) const {
  double seconds = 0.0;
  for (const auto& r : records_)
    if (filter(r)) seconds += r.counters.duration_s();
  return seconds / 3600.0;
}

std::vector<double> FlatSessionStore::bandwidth_mbps(
    const Query& query) const {
  std::vector<double> out;
  for (const auto& r : records_) {
    if (!query.matches(r)) continue;
    const double mbps = r.counters.mean_downstream_mbps();
    if (mbps > 0) out.push_back(mbps);
  }
  return out;
}

std::vector<double> FlatSessionStore::bandwidth_mbps(
    const std::function<bool(const SessionRecord&)>& filter) const {
  std::vector<double> out;
  for (const auto& r : records_) {
    if (!filter(r)) continue;
    const double mbps = r.counters.mean_downstream_mbps();
    if (mbps > 0) out.push_back(mbps);
  }
  return out;
}

std::array<double, 24> FlatSessionStore::hourly_volume_gb(
    const Query& query) const {
  std::array<double, 24> out{};
  for (const auto& r : records_)
    if (query.matches(r))
      accumulate_hourly_volume_gb(out, r.counters.first_us, r.counters.last_us,
                                  r.counters.bytes_down);
  return out;
}

std::array<double, 24> FlatSessionStore::hourly_volume_gb(
    const std::function<bool(const SessionRecord&)>& filter) const {
  std::array<double, 24> out{};
  for (const auto& r : records_)
    if (filter(r))
      accumulate_hourly_volume_gb(out, r.counters.first_us, r.counters.last_us,
                                  r.counters.bytes_down);
  return out;
}

double FlatSessionStore::unknown_fraction() const {
  return records_.empty()
             ? 0.0
             : static_cast<double>(unknown_) /
                   static_cast<double>(records_.size());
}

}  // namespace vpscope::telemetry
