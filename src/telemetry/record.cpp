#include "telemetry/record.hpp"

#include <algorithm>

namespace vpscope::telemetry {

namespace {

constexpr std::uint64_t kHourUs = 3600ull * 1000 * 1000;

void touch(FlowCounters& c, std::uint64_t ts_us) {
  if (c.packets_down + c.packets_up == 0)
    c.first_us = ts_us;
  else
    c.first_us = std::min(c.first_us, ts_us);
  c.last_us = std::max(c.last_us, ts_us);
}

}  // namespace

void FlowCounters::add_down(std::uint64_t ts_us, std::uint64_t bytes) {
  touch(*this, ts_us);
  bytes_down += bytes;
  ++packets_down;
}

void FlowCounters::add_up(std::uint64_t ts_us, std::uint64_t bytes) {
  touch(*this, ts_us);
  bytes_up += bytes;
  ++packets_up;
}

double FlowCounters::duration_s() const {
  return last_us > first_us
             ? static_cast<double>(last_us - first_us) / 1e6
             : 0.0;
}

double FlowCounters::mean_downstream_mbps() const {
  const double secs = duration_s();
  if (secs <= 0) return 0.0;
  return static_cast<double>(bytes_down) * 8.0 / 1e6 / secs;
}

void accumulate_hourly_volume_gb(std::array<double, 24>& out,
                                 std::uint64_t first_us, std::uint64_t last_us,
                                 std::uint64_t bytes_down) {
  const double gb = static_cast<double>(bytes_down) / 1e9;
  if (last_us <= first_us) {
    out[static_cast<std::size_t>((first_us / kHourUs) % 24)] += gb;
    return;
  }
  const double span = static_cast<double>(last_us - first_us);
  // Walk the wall-clock hours the flow overlaps, crediting each bucket its
  // share of the flow's lifetime. `hour + kHourUs` can wrap for timestamps
  // in the last hour before 2^64, so the bucket end is clamped before the
  // addition instead of after.
  std::uint64_t hour = first_us - first_us % kHourUs;
  for (;;) {
    const std::uint64_t lo = std::max(hour, first_us);
    const std::uint64_t hi =
        kHourUs < last_us - hour ? hour + kHourUs : last_us;
    out[static_cast<std::size_t>((hour / kHourUs) % 24)] +=
        gb * static_cast<double>(hi - lo) / span;
    if (hi >= last_us) return;
    hour = hi;
  }
}

}  // namespace vpscope::telemetry
