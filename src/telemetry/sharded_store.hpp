// Multi-writer ingest (DESIGN.md §5h). SynchronizedSessionStore funnels
// every record through one mutex — measurably the bottleneck once the
// sharded pipeline runs a worker per core. Here each shard owns a Writer
// with a private staging segment; the shared store's lock is taken only to
// hand off a *sealed* segment (every `segment_rows` records) or to intern a
// never-before-seen SNI (a handful of times total — each writer keeps a
// tiny linear cache of resolved SNIs), so steady-state ingest is
// effectively lock-free.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/interner.hpp"
#include "telemetry/columnar.hpp"
#include "telemetry/record.hpp"
#include "telemetry/segment.hpp"

namespace vpscope::telemetry {

class ShardedSessionStore {
 public:
  explicit ShardedSessionStore(std::size_t writers,
                               StoreOptions options = StoreOptions{});

  /// One shard's ingest handle. NOT thread-safe — each Writer belongs to
  /// exactly one shard worker; cross-writer coordination happens only
  /// inside the parent store.
  class Writer {
   public:
    void insert(SessionRecord record);

    /// Hands off the partial staging segment. Call at drain time; records
    /// are invisible to snapshots until flushed.
    void flush();

   private:
    friend class ShardedSessionStore;
    explicit Writer(ShardedSessionStore* parent) : parent_(parent) {}

    core::TokenId intern(std::string_view sni);

    ShardedSessionStore* parent_;
    SegmentColumns staging_;
    /// SNI cardinality is tiny (a few names per provider), so a linear
    /// scan beats a hash map; capped so an adversarial SNI stream degrades
    /// to shared-interner lookups instead of unbounded growth.
    std::vector<std::pair<std::string, core::TokenId>> sni_cache_;
  };

  std::size_t writer_count() const { return writers_.size(); }
  Writer& writer(std::size_t i) { return writers_[i]; }

  /// A sink bound to writer `i`, for ShardedPipeline::set_shard_sinks.
  /// The store must outlive the pipeline.
  std::function<void(SessionRecord)> sink(std::size_t i);

  /// Flushes every writer's staging segment. Single-threaded drain-time
  /// call (writers must be quiescent).
  void flush_all();

  /// Rows visible in the shared store (flushed segments only).
  std::size_t size() const;

  /// Copies the shared store out for analysis (O(segments); sealed
  /// segments are shared). flush_all() first to include staged rows.
  SessionStore snapshot() const;

  StoreStats stats() const;

 private:
  core::TokenId intern_shared(std::string_view sni);
  void adopt(SegmentColumns segment);

  std::size_t segment_rows_;
  mutable std::mutex mutex_;
  SessionStore store_;
  std::deque<Writer> writers_;  // deque: stable Writer addresses
};

}  // namespace vpscope::telemetry
