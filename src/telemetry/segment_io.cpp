#include "telemetry/segment_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <cstring>

#include "util/crc32.hpp"

namespace vpscope::telemetry {

namespace {

constexpr std::size_t kHeaderSize = 28;
constexpr std::size_t kCrcOffset = 24;  // of the u32 crc within the header
constexpr int kNumColumns = 15;

/// Column widths in payload order: provider, transport, outcome,
/// platform_os, platform_agent, device, agent (u8); confidence (f64);
/// sni (u32); first_us, last_us, bytes_down, bytes_up, packets_down,
/// packets_up (u64).
constexpr std::array<std::size_t, kNumColumns> kColWidth = {
    1, 1, 1, 1, 1, 1, 1, 8, 4, 8, 8, 8, 8, 8, 8};

std::uint8_t native_endian_tag() {
  return std::endian::native == std::endian::little ? 0 : 1;
}

std::size_t align8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

struct Layout {
  std::size_t payload_size = 0;
  std::array<std::size_t, kNumColumns> off{};
};

Layout layout_for(std::uint64_t rows) {
  Layout l;
  std::size_t off = 0;
  for (int c = 0; c < kNumColumns; ++c) {
    l.off[static_cast<std::size_t>(c)] = off;
    off += align8(kColWidth[static_cast<std::size_t>(c)] * rows);
  }
  l.payload_size = off;
  return l;
}

using Dict = std::vector<std::pair<std::uint32_t, std::string_view>>;

struct Parsed {
  std::uint32_t rows = 0;
  Layout layout;
  ColumnsView view;
  Dict dict;  // sorted by id, unique
};

ColumnsView make_view(std::uint32_t rows, const Layout& l,
                      const std::uint8_t* payload) {
  ColumnsView v;
  v.rows = rows;
  v.provider = payload + l.off[0];
  v.transport = payload + l.off[1];
  v.outcome = payload + l.off[2];
  v.platform_os = payload + l.off[3];
  v.platform_agent = payload + l.off[4];
  v.device = payload + l.off[5];
  v.agent = payload + l.off[6];
  v.confidence = reinterpret_cast<const double*>(payload + l.off[7]);
  v.sni = reinterpret_cast<const std::uint32_t*>(payload + l.off[8]);
  v.first_us = reinterpret_cast<const std::uint64_t*>(payload + l.off[9]);
  v.last_us = reinterpret_cast<const std::uint64_t*>(payload + l.off[10]);
  v.bytes_down = reinterpret_cast<const std::uint64_t*>(payload + l.off[11]);
  v.bytes_up = reinterpret_cast<const std::uint64_t*>(payload + l.off[12]);
  v.packets_down = reinterpret_cast<const std::uint64_t*>(payload + l.off[13]);
  v.packets_up = reinterpret_cast<const std::uint64_t*>(payload + l.off[14]);
  return v;
}

bool dict_contains(const Dict& dict, std::uint32_t id) {
  const auto it = std::lower_bound(
      dict.begin(), dict.end(), id,
      [](const auto& entry, std::uint32_t key) { return entry.first < key; });
  return it != dict.end() && it->first == id;
}

/// Content validation: enum codes in range, optional columns consistent,
/// counters ordered, every SNI id present in the dictionary. A file that
/// passes cannot make materialize_row or the aggregation scans read out of
/// any enum table.
bool validate_rows(const ColumnsView& v, const Dict& dict) {
  for (std::size_t i = 0; i < v.rows; ++i) {
    if (v.provider[i] >= fingerprint::kNumProviders) return false;
    if (v.transport[i] >= 2) return false;
    if (v.outcome[i] >= kNumOutcomes) return false;
    const bool has_platform = v.platform_os[i] != kNoValue;
    if (has_platform) {
      if (v.platform_os[i] >= kOsValues) return false;
      if (v.platform_agent[i] >= kAgentValues) return false;
    } else if (v.platform_agent[i] != kNoValue) {
      return false;
    }
    if (v.device[i] != kNoValue && v.device[i] >= kOsValues) return false;
    if (v.agent[i] != kNoValue && v.agent[i] >= kAgentValues) return false;
    if (v.first_us[i] > v.last_us[i]) return false;
    if (!dict_contains(dict, v.sni[i])) return false;
  }
  return true;
}

std::optional<Parsed> parse(ByteView data, bool verify_crc) {
  if (data.size() < kHeaderSize) return std::nullopt;
  Reader r(data);
  if (r.u32() != kSegmentMagic) return std::nullopt;
  if (r.u16() != kSegmentVersion) return std::nullopt;
  if (r.u8() != native_endian_tag()) return std::nullopt;
  if (r.u8() != 0) return std::nullopt;  // reserved
  const std::uint32_t rows = r.u32();
  const std::uint32_t dict_count = r.u32();
  const std::uint64_t payload_size = r.u64();
  const std::uint32_t crc = r.u32();
  if (!r.ok()) return std::nullopt;
  // An inflated row count cannot survive: it must reproduce both the
  // claimed and the actual payload size exactly.
  if (rows > kSegmentMaxRows) return std::nullopt;
  if (dict_count > rows) return std::nullopt;
  Parsed p;
  p.rows = rows;
  p.layout = layout_for(rows);
  if (payload_size != p.layout.payload_size) return std::nullopt;
  if (verify_crc && crc32(data.subspan(kHeaderSize)) != crc)
    return std::nullopt;
  p.dict.reserve(dict_count);
  for (std::uint32_t i = 0; i < dict_count; ++i) {
    const std::uint32_t id = r.u32();
    const std::uint16_t len = r.u16();
    const ByteView token = r.view(len);
    if (!r.ok()) return std::nullopt;
    p.dict.emplace_back(
        id, std::string_view(reinterpret_cast<const char*>(token.data()),
                             token.size()));
  }
  r.skip(align8(r.offset()) - r.offset());
  if (!r.ok() || r.remaining() != payload_size) return std::nullopt;
  const std::uint8_t* payload = data.data() + r.offset();
  if (reinterpret_cast<std::uintptr_t>(payload) % 8 != 0) return std::nullopt;
  std::sort(p.dict.begin(), p.dict.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (std::adjacent_find(p.dict.begin(), p.dict.end(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first;
                         }) != p.dict.end())
    return std::nullopt;
  p.view = make_view(rows, p.layout, payload);
  if (!validate_rows(p.view, p.dict)) return std::nullopt;
  return p;
}

}  // namespace

Bytes serialize_segment(const SegmentColumns& columns,
                        const core::TokenInterner& interner) {
  const auto rows = static_cast<std::uint32_t>(columns.rows());
  std::vector<std::uint32_t> ids(columns.sni);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  Writer w;
  w.u32(kSegmentMagic);
  w.u16(kSegmentVersion);
  w.u8(native_endian_tag());
  w.u8(0);
  w.u32(rows);
  w.u32(static_cast<std::uint32_t>(ids.size()));
  const Layout layout = layout_for(rows);
  w.u64(layout.payload_size);
  w.u32(0);  // crc backpatched below

  for (const std::uint32_t id : ids) {
    const std::string_view token = id == core::TokenInterner::kUnseenId
                                       ? std::string_view{}
                                       : interner.token(id);
    w.u32(id);
    w.u16(static_cast<std::uint16_t>(token.size()));
    w.raw(ByteView{reinterpret_cast<const std::uint8_t*>(token.data()),
                   token.size()});
  }
  while (w.size() % 8 != 0) w.u8(0);

  const auto append_column = [&w](const void* data, std::size_t bytes) {
    w.raw(ByteView{static_cast<const std::uint8_t*>(data), bytes});
    for (std::size_t pad = align8(bytes) - bytes; pad > 0; --pad) w.u8(0);
  };
  append_column(columns.provider.data(), rows);
  append_column(columns.transport.data(), rows);
  append_column(columns.outcome.data(), rows);
  append_column(columns.platform_os.data(), rows);
  append_column(columns.platform_agent.data(), rows);
  append_column(columns.device.data(), rows);
  append_column(columns.agent.data(), rows);
  append_column(columns.confidence.data(), rows * sizeof(double));
  append_column(columns.sni.data(), rows * sizeof(std::uint32_t));
  append_column(columns.first_us.data(), rows * sizeof(std::uint64_t));
  append_column(columns.last_us.data(), rows * sizeof(std::uint64_t));
  append_column(columns.bytes_down.data(), rows * sizeof(std::uint64_t));
  append_column(columns.bytes_up.data(), rows * sizeof(std::uint64_t));
  append_column(columns.packets_down.data(), rows * sizeof(std::uint64_t));
  append_column(columns.packets_up.data(), rows * sizeof(std::uint64_t));

  Bytes out = std::move(w).take();
  const std::uint32_t crc = crc32(ByteView{out}.subspan(kHeaderSize));
  out[kCrcOffset] = static_cast<std::uint8_t>(crc >> 24);
  out[kCrcOffset + 1] = static_cast<std::uint8_t>(crc >> 16);
  out[kCrcOffset + 2] = static_cast<std::uint8_t>(crc >> 8);
  out[kCrcOffset + 3] = static_cast<std::uint8_t>(crc);
  return out;
}

std::optional<SegmentColumns> deserialize_segment(
    ByteView data, core::TokenInterner& interner) {
  const std::optional<Parsed> p = parse(data, /*verify_crc=*/true);
  if (!p) return std::nullopt;

  // Remap file-local SNI ids into the target interner via the dictionary.
  std::vector<core::TokenId> remapped(p->dict.size());
  for (std::size_t i = 0; i < p->dict.size(); ++i)
    remapped[i] = interner.intern(p->dict[i].second);

  SegmentColumns cols;
  cols.reserve(p->rows);
  const ColumnsView& v = p->view;
  const auto copy = [rows = p->rows](auto& dst, const auto* src) {
    dst.assign(src, src + rows);
  };
  copy(cols.provider, v.provider);
  copy(cols.transport, v.transport);
  copy(cols.outcome, v.outcome);
  copy(cols.platform_os, v.platform_os);
  copy(cols.platform_agent, v.platform_agent);
  copy(cols.device, v.device);
  copy(cols.agent, v.agent);
  copy(cols.confidence, v.confidence);
  copy(cols.first_us, v.first_us);
  copy(cols.last_us, v.last_us);
  copy(cols.bytes_down, v.bytes_down);
  copy(cols.bytes_up, v.bytes_up);
  copy(cols.packets_down, v.packets_down);
  copy(cols.packets_up, v.packets_up);
  cols.sni.resize(p->rows);
  for (std::size_t i = 0; i < p->rows; ++i) {
    const auto it = std::lower_bound(
        p->dict.begin(), p->dict.end(), v.sni[i],
        [](const auto& entry, std::uint32_t key) { return entry.first < key; });
    cols.sni[i] = remapped[static_cast<std::size_t>(it - p->dict.begin())];
  }
  return cols;
}

bool write_segment_file(const std::string& path,
                        const SegmentColumns& columns,
                        const core::TokenInterner& interner) {
  const Bytes data = serialize_segment(columns, interner);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok =
      std::fwrite(data.data(), 1, data.size(), f) == data.size();
  const bool closed = std::fclose(f) == 0;
  if (!(ok && closed)) {
    std::remove(path.c_str());
    return false;
  }
  return true;
}

std::optional<SegmentColumns> read_segment_file(const std::string& path,
                                                core::TokenInterner& interner) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  Bytes data;
  std::array<std::uint8_t, 1 << 16> chunk;
  std::size_t n = 0;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0)
    data.insert(data.end(), chunk.begin(), chunk.begin() + n);
  std::fclose(f);
  return deserialize_segment(ByteView{data}, interner);
}

MappedSegment::MappedSegment(MappedSegment&& other) noexcept
    : base_(other.base_),
      len_(other.len_),
      view_(other.view_),
      dict_(std::move(other.dict_)) {
  other.base_ = nullptr;
  other.len_ = 0;
}

MappedSegment& MappedSegment::operator=(MappedSegment&& other) noexcept {
  if (this != &other) {
    if (base_) ::munmap(base_, len_);
    base_ = other.base_;
    len_ = other.len_;
    view_ = other.view_;
    dict_ = std::move(other.dict_);
    other.base_ = nullptr;
    other.len_ = 0;
  }
  return *this;
}

MappedSegment::~MappedSegment() {
  if (base_) ::munmap(base_, len_);
}

std::optional<MappedSegment> MappedSegment::open(const std::string& path,
                                                 bool verify_crc) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return std::nullopt;
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) return std::nullopt;
  ::madvise(base, len, MADV_SEQUENTIAL);

  std::optional<Parsed> parsed =
      parse(ByteView{static_cast<const std::uint8_t*>(base), len}, verify_crc);
  if (!parsed) {
    ::munmap(base, len);
    return std::nullopt;
  }
  MappedSegment m;
  m.base_ = base;
  m.len_ = len;
  m.view_ = parsed->view;
  m.dict_ = std::move(parsed->dict);
  return m;
}

std::string_view MappedSegment::sni_token(std::uint32_t id) const {
  const auto it = std::lower_bound(
      dict_.begin(), dict_.end(), id,
      [](const auto& entry, std::uint32_t key) { return entry.first < key; });
  if (it == dict_.end() || it->first != id) return {};
  return it->second;
}

SpilledSegment::~SpilledSegment() {
  if (!path_.empty()) ::unlink(path_.c_str());
}

bool SpilledSegment::with_mapping(
    const std::function<void(const MappedSegment&)>& fn) const {
  const bool need_crc = !verified_.load(std::memory_order_acquire);
  std::optional<MappedSegment> mapped = MappedSegment::open(path_, need_crc);
  if (!mapped) return false;
  if (need_crc) verified_.store(true, std::memory_order_release);
  fn(*mapped);
  return true;
}

}  // namespace vpscope::telemetry
