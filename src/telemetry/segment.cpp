#include "telemetry/segment.hpp"

#include <algorithm>

namespace vpscope::telemetry {

namespace {

std::uint8_t code_of(fingerprint::Provider p) {
  return static_cast<std::uint8_t>(p);
}
std::uint8_t code_of(fingerprint::Transport t) {
  return static_cast<std::uint8_t>(t);
}
std::uint8_t code_of(Outcome o) { return static_cast<std::uint8_t>(o); }
std::uint8_t code_of(fingerprint::Os os) {
  return static_cast<std::uint8_t>(os);
}
std::uint8_t code_of(fingerprint::Agent a) {
  return static_cast<std::uint8_t>(a);
}

}  // namespace

CompiledQuery::CompiledQuery(const Query& query) {
  if (query.provider_filter())
    provider = static_cast<std::int16_t>(*query.provider_filter());
  if (query.outcome_filter())
    outcome = static_cast<std::int16_t>(*query.outcome_filter());
  if (query.device_filter())
    device = static_cast<std::int16_t>(*query.device_filter());
  if (query.agent_filter())
    agent = static_cast<std::int16_t>(*query.agent_filter());
  if (query.device_type_filter())
    device_type = static_cast<std::int16_t>(*query.device_type_filter());
  start_min_us = query.start_min_us();
  start_max_us = query.start_max_us();
}

std::int16_t CompiledQuery::os_device_type(std::uint8_t os_code) {
  static const std::array<std::int16_t, kOsValues> table = [] {
    std::array<std::int16_t, kOsValues> t{};
    for (int os = 0; os < kOsValues; ++os)
      t[static_cast<std::size_t>(os)] = static_cast<std::int16_t>(
          Query::device_type_of(static_cast<fingerprint::Os>(os)));
    return t;
  }();
  return os_code < kOsValues ? table[os_code] : std::int16_t{-1};
}

void SegmentColumns::reserve(std::size_t n) {
  provider.reserve(n);
  transport.reserve(n);
  outcome.reserve(n);
  platform_os.reserve(n);
  platform_agent.reserve(n);
  device.reserve(n);
  agent.reserve(n);
  confidence.reserve(n);
  sni.reserve(n);
  first_us.reserve(n);
  last_us.reserve(n);
  bytes_down.reserve(n);
  bytes_up.reserve(n);
  packets_down.reserve(n);
  packets_up.reserve(n);
}

void SegmentColumns::clear() {
  provider.clear();
  transport.clear();
  outcome.clear();
  platform_os.clear();
  platform_agent.clear();
  device.clear();
  agent.clear();
  confidence.clear();
  sni.clear();
  first_us.clear();
  last_us.clear();
  bytes_down.clear();
  bytes_up.clear();
  packets_down.clear();
  packets_up.clear();
}

void SegmentColumns::append(const SessionRecord& r, core::TokenId sni_id) {
  provider.push_back(code_of(r.provider));
  transport.push_back(code_of(r.transport));
  outcome.push_back(code_of(r.outcome));
  platform_os.push_back(r.platform ? code_of(r.platform->os) : kNoValue);
  platform_agent.push_back(r.platform ? code_of(r.platform->agent) : kNoValue);
  device.push_back(r.device ? code_of(*r.device) : kNoValue);
  agent.push_back(r.agent ? code_of(*r.agent) : kNoValue);
  confidence.push_back(r.confidence);
  sni.push_back(sni_id);
  first_us.push_back(r.counters.first_us);
  last_us.push_back(r.counters.last_us);
  bytes_down.push_back(r.counters.bytes_down);
  bytes_up.push_back(r.counters.bytes_up);
  packets_down.push_back(r.counters.packets_down);
  packets_up.push_back(r.counters.packets_up);
}

SessionRecord materialize_row(const ColumnsView& v, std::size_t i,
                              std::string_view sni) {
  SessionRecord r;
  r.provider = static_cast<fingerprint::Provider>(v.provider[i]);
  r.transport = static_cast<fingerprint::Transport>(v.transport[i]);
  r.outcome = static_cast<Outcome>(v.outcome[i]);
  if (v.platform_os[i] != kNoValue)
    r.platform = fingerprint::PlatformId{
        static_cast<fingerprint::Os>(v.platform_os[i]),
        static_cast<fingerprint::Agent>(v.platform_agent[i])};
  if (v.device[i] != kNoValue)
    r.device = static_cast<fingerprint::Os>(v.device[i]);
  if (v.agent[i] != kNoValue)
    r.agent = static_cast<fingerprint::Agent>(v.agent[i]);
  r.confidence = v.confidence[i];
  r.sni = std::string(sni);
  r.counters.first_us = v.first_us[i];
  r.counters.last_us = v.last_us[i];
  r.counters.bytes_down = v.bytes_down[i];
  r.counters.bytes_up = v.bytes_up[i];
  r.counters.packets_down = v.packets_down[i];
  r.counters.packets_up = v.packets_up[i];
  return r;
}

SessionRecord SegmentColumns::materialize(
    std::size_t i, const core::TokenInterner& interner) const {
  // kUnseenId (an empty-SNI record) resolves to "<unseen>"; store empty
  // instead so materialization round-trips the original record exactly.
  const std::string_view token =
      sni[i] == core::TokenInterner::kUnseenId ? std::string_view{}
                                               : interner.token(sni[i]);
  return materialize_row(view(), i, token);
}

ColumnsView SegmentColumns::view() const {
  ColumnsView v;
  v.rows = rows();
  v.provider = provider.data();
  v.transport = transport.data();
  v.outcome = outcome.data();
  v.platform_os = platform_os.data();
  v.platform_agent = platform_agent.data();
  v.device = device.data();
  v.agent = agent.data();
  v.confidence = confidence.data();
  v.sni = sni.data();
  v.first_us = first_us.data();
  v.last_us = last_us.data();
  v.bytes_down = bytes_down.data();
  v.bytes_up = bytes_up.data();
  v.packets_down = packets_down.data();
  v.packets_up = packets_up.data();
  return v;
}

ZoneMap ZoneMap::build(const SegmentColumns& columns) {
  ZoneMap z;
  z.rows = static_cast<std::uint32_t>(columns.rows());
  for (std::size_t i = 0; i < columns.rows(); ++i) {
    z.first_us_min = std::min(z.first_us_min, columns.first_us[i]);
    z.first_us_max = std::max(z.first_us_max, columns.first_us[i]);
    ++z.by_provider[columns.provider[i] %
                    static_cast<unsigned>(fingerprint::kNumProviders)];
    ++z.by_outcome[columns.outcome[i] % static_cast<unsigned>(kNumOutcomes)];
    const std::uint8_t os = columns.device[i];
    ++z.by_device[os < kOsValues ? os : kOsValues];
    const std::uint8_t agent = columns.agent[i];
    ++z.by_agent[agent < kAgentValues ? agent : kAgentValues];
  }
  return z;
}

bool ZoneMap::may_match(const CompiledQuery& q) const {
  if (rows == 0) return false;
  if (q.provider >= 0 &&
      by_provider[static_cast<std::size_t>(q.provider)] == 0)
    return false;
  if (q.outcome >= 0 && by_outcome[static_cast<std::size_t>(q.outcome)] == 0)
    return false;
  if (q.device >= 0 && by_device[static_cast<std::size_t>(q.device)] == 0)
    return false;
  if (q.agent >= 0 && by_agent[static_cast<std::size_t>(q.agent)] == 0)
    return false;
  if (q.device_type >= 0) {
    std::uint32_t candidates = 0;
    for (int os = 0; os < kOsValues; ++os)
      if (CompiledQuery::os_device_type(static_cast<std::uint8_t>(os)) ==
          q.device_type)
        candidates += by_device[static_cast<std::size_t>(os)];
    if (candidates == 0) return false;
  }
  return first_us_min <= q.start_max_us && first_us_max >= q.start_min_us;
}

}  // namespace vpscope::telemetry
