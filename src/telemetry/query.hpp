// Typed, composable session-store predicates (DESIGN.md §5h). The Fig. 7-11
// aggregations all filter on the same handful of dimensions — provider,
// classification outcome, device OS / device type, software agent, start
// time — which a `std::function<bool(const SessionRecord&)>` hides from the
// store. Expressing the filter as data instead lets the columnar store
// (a) test rows straight from the POD columns without materializing a
// SessionRecord, and (b) consult per-segment zone maps to skip segments
// that cannot contain a match. The std::function overloads remain on every
// store for arbitrary predicates (and seed-era call sites).
#pragma once

#include <cstdint>
#include <optional>

#include "telemetry/record.hpp"

namespace vpscope::telemetry {

/// Conjunctive filter over session records; default-constructed matches
/// everything. Builder-style setters return *this so call sites read as
/// one expression: Query().provider(p).device_type(DeviceType::Mobile).
class Query {
 public:
  Query() = default;

  Query& provider(fingerprint::Provider p) { provider_ = p; return *this; }
  Query& outcome(Outcome o) { outcome_ = o; return *this; }
  /// Matches records whose confident device OS equals `os` (records with
  /// no device are never matched).
  Query& device(fingerprint::Os os) { device_ = os; return *this; }
  /// Matches records whose confident agent equals `a`.
  Query& agent(fingerprint::Agent a) { agent_ = a; return *this; }
  /// Matches records whose device OS maps to this device class (PC /
  /// Mobile / TV). Records with no confident device never match.
  Query& device_type(fingerprint::DeviceType d) { device_type_ = d; return *this; }
  /// Shorthand for device(p.os).agent(p.agent).
  Query& platform(const fingerprint::PlatformId& p) {
    return device(p.os).agent(p.agent);
  }
  /// Restricts to flows whose first packet lies in [lo_us, hi_us].
  Query& started_between(std::uint64_t lo_us, std::uint64_t hi_us) {
    start_min_us_ = lo_us;
    start_max_us_ = hi_us;
    return *this;
  }

  bool matches(const SessionRecord& r) const {
    if (provider_ && r.provider != *provider_) return false;
    if (outcome_ && r.outcome != *outcome_) return false;
    if (device_ && (!r.device || *r.device != *device_)) return false;
    if (agent_ && (!r.agent || *r.agent != *agent_)) return false;
    if (device_type_ &&
        (!r.device || device_type_of(*r.device) != *device_type_))
      return false;
    return r.counters.first_us >= start_min_us_ &&
           r.counters.first_us <= start_max_us_;
  }

  // ---- accessors the columnar scan and zone maps prune against ----
  const std::optional<fingerprint::Provider>& provider_filter() const {
    return provider_;
  }
  const std::optional<Outcome>& outcome_filter() const { return outcome_; }
  const std::optional<fingerprint::Os>& device_filter() const {
    return device_;
  }
  const std::optional<fingerprint::Agent>& agent_filter() const {
    return agent_;
  }
  const std::optional<fingerprint::DeviceType>& device_type_filter() const {
    return device_type_;
  }
  std::uint64_t start_min_us() const { return start_min_us_; }
  std::uint64_t start_max_us() const { return start_max_us_; }

  /// Device class of an OS (Table 1 pairs them 1:1).
  static fingerprint::DeviceType device_type_of(fingerprint::Os os) {
    return fingerprint::PlatformId{os, fingerprint::Agent::NativeApp}.device();
  }

 private:
  std::optional<fingerprint::Provider> provider_;
  std::optional<Outcome> outcome_;
  std::optional<fingerprint::Os> device_;
  std::optional<fingerprint::Agent> agent_;
  std::optional<fingerprint::DeviceType> device_type_;
  std::uint64_t start_min_us_ = 0;
  std::uint64_t start_max_us_ = ~std::uint64_t{0};
};

}  // namespace vpscope::telemetry
