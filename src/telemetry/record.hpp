// The per-flow telemetry vocabulary shared by every store implementation:
// FlowCounters (volume/timing accounting), classification Outcome, and the
// SessionRecord the pipeline emits for each finished video session. The
// stores themselves live in flat_store.hpp (seed-era row vector, kept for
// A/B benchmarking) and columnar.hpp (the production-shaped segmented
// store); telemetry.hpp re-exports everything.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "fingerprint/platform.hpp"

namespace vpscope::telemetry {

/// Volume/timing counters of one flow, updated per packet (or per decimated
/// volume sample in the campus simulator).
struct FlowCounters {
  std::uint64_t first_us = 0;
  std::uint64_t last_us = 0;
  std::uint64_t bytes_down = 0;  // server -> client
  std::uint64_t bytes_up = 0;
  std::uint64_t packets_down = 0;
  std::uint64_t packets_up = 0;

  void add_down(std::uint64_t ts_us, std::uint64_t bytes);
  void add_up(std::uint64_t ts_us, std::uint64_t bytes);

  /// Idle time since the last packet, clamped to zero when `now_us` is
  /// behind `last_us`. Capture clocks are not guaranteed monotonic (NIC
  /// timestamp resets, PCAP merges, fault injection); without the clamp a
  /// reversed clock would produce a near-2^64 unsigned delta and evict
  /// every active flow.
  std::uint64_t idle_us(std::uint64_t now_us) const {
    return now_us > last_us ? now_us - last_us : 0;
  }

  double duration_s() const;
  /// Mean downstream throughput over the flow lifetime, in Mbit/s.
  double mean_downstream_mbps() const;

  bool operator==(const FlowCounters&) const = default;
};

/// How the pipeline resolved a flow's user platform.
enum class Outcome : std::uint8_t {
  Composite,  // full (device, agent) with confidence >= threshold
  Partial,    // only device and/or agent individually confident
  Unknown,    // rejected
};
inline constexpr int kNumOutcomes = 3;

/// The final per-flow record stored for analysis. This is the INGEST
/// interface every store accepts; the columnar store never retains the
/// `sni` string per row (it is interned once into a TokenId column).
struct SessionRecord {
  fingerprint::Provider provider = fingerprint::Provider::YouTube;
  fingerprint::Transport transport = fingerprint::Transport::Tcp;
  Outcome outcome = Outcome::Unknown;
  std::optional<fingerprint::PlatformId> platform;  // set for Composite
  std::optional<fingerprint::Os> device;            // set when confident
  std::optional<fingerprint::Agent> agent;          // set when confident
  double confidence = 0.0;  // composite-classifier confidence
  std::string sni;
  FlowCounters counters;

  bool operator==(const SessionRecord&) const = default;
};

/// Pro-rates a record's downstream volume across the hour-of-day buckets
/// its flow spans (DESIGN.md §5h): each wall-clock hour the flow overlaps
/// receives volume proportional to the overlap, so a 3-hour 19:00-22:00
/// session credits hours 19, 20 and 21 a third each instead of inflating
/// hour 19 with the whole session (the seed-era behaviour). Zero-duration
/// flows degenerate to the start hour. Shared by the flat and columnar
/// stores so their hourly_volume_gb outputs stay bit-identical.
void accumulate_hourly_volume_gb(std::array<double, 24>& out,
                                 std::uint64_t first_us, std::uint64_t last_us,
                                 std::uint64_t bytes_down);

}  // namespace vpscope::telemetry
