// Telemetry segment wire format v1 (DESIGN.md §5h) — how sealed columnar
// segments spill to disk and map back for queries.
//
//   [fixed header, big-endian]      28 bytes
//     u32 magic "VPSG"   u16 version   u8 endian  u8 reserved
//     u32 row_count      u32 dict_count
//     u64 payload_size   u32 crc32(everything after this header)
//   [SNI dictionary]                dict_count x { u32 id, u16 len, bytes }
//   [zero padding]                  to an 8-byte file offset
//   [column payload]                15 column blobs, each 8-byte aligned,
//                                   fixed order, raw native-endian memcpy
//                                   of the segment's vectors
//
// The header/dictionary go through the big-endian Writer/Reader like every
// other wire format in the codebase; the column payload is a raw dump so a
// reader can mmap the file and scan columns zero-copy (the `endian` byte
// records the writer's byte order and mismatching files are rejected — a
// spill file is a local scratch artifact, not a portable interchange
// format). The reader rejects, rather than trusts, every structural claim:
// bad magic/version/endianness, truncation anywhere, row counts that do not
// reproduce the payload size, dictionary entries out of bounds, SNI ids
// absent from the dictionary, out-of-range enum codes, and CRC mismatches
// (the ml/serialize corruption-rejection discipline, PR 3).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/interner.hpp"
#include "telemetry/segment.hpp"
#include "util/bytes.hpp"

namespace vpscope::telemetry {

inline constexpr std::uint32_t kSegmentMagic = 0x56505347;  // "VPSG"
inline constexpr std::uint16_t kSegmentVersion = 1;
/// Allocation-bomb guard: a claimed row count above this is rejected before
/// any buffer is sized from it (~2^28 rows ≈ 26 GB of columns).
inline constexpr std::uint32_t kSegmentMaxRows = 1u << 28;

/// Serializes a segment; `interner` resolves the SNI ids the dictionary
/// block records (so the file is self-contained).
Bytes serialize_segment(const SegmentColumns& columns,
                        const core::TokenInterner& interner);

/// Restores a segment, re-interning the dictionary strings into `interner`
/// (ids in the returned columns are valid for that interner, which may be a
/// different store's). nullopt on any malformed input.
std::optional<SegmentColumns> deserialize_segment(
    ByteView data, core::TokenInterner& interner);

bool write_segment_file(const std::string& path,
                        const SegmentColumns& columns,
                        const core::TokenInterner& interner);
std::optional<SegmentColumns> read_segment_file(const std::string& path,
                                                core::TokenInterner& interner);

/// A validated, memory-mapped segment file: zero-copy column views for the
/// aggregation scans plus the file's own SNI dictionary for materializing
/// rows. Unmaps on destruction; move-only.
class MappedSegment {
 public:
  /// Maps and validates `path`. `verify_crc` may be false when the caller
  /// has already checksummed this file once (the spill re-open path);
  /// structural validation always runs.
  static std::optional<MappedSegment> open(const std::string& path,
                                           bool verify_crc = true);

  MappedSegment(MappedSegment&& other) noexcept;
  MappedSegment& operator=(MappedSegment&& other) noexcept;
  MappedSegment(const MappedSegment&) = delete;
  MappedSegment& operator=(const MappedSegment&) = delete;
  ~MappedSegment();

  std::size_t rows() const { return view_.rows; }
  const ColumnsView& view() const { return view_; }

  /// The SNI string recorded for a file id; empty when absent (never the
  /// case for a file that passed validation).
  std::string_view sni_token(std::uint32_t id) const;

 private:
  MappedSegment() = default;

  void* base_ = nullptr;
  std::size_t len_ = 0;
  ColumnsView view_;
  std::vector<std::pair<std::uint32_t, std::string_view>> dict_;  // sorted
};

/// Handle to a segment the store has spilled: owns the file (unlinked on
/// destruction), remembers that the CRC has been verified once so repeated
/// query scans skip the checksum pass.
class SpilledSegment {
 public:
  SpilledSegment(std::string path, std::uint32_t rows)
      : path_(std::move(path)), rows_(rows) {}
  ~SpilledSegment();

  SpilledSegment(const SpilledSegment&) = delete;
  SpilledSegment& operator=(const SpilledSegment&) = delete;

  const std::string& path() const { return path_; }
  std::uint32_t rows() const { return rows_; }

  /// Maps the file, runs `fn` over it, unmaps — so a query holds at most
  /// one spilled segment's pages resident at a time. Returns false when
  /// the file no longer loads (deleted / corrupted on disk).
  bool with_mapping(const std::function<void(const MappedSegment&)>& fn) const;

 private:
  std::string path_;
  std::uint32_t rows_ = 0;
  /// CRC checked on first map only; later maps are structural-only.
  mutable std::atomic<bool> verified_{false};
};

}  // namespace vpscope::telemetry
