// The production-shaped session store (DESIGN.md §5h): an append-only
// sequence of columnar segments. Records decompose into POD columns at
// insert (SNI interned to a TokenId), full segments seal with a ZoneMap,
// and — when a resident-segment budget is configured — the oldest sealed
// segments spill to versioned binary files (segment_io.hpp) that queries
// mmap back one at a time. Aggregations therefore run over 100M records
// with RSS bounded by O(active segments) instead of O(rows).
//
// Thread model mirrors the seed store: SessionStore itself is externally
// synchronized; SynchronizedSessionStore is the mutex facade the sharded
// pipeline's funnel sink uses. The multi-writer segment-handoff path lives
// in sharded_store.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/interner.hpp"
#include "telemetry/query.hpp"
#include "telemetry/record.hpp"
#include "telemetry/segment.hpp"
#include "telemetry/segment_io.hpp"

namespace vpscope::telemetry {

struct StoreOptions {
  /// Rows per segment before it seals. Large enough to amortize per-segment
  /// overhead, small enough that zone maps prune meaningfully.
  std::size_t segment_rows = 64 * 1024;
  /// Sealed segments kept in RAM; beyond this the oldest spill to disk.
  /// 0 = unbounded (never spill).
  std::size_t max_resident_segments = 0;
  /// Where spill files go. Created on first spill. Callers must point this
  /// inside their own scratch space (tests/benches use the build tree).
  std::string spill_dir = "telemetry-spill";
};

struct StoreStats {
  std::size_t rows = 0;
  std::size_t active_rows = 0;         // staging segment, not yet sealed
  std::size_t resident_segments = 0;   // sealed, in RAM
  std::size_t spilled_segments = 0;
  std::size_t spilled_rows = 0;
  std::size_t resident_bytes = 0;      // column bytes of resident rows
  std::uint64_t segments_scanned = 0;  // cumulative, across queries
  std::uint64_t segments_skipped = 0;  // zone-map prunes
  std::uint64_t spill_read_failures = 0;
};

class SessionStore {
 public:
  SessionStore() = default;
  explicit SessionStore(StoreOptions options) : options_(std::move(options)) {}

  void insert(SessionRecord record);

  /// Adopts an externally staged segment as sealed (the multi-writer
  /// handoff). Rows keep their SNI ids, which must come from this store's
  /// interner.
  void adopt(SegmentColumns segment);

  /// Seals the staging segment early (tests, pre-spill flushes).
  void seal_active();

  std::size_t size() const { return rows_; }

  /// Materializes every record in insertion order. O(rows) allocation —
  /// compat/test surface, not a hot path.
  std::vector<SessionRecord> records() const;

  double watch_hours(const Query& query) const;
  double watch_hours(
      const std::function<bool(const SessionRecord&)>& filter) const;

  std::vector<double> bandwidth_mbps(const Query& query) const;
  std::vector<double> bandwidth_mbps(
      const std::function<bool(const SessionRecord&)>& filter) const;

  std::array<double, 24> hourly_volume_gb(const Query& query) const;
  std::array<double, 24> hourly_volume_gb(
      const std::function<bool(const SessionRecord&)>& filter) const;

  double unknown_fraction() const;

  const StoreOptions& options() const { return options_; }
  StoreStats stats() const;
  core::TokenInterner& interner() { return interner_; }
  const core::TokenInterner& interner() const { return interner_; }

 private:
  struct Sealed {
    std::shared_ptr<const SegmentColumns> columns;  // null when spilled
    std::shared_ptr<const SpilledSegment> spilled;  // null when resident
    ZoneMap zone;
  };

  /// Runs `fn` over every segment a query on `q` must scan, in insertion
  /// order (zone-map-pruned sealed segments first, staging segment last).
  /// Spilled segments are mapped for the duration of their callback only.
  void for_each_segment(const CompiledQuery& q,
                        const std::function<void(const ColumnsView&)>& fn)
      const;

  void maybe_spill();
  std::string_view sni_of(core::TokenId id) const {
    return id == core::TokenInterner::kUnseenId ? std::string_view{}
                                                : interner_.token(id);
  }

  StoreOptions options_;
  core::TokenInterner interner_;
  std::vector<Sealed> sealed_;
  SegmentColumns active_;
  std::size_t rows_ = 0;
  std::size_t unknown_ = 0;
  // Query-side observability; the store is externally synchronized, so
  // plain counters suffice.
  mutable std::uint64_t segments_scanned_ = 0;
  mutable std::uint64_t segments_skipped_ = 0;
  mutable std::uint64_t spill_read_failures_ = 0;
};

/// Thread-safe facade over SessionStore for the sharded pipeline: records
/// from all shard workers funnel through one mutex-protected insert, the
/// paper's many-cores-one-database write path (§5.1). Analysis runs on a
/// quiescent snapshot, keeping SessionStore's query API lock-free. For the
/// scale-out path that skips this funnel, see ShardedSessionStore.
class SynchronizedSessionStore {
 public:
  SynchronizedSessionStore() = default;
  explicit SynchronizedSessionStore(StoreOptions options)
      : store_(std::move(options)) {}

  void insert(SessionRecord record);

  std::size_t size() const;

  /// Copies the store out for (single-threaded) analysis. Sealed segments
  /// are shared, not duplicated, so this is O(segments), not O(rows). Call
  /// once the pipeline is drained.
  SessionStore snapshot() const;

  /// A sink closure bound to this store, for VideoFlowPipeline::set_sink /
  /// ShardedPipeline::set_sink. The store must outlive the pipeline.
  std::function<void(SessionRecord)> sink();

 private:
  mutable std::mutex mutex_;
  SessionStore store_;
};

}  // namespace vpscope::telemetry
