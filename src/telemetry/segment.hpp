// Columnar session-store segments (DESIGN.md §5h): fixed-capacity
// append-only struct-of-arrays blocks of POD columns. A SessionRecord is
// decomposed at insert time — enums to u8 codes (0xff for "not set"), the
// SNI string interned to a core::TokenId — so a stored row owns no heap
// memory and a segment is 15 flat vectors the aggregation scans stream
// through. Sealed segments additionally carry a ZoneMap (per-column
// min/max plus per-provider/outcome/device/agent row counts) that lets a
// query skip whole segments that cannot contain a match.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/interner.hpp"
#include "telemetry/query.hpp"
#include "telemetry/record.hpp"

namespace vpscope::telemetry {

/// Sentinel in the optional u8 columns (platform/device/agent "not set").
inline constexpr std::uint8_t kNoValue = 0xff;

/// Cardinality of the u8-coded enum columns (fingerprint::Os / Agent).
inline constexpr int kOsValues = 6;
inline constexpr int kAgentValues = 6;

/// Borrowed pointers into one segment's columns — the common scan interface
/// over resident segments (SegmentColumns) and spilled ones (MappedSegment).
struct ColumnsView {
  std::size_t rows = 0;
  const std::uint8_t* provider = nullptr;
  const std::uint8_t* transport = nullptr;
  const std::uint8_t* outcome = nullptr;
  const std::uint8_t* platform_os = nullptr;     // kNoValue = no platform
  const std::uint8_t* platform_agent = nullptr;  // valid iff platform_os is
  const std::uint8_t* device = nullptr;          // kNoValue = no device
  const std::uint8_t* agent = nullptr;           // kNoValue = no agent
  const double* confidence = nullptr;
  const std::uint32_t* sni = nullptr;  // core::TokenId
  const std::uint64_t* first_us = nullptr;
  const std::uint64_t* last_us = nullptr;
  const std::uint64_t* bytes_down = nullptr;
  const std::uint64_t* bytes_up = nullptr;
  const std::uint64_t* packets_down = nullptr;
  const std::uint64_t* packets_up = nullptr;
};

/// A Query lowered to POD codes for the row-at-a-time columnar test
/// (negative = dimension unconstrained).
struct CompiledQuery {
  std::int16_t provider = -1;
  std::int16_t outcome = -1;
  std::int16_t device = -1;
  std::int16_t agent = -1;
  std::int16_t device_type = -1;
  std::uint64_t start_min_us = 0;
  std::uint64_t start_max_us = ~std::uint64_t{0};

  explicit CompiledQuery(const Query& query);

  bool matches(const ColumnsView& v, std::size_t i) const {
    if (provider >= 0 && v.provider[i] != provider) return false;
    if (outcome >= 0 && v.outcome[i] != outcome) return false;
    if (device >= 0 && v.device[i] != device) return false;
    if (agent >= 0 && v.agent[i] != agent) return false;
    if (device_type >= 0) {
      const std::uint8_t os = v.device[i];
      if (os == kNoValue || os_device_type(os) != device_type) return false;
    }
    return v.first_us[i] >= start_min_us && v.first_us[i] <= start_max_us;
  }

  /// Device class code of an Os code (precomputed Table 1 mapping).
  static std::int16_t os_device_type(std::uint8_t os_code);
};

/// One segment's worth of POD columns (struct-of-arrays).
struct SegmentColumns {
  std::vector<std::uint8_t> provider, transport, outcome;
  std::vector<std::uint8_t> platform_os, platform_agent, device, agent;
  std::vector<double> confidence;
  std::vector<std::uint32_t> sni;
  std::vector<std::uint64_t> first_us, last_us, bytes_down, bytes_up;
  std::vector<std::uint64_t> packets_down, packets_up;

  std::size_t rows() const { return provider.size(); }
  void reserve(std::size_t n);
  void clear();

  /// Decomposes a record into the columns; `sni_id` is the record's SNI
  /// already interned by the owning store.
  void append(const SessionRecord& record, core::TokenId sni_id);

  /// Rebuilds row `i` as a SessionRecord; `interner` resolves the SNI id.
  SessionRecord materialize(std::size_t i,
                            const core::TokenInterner& interner) const;

  ColumnsView view() const;
};

/// Rebuilds row `i` of any columns view; `sni` is the resolved SNI string.
SessionRecord materialize_row(const ColumnsView& v, std::size_t i,
                              std::string_view sni);

/// Per-segment pruning statistics, computed when a segment seals.
struct ZoneMap {
  std::uint32_t rows = 0;
  std::uint64_t first_us_min = ~std::uint64_t{0};
  std::uint64_t first_us_max = 0;
  std::array<std::uint32_t, fingerprint::kNumProviders> by_provider{};
  std::array<std::uint32_t, kNumOutcomes> by_outcome{};
  std::array<std::uint32_t, kOsValues + 1> by_device{};  // last slot: no device
  std::array<std::uint32_t, kAgentValues + 1> by_agent{};

  static ZoneMap build(const SegmentColumns& columns);

  /// False when no row in the segment can possibly satisfy the query —
  /// the segment-skip test of the Fig. 7-11 aggregations.
  bool may_match(const CompiledQuery& query) const;
};

}  // namespace vpscope::telemetry
