// Video session telemetry: per-flow volume/duration/throughput accounting
// and the queryable session store standing in for the paper's PostgreSQL
// database (§5.1). Aggregation queries produce the raw series behind the
// paper's Fig. 7-11.
//
// Umbrella header. The subsystem is split across:
//   record.hpp        FlowCounters / Outcome / SessionRecord vocabulary
//   query.hpp         typed composable Query filters
//   columnar.hpp      SessionStore (columnar segmented, the default) and
//                     SynchronizedSessionStore
//   sharded_store.hpp ShardedSessionStore multi-writer ingest
//   flat_store.hpp    FlatSessionStore (seed-era row vector, kept for the
//                     equivalence gate and --store-mode A/B benches)
//   segment.hpp/segment_io.hpp  columnar internals + spill wire format
#pragma once

#include "telemetry/columnar.hpp"
#include "telemetry/flat_store.hpp"
#include "telemetry/query.hpp"
#include "telemetry/record.hpp"
#include "telemetry/sharded_store.hpp"
#include "util/stats.hpp"
