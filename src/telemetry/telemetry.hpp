// Video session telemetry: per-flow volume/duration/throughput accounting
// and the queryable session store standing in for the paper's PostgreSQL
// database (§5.1). Aggregation queries produce the raw series behind the
// paper's Fig. 7-11.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fingerprint/platform.hpp"
#include "util/stats.hpp"

namespace vpscope::telemetry {

/// Volume/timing counters of one flow, updated per packet (or per decimated
/// volume sample in the campus simulator).
struct FlowCounters {
  std::uint64_t first_us = 0;
  std::uint64_t last_us = 0;
  std::uint64_t bytes_down = 0;  // server -> client
  std::uint64_t bytes_up = 0;
  std::uint64_t packets_down = 0;
  std::uint64_t packets_up = 0;

  void add_down(std::uint64_t ts_us, std::uint64_t bytes);
  void add_up(std::uint64_t ts_us, std::uint64_t bytes);

  /// Idle time since the last packet, clamped to zero when `now_us` is
  /// behind `last_us`. Capture clocks are not guaranteed monotonic (NIC
  /// timestamp resets, PCAP merges, fault injection); without the clamp a
  /// reversed clock would produce a near-2^64 unsigned delta and evict
  /// every active flow.
  std::uint64_t idle_us(std::uint64_t now_us) const {
    return now_us > last_us ? now_us - last_us : 0;
  }

  double duration_s() const;
  /// Mean downstream throughput over the flow lifetime, in Mbit/s.
  double mean_downstream_mbps() const;
};

/// How the pipeline resolved a flow's user platform.
enum class Outcome : std::uint8_t {
  Composite,  // full (device, agent) with confidence >= threshold
  Partial,    // only device and/or agent individually confident
  Unknown,    // rejected
};

/// The final per-flow record stored for analysis.
struct SessionRecord {
  fingerprint::Provider provider = fingerprint::Provider::YouTube;
  fingerprint::Transport transport = fingerprint::Transport::Tcp;
  Outcome outcome = Outcome::Unknown;
  std::optional<fingerprint::PlatformId> platform;  // set for Composite
  std::optional<fingerprint::Os> device;            // set when confident
  std::optional<fingerprint::Agent> agent;          // set when confident
  double confidence = 0.0;  // composite-classifier confidence
  std::string sni;
  FlowCounters counters;
};

/// In-memory session store with the aggregations the campus analysis needs.
class SessionStore {
 public:
  void insert(SessionRecord record);

  std::size_t size() const { return records_.size(); }
  const std::vector<SessionRecord>& records() const { return records_; }

  /// Sum of watch time (hours) over records matching the filter.
  double watch_hours(
      const std::function<bool(const SessionRecord&)>& filter) const;

  /// Downstream bandwidth sample (Mbit/s) per matching record, for box
  /// plots. Zero-duration records are skipped.
  std::vector<double> bandwidth_mbps(
      const std::function<bool(const SessionRecord&)>& filter) const;

  /// Total downstream volume (GB) per hour-of-day [0, 24) over matching
  /// records, attributing each record to the hour its flow started.
  std::array<double, 24> hourly_volume_gb(
      const std::function<bool(const SessionRecord&)>& filter) const;

  /// Fraction of records classified as Unknown (paper: ~20% of campus
  /// sessions were excluded for low confidence).
  double unknown_fraction() const;

 private:
  std::vector<SessionRecord> records_;
  std::size_t unknown_ = 0;
};

/// Thread-safe facade over SessionStore for the sharded pipeline: records
/// from all shard workers funnel through one mutex-protected insert, the
/// paper's many-cores-one-database write path (§5.1). Analysis runs on a
/// quiescent snapshot, keeping SessionStore's query API lock-free.
class SynchronizedSessionStore {
 public:
  void insert(SessionRecord record);

  std::size_t size() const;

  /// Copies the store out for (single-threaded) analysis. Call once the
  /// pipeline is drained.
  SessionStore snapshot() const;

  /// A sink closure bound to this store, for VideoFlowPipeline::set_sink /
  /// ShardedPipeline::set_sink. The store must outlive the pipeline.
  std::function<void(SessionRecord)> sink();

 private:
  mutable std::mutex mutex_;
  SessionStore store_;
};

}  // namespace vpscope::telemetry
