#include "telemetry/telemetry.hpp"

#include <algorithm>

namespace vpscope::telemetry {

namespace {
void touch(FlowCounters& c, std::uint64_t ts_us) {
  if (c.packets_down + c.packets_up == 0)
    c.first_us = ts_us;
  else
    c.first_us = std::min(c.first_us, ts_us);
  c.last_us = std::max(c.last_us, ts_us);
}
}  // namespace

void FlowCounters::add_down(std::uint64_t ts_us, std::uint64_t bytes) {
  touch(*this, ts_us);
  bytes_down += bytes;
  ++packets_down;
}

void FlowCounters::add_up(std::uint64_t ts_us, std::uint64_t bytes) {
  touch(*this, ts_us);
  bytes_up += bytes;
  ++packets_up;
}

double FlowCounters::duration_s() const {
  return last_us > first_us
             ? static_cast<double>(last_us - first_us) / 1e6
             : 0.0;
}

double FlowCounters::mean_downstream_mbps() const {
  const double secs = duration_s();
  if (secs <= 0) return 0.0;
  return static_cast<double>(bytes_down) * 8.0 / 1e6 / secs;
}

void SessionStore::insert(SessionRecord record) {
  if (record.outcome == Outcome::Unknown) ++unknown_;
  records_.push_back(std::move(record));
}

double SessionStore::watch_hours(
    const std::function<bool(const SessionRecord&)>& filter) const {
  double seconds = 0.0;
  for (const auto& r : records_)
    if (filter(r)) seconds += r.counters.duration_s();
  return seconds / 3600.0;
}

std::vector<double> SessionStore::bandwidth_mbps(
    const std::function<bool(const SessionRecord&)>& filter) const {
  std::vector<double> out;
  for (const auto& r : records_) {
    if (!filter(r)) continue;
    const double mbps = r.counters.mean_downstream_mbps();
    if (mbps > 0) out.push_back(mbps);
  }
  return out;
}

std::array<double, 24> SessionStore::hourly_volume_gb(
    const std::function<bool(const SessionRecord&)>& filter) const {
  std::array<double, 24> out{};
  for (const auto& r : records_) {
    if (!filter(r)) continue;
    const auto hour = static_cast<std::size_t>(
        (r.counters.first_us / 3600000000ULL) % 24);
    out[hour] += static_cast<double>(r.counters.bytes_down) / 1e9;
  }
  return out;
}

double SessionStore::unknown_fraction() const {
  return records_.empty()
             ? 0.0
             : static_cast<double>(unknown_) /
                   static_cast<double>(records_.size());
}

void SynchronizedSessionStore::insert(SessionRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_.insert(std::move(record));
}

std::size_t SynchronizedSessionStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_.size();
}

SessionStore SynchronizedSessionStore::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_;
}

std::function<void(SessionRecord)> SynchronizedSessionStore::sink() {
  return [this](SessionRecord record) { insert(std::move(record)); };
}

}  // namespace vpscope::telemetry
