// The seed-era session store: one flat std::vector<SessionRecord> scanned
// per query. Superseded as the default by the columnar segmented store
// (columnar.hpp) but kept as (a) the reference the flat-vs-columnar
// equivalence gate compares against, and (b) the `--store-mode flat` arm of
// the Fig. 7-11 bench A/B. Aggregation semantics are shared with the
// columnar store (record.hpp helpers), so for the same insert sequence both
// produce bit-identical results.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "telemetry/query.hpp"
#include "telemetry/record.hpp"

namespace vpscope::telemetry {

class FlatSessionStore {
 public:
  void insert(SessionRecord record);

  std::size_t size() const { return records_.size(); }
  const std::vector<SessionRecord>& records() const { return records_; }

  /// Sum of watch time (hours) over records matching the filter.
  double watch_hours(const Query& query) const;
  double watch_hours(
      const std::function<bool(const SessionRecord&)>& filter) const;

  /// Downstream bandwidth sample (Mbit/s) per matching record, for box
  /// plots. Zero-duration records are skipped.
  std::vector<double> bandwidth_mbps(const Query& query) const;
  std::vector<double> bandwidth_mbps(
      const std::function<bool(const SessionRecord&)>& filter) const;

  /// Total downstream volume (GB) per hour-of-day [0, 24) over matching
  /// records, pro-rated across the hours each flow spans (record.hpp).
  std::array<double, 24> hourly_volume_gb(const Query& query) const;
  std::array<double, 24> hourly_volume_gb(
      const std::function<bool(const SessionRecord&)>& filter) const;

  /// Fraction of records classified as Unknown (paper: ~20% of campus
  /// sessions were excluded for low confidence).
  double unknown_fraction() const;

 private:
  std::vector<SessionRecord> records_;
  std::size_t unknown_ = 0;
};

}  // namespace vpscope::telemetry
